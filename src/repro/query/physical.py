"""Physical execution: stage three of the query pipeline.

:func:`build_physical` maps an optimized logical plan onto the iterator
operators of :mod:`repro.core.operators`; :func:`execute_plan` runs the
operator tree and assembles a :class:`QueryResult`.  Every query -- the four
paper benchmark queries included -- flows through this one code path.

Head scans thread the set of branches each record is live in through the
operator tree as a hidden trailing column
(:data:`~repro.query.logical.BRANCH_COLUMN`); the result builder strips it
back out into ``QueryResult.branch_annotations``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.columns import ColumnBatch
from repro.core.operators import (
    DEFAULT_BATCH_SIZE,
    Distinct as DistinctOp,
    Filter as FilterOp,
    GroupAggregate,
    HashAntiJoin,
    HashJoin,
    Limit as LimitOp,
    Operator,
    OrderBy,
    Project as ProjectOp,
    SeqScan,
    TopN as TopNOp,
)
from repro.core.cancel import checkpoint
from repro.core.predicates import ColumnPredicate, Predicate, compile_predicate
from repro.core.record import Record
from repro.errors import QueryError
from repro.query.logical import (
    Aggregate,
    AntiJoin,
    BRANCH_COLUMN,
    Distinct,
    Filter,
    HeadScan,
    IndexScan,
    Join,
    Limit,
    LogicalNode,
    Project,
    Sort,
    TopN,
    VersionDiff,
    VersionScan,
    result_columns,
)


@dataclass
class QueryResult:
    """Rows produced by a versioned query.

    ``columns`` names the output columns; ``rows`` holds plain value tuples;
    ``branch_annotations`` (parallel to ``rows``) carries the set of branches
    each row is live in for HEAD() queries, and is empty otherwise.
    """

    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    branch_annotations: list[frozenset[str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def to_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


class HeadScanExec(Operator):
    """Scan all branch heads, appending the branch set as a hidden column."""

    def __init__(self, node: HeadScan):
        self.node = node
        self.schema = node.schema

    def __iter__(self) -> Iterator[Record]:
        for record, branches in self.node.engine.scan_heads(self.node.predicate):
            yield Record(record.values + (branches,))

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        annotated = self.node.engine.scan_heads_batched(
            self.node.predicate, batch_size=batch_size
        )
        for pairs in annotated:
            checkpoint()
            yield [
                Record(record.values + (branches,)) for record, branches in pairs
            ]

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        # The hidden branch-set column holds frozensets, which no typed
        # array can carry, so the annotated rows pivot into list columns at
        # this boundary.
        annotated = self.node.engine.scan_heads_batched(
            self.node.predicate, batch_size=batch_size
        )
        for pairs in annotated:
            checkpoint()
            yield ColumnBatch.from_rows(
                self.schema,
                [record.values + (branches,) for record, branches in pairs],
            )

    def count(self) -> int:
        # Count-only consumers need neither the annotation-carrying records
        # nor the hidden-column concatenation: batch lengths suffice.
        annotated = self.node.engine.scan_heads_batched(self.node.predicate)
        return sum(len(pairs) for pairs in annotated)


class VersionDiffExec(Operator):
    """Positive diff of two branch heads via the engine's ``diff`` primitive.

    Engine diffs are content-level: an updated record shows up on both sides.
    The SQL ``NOT IN`` shape is key-level, so unless ``include_modified`` is
    set (the benchmark's content-level Query 2), modified keys -- present in
    both versions -- are filtered back out.  ``total_records`` records the
    size of the last diff for benchmark byte accounting.
    """

    def __init__(self, node: VersionDiff):
        self.node = node
        self.schema = node.schema
        self.total_records = 0

    def _positive_records(self) -> list[Record]:
        node = self.node
        checkpoint()
        diff = node.engine.diff(node.outer[1], node.inner[1])
        self.total_records = diff.total_records
        if node.include_modified:
            return diff.positive
        schema = node.engine.schema
        key_index = schema.index_of(node.key_column)
        modified = diff.modified_keys(schema)
        return [
            record
            for record in diff.positive
            if record.values[key_index] not in modified
        ]

    def __iter__(self) -> Iterator[Record]:
        yield from self._positive_records()

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        positive = self._positive_records()
        for start in range(0, len(positive), batch_size):
            yield positive[start : start + batch_size]

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        positive = self._positive_records()
        for start in range(0, len(positive), batch_size):
            yield ColumnBatch.from_records(
                self.schema, positive[start : start + batch_size]
            )

    def count(self) -> int:
        return len(self._positive_records())


class IndexScanExec(Operator):
    """Index probe + late-materialized fetch for a selective scan.

    Looks up the primary keys matching the scan's driving index term,
    fetches only those records through the engine's pk index
    (``records_for_keys``), and re-applies the full pushed-down predicate --
    the driving term is a conjunct of it, so results are identical to the
    sequential scan the optimizer replaced.
    """

    def __init__(self, node: IndexScan):
        self.node = node
        self.schema = node.schema

    def _records(self) -> list[Record]:
        node = self.node
        checkpoint()
        keys = node.engine.index_hook.lookup_keys(
            node.version, node.index_column, node.op, node.value
        )
        records = node.engine.records_for_keys(node.version, keys)
        matches = compile_predicate(node.predicate, node.engine.schema)
        if matches is None:  # pragma: no cover - index scans carry a predicate
            return records
        return [record for record in records if matches(record.values)]

    def __iter__(self) -> Iterator[Record]:
        yield from self._records()

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        records = self._records()
        for start in range(0, len(records), batch_size):
            yield records[start : start + batch_size]

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        records = self._records()
        for start in range(0, len(records), batch_size):
            yield ColumnBatch.from_records(
                self.schema, records[start : start + batch_size]
            )

    def count(self) -> int:
        return len(self._records())


class AnnotatedDistinct(Operator):
    """DISTINCT over head-scan rows.

    Duplicates are judged on the *visible* columns only; the hidden branch
    sets of merged duplicates are unioned, so a record live in several
    branches still comes out once with the combined annotation.
    """

    def __init__(self, child: Operator, hidden_index: int):
        self.child = child
        self.hidden_index = hidden_index
        self.schema = child.schema

    def __iter__(self) -> Iterator[Record]:
        for batch in self.batches():
            yield from batch

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        h = self.hidden_index
        merged: dict[tuple, set] = {}
        order: list[tuple] = []
        for batch in self.child.batches(batch_size):
            for record in batch:
                values = record.values
                visible = values[:h] + values[h + 1 :]
                branches = merged.get(visible)
                if branches is None:
                    merged[visible] = branches = set()
                    order.append(visible)
                branches.update(values[h])
        out: list[Record] = []
        for visible in order:
            branches = frozenset(merged[visible])
            out.append(Record(visible[:h] + (branches,) + visible[h:]))
            if len(out) >= batch_size:
                yield out
                out = []
        if out:
            yield out

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        h = self.hidden_index
        merged: dict[tuple, set] = {}
        order: list[tuple] = []
        for batch in self.child.column_batches(batch_size):
            for values in batch.rows():
                visible = values[:h] + values[h + 1 :]
                branches = merged.get(visible)
                if branches is None:
                    merged[visible] = branches = set()
                    order.append(visible)
                branches.update(values[h])
        out_rows: list[tuple] = []
        for visible in order:
            branches = frozenset(merged[visible])
            out_rows.append(visible[:h] + (branches,) + visible[h:])
            if len(out_rows) >= batch_size:
                yield ColumnBatch.from_rows(self.schema, out_rows)
                out_rows = []
        if out_rows:
            yield ColumnBatch.from_rows(self.schema, out_rows)


def build_physical(
    plan: LogicalNode, *, batched: bool = True, columnar: bool = False
) -> Operator:
    """Map an optimized logical plan onto an iterator operator tree.

    With ``batched=True`` (the default) branch scans are fed from the
    engine's vectorized ``scan_branch_batched`` path, so batch-aware
    operators move whole record lists; ``columnar=True`` additionally feeds
    them from ``scan_branch_columns``, so column-native operators move typed
    column arrays; ``batched=False`` forces the original tuple-at-a-time
    scan everywhere.  All modes produce bit-for-bit identical results.
    """
    if isinstance(plan, VersionScan):
        engine = plan.engine
        if plan.kind == "branch":
            if batched:
                count_source = lambda: engine.count_branch(  # noqa: E731
                    plan.version, plan.predicate
                )
                if columnar:
                    return SeqScan(
                        None,
                        plan.schema,
                        column_source=engine.scan_branch_columns(
                            plan.version, plan.predicate, columns=plan.columns
                        ),
                        count_source=count_source,
                    )
                batch_source = engine.scan_branch_batched(
                    plan.version, plan.predicate
                )
                if plan.columns is not None:
                    # The pruned decode path lives in scan_branch_columns;
                    # row modes project here so every mode stays exact.
                    positions = [
                        engine.schema.index_of(name) for name in plan.columns
                    ]
                    batch_source = (
                        [
                            Record(tuple(record.values[p] for p in positions))
                            for record in batch
                        ]
                        for batch in batch_source
                    )
                return SeqScan(
                    None,
                    plan.schema,
                    batch_source=batch_source,
                    count_source=count_source,
                )
            records = engine.scan_branch(plan.version, plan.predicate)
        else:
            records = engine.scan_commit(plan.version, plan.predicate)
        if plan.columns is not None:
            positions = [engine.schema.index_of(name) for name in plan.columns]
            records = (
                Record(tuple(record.values[p] for p in positions))
                for record in records
            )
        return SeqScan(records, plan.schema)
    if isinstance(plan, HeadScan):
        return HeadScanExec(plan)
    if isinstance(plan, IndexScan):
        return IndexScanExec(plan)
    if isinstance(plan, VersionDiff):
        return VersionDiffExec(plan)
    if isinstance(plan, AntiJoin):
        return HashAntiJoin(
            build_physical(plan.outer, batched=batched, columnar=columnar),
            build_physical(plan.inner, batched=batched, columnar=columnar),
            plan.outer_column,
            plan.inner_column,
        )
    if isinstance(plan, Join):
        left_columns = [left for left, _ in plan.conditions]
        right_columns = [right for _, right in plan.conditions]
        return HashJoin(
            build_physical(plan.left, batched=batched, columnar=columnar),
            build_physical(plan.right, batched=batched, columnar=columnar),
            left_columns,
            right_columns,
        )
    if isinstance(plan, Filter):
        predicate: Predicate | None = None
        for term in plan.terms:
            clause = ColumnPredicate(term.column, term.op, term.value)
            predicate = clause if predicate is None else (predicate & clause)
        return FilterOp(build_physical(plan.child, batched=batched, columnar=columnar), predicate)
    if isinstance(plan, Aggregate):
        grouped = GroupAggregate(
            build_physical(plan.child, batched=batched, columnar=columnar),
            plan.group_by,
            [
                (expr.name, expr.function, expr.argument)
                for expr in plan.aggregates
            ],
        )
        if list(grouped.schema.column_names) == plan.output_names:
            return grouped
        return ProjectOp(grouped, plan.output_names)
    if isinstance(plan, Project):
        return ProjectOp(
            build_physical(plan.child, batched=batched, columnar=columnar), plan.physical_columns
        )
    if isinstance(plan, Distinct):
        child = build_physical(plan.child, batched=batched, columnar=columnar)
        names = plan.schema.column_names
        if BRANCH_COLUMN in names:
            return AnnotatedDistinct(child, names.index(BRANCH_COLUMN))
        return DistinctOp(child)
    if isinstance(plan, Sort):
        return OrderBy(
            build_physical(plan.child, batched=batched, columnar=columnar),
            plan.keys,
            budget_bytes=plan.budget_bytes,
        )
    if isinstance(plan, TopN):
        return TopNOp(
            build_physical(plan.child, batched=batched, columnar=columnar), plan.keys, plan.n
        )
    if isinstance(plan, Limit):
        return LimitOp(build_physical(plan.child, batched=batched, columnar=columnar), plan.n)
    raise QueryError(f"no physical mapping for plan node {type(plan).__name__}")


#: Logical node type -> the physical operator class that executes it.  Used
#: by the optimizer's execution-mode selection and by EXPLAIN annotations to
#: report, per node, whether execution moves record batches natively.
#: ``Distinct`` maps to :class:`DistinctOp`; the head-scan variant
#: (:class:`AnnotatedDistinct`) is batch-native too, so the entry is
#: representative for both.
NODE_OPERATORS: dict[type, type[Operator]] = {
    VersionScan: SeqScan,
    HeadScan: HeadScanExec,
    IndexScan: IndexScanExec,
    VersionDiff: VersionDiffExec,
    AntiJoin: HashAntiJoin,
    Join: HashJoin,
    Filter: FilterOp,
    Aggregate: GroupAggregate,
    Project: ProjectOp,
    Distinct: DistinctOp,
    Sort: OrderBy,
    TopN: TopNOp,
    Limit: LimitOp,
}


def batch_native(plan: LogicalNode) -> bool:
    """True if ``plan``'s physical operator has a native ``batches`` path.

    "Native" means the operator class overrides :meth:`Operator.batches`
    rather than inheriting the chunk-the-iterator fallback -- i.e. running it
    in batched mode moves whole record lists instead of silently degrading to
    tuple-at-a-time iteration under a batch facade.
    """
    operator = NODE_OPERATORS.get(type(plan))
    if operator is None:
        return False
    return operator.batches is not Operator.batches


def columnar_native(plan: LogicalNode) -> bool:
    """True if ``plan``'s physical operator has a native ``column_batches``
    path -- it overrides :meth:`Operator.column_batches` rather than
    inheriting the pivot-each-record-batch adapter, so running it in
    columnar mode moves typed column arrays instead of repackaging row
    batches under a columnar facade."""
    operator = NODE_OPERATORS.get(type(plan))
    if operator is None:
        return False
    return operator.column_batches is not Operator.column_batches


def _resolve_mode(batched: bool, mode: str | None) -> str:
    if mode is None:
        return "batched" if batched else "streaming"
    if mode not in ("columnar", "batched", "streaming"):
        raise QueryError(f"unknown execution mode {mode!r}")
    return mode


def execute_plan(
    plan: LogicalNode,
    *,
    batched: bool = True,
    mode: str | None = None,
    verify: bool | None = None,
) -> QueryResult:
    """Run an optimized plan to completion and assemble the result.

    ``mode`` selects the execution mode for the whole tree: ``"columnar"``
    consumes the operators' ``column_batches`` protocol and materializes
    rows only here, at the result boundary; ``"batched"`` moves record
    lists; ``"streaming"`` iterates tuple-at-a-time.  With ``mode=None``
    the legacy ``batched`` flag picks between the latter two.

    ``verify`` runs the plan through the static invariant checks of
    :mod:`repro.analysis.plan_check` before execution, raising
    :class:`~repro.errors.PlanInvariantError` on a violated contract.
    ``None`` defers to :func:`repro.analysis.plan_check.default_verify`
    (on in the test suites, off otherwise).
    """
    mode = _resolve_mode(batched, mode)
    if verify or verify is None:
        from repro.analysis import plan_check

        if verify or plan_check.default_verify():
            plan_check.verify_plan(plan, mode=mode)
    operator = build_physical(
        plan, batched=mode != "streaming", columnar=mode == "columnar"
    )
    result = QueryResult(columns=result_columns(plan))
    schema_names = plan.schema.column_names
    rows = result.rows
    if BRANCH_COLUMN in schema_names:
        hidden = schema_names.index(BRANCH_COLUMN)
        annotations = result.branch_annotations
        if mode == "columnar":
            for column_batch in operator.column_batches():
                checkpoint()
                annotations.extend(column_batch.columns[hidden])
                visible = [
                    values
                    for i, values in enumerate(column_batch.columns)
                    if i != hidden
                ]
                if visible:
                    rows.extend(zip(*visible))
                else:  # pragma: no cover - plans always keep a visible column
                    rows.extend(() for _ in range(column_batch.num_rows))
            return result
        source = (
            operator.batches()
            if mode == "batched"
            else ([record] for record in operator)
        )
        for batch in source:
            checkpoint()
            for record in batch:
                values = record.values
                rows.append(values[:hidden] + values[hidden + 1 :])
                annotations.append(values[hidden])
        return result
    if mode == "columnar":
        for column_batch in operator.column_batches():
            checkpoint()
            rows.extend(column_batch.rows())
        return result
    if mode == "streaming":
        result.rows = [record.values for record in operator]
        return result
    for batch in operator.batches():
        checkpoint()
        rows.extend(record.values for record in batch)
    return result
