"""Rule-based optimization: stage two of the query pipeline.

Two families of rewrites run over the logical plan, bottom-up:

* **Diff recognition** -- the ``NOT IN``-over-the-same-relation shape
  (lowered as an :class:`~repro.query.logical.AntiJoin` of two version
  scans) is rewritten to a :class:`~repro.query.logical.VersionDiff` when
  both sides are branch heads of the same relation compared on the primary
  key.  That routes the query to the engine's bitmap ``diff`` primitive
  (paper Section 2.2.3), which the tuple-first and hybrid layouts answer
  with bitmap intersections instead of two full scans.

* **Predicate pushdown** -- column comparisons held in
  :class:`~repro.query.logical.Filter` nodes are pushed into the scans they
  apply to, so they are evaluated inside ``scan_branch``/``scan_commit``/
  ``scan_heads`` during the single pass over the data.  A filter whose terms
  are all pushed disappears (Filter-over-Scan collapse); terms that cannot
  be pushed (e.g. residual predicates above a diff) stay behind.
"""

from __future__ import annotations

from repro.core.predicates import ColumnPredicate, conjunction_terms
from repro.query.logical import (
    Aggregate,
    AntiJoin,
    Distinct,
    Filter,
    HeadScan,
    IndexScan,
    Join,
    Limit,
    LogicalNode,
    Project,
    Sort,
    TopN,
    VersionDiff,
    VersionScan,
)
from repro.query.parser import ColumnComparison

#: An index scan is selected only when its estimated match fraction is at or
#: below this threshold; above it a sequential scan's streaming decode beats
#: per-key point fetches.
INDEX_SELECTIVITY_THRESHOLD = 0.25

_index_selection = True


def set_index_selection(enabled: bool) -> None:
    """Globally enable/disable the index-scan rewrite (benchmark A/B knob)."""
    global _index_selection
    _index_selection = enabled


def index_selection_enabled() -> bool:
    """Whether :func:`select_index_scans` currently rewrites scans."""
    return _index_selection


def optimize(plan: LogicalNode) -> LogicalNode:
    """Apply all rewrite rules to ``plan`` and return the optimized plan."""
    plan = rewrite_diffs(plan)
    plan = push_down_predicates(plan)
    plan = select_index_scans(plan)
    plan = fuse_top_n(plan)
    plan = prune_scan_columns(plan)
    return plan


# -- execution-mode selection -------------------------------------------------


def select_execution_mode(plan: LogicalNode) -> str:
    """Choose the execution mode for an optimized plan.

    Returns ``"columnar"``, ``"batched"`` or ``"streaming"``.  The choice is
    made for the *whole* operator tree, never per node: columnar execution
    is selected when every node's physical operator carries both a native
    batch path and a native column-batch path (the normal case -- every node
    the planner currently produces qualifies); plans that are only
    batch-native everywhere run batched; anything else falls back to
    tuple-at-a-time streaming *explicitly*.  The fallback is visible per
    node in ``EXPLAIN`` output (:func:`execution_mode_labels`) rather than
    silently degrading mid-pipeline.
    """
    from repro.query.physical import batch_native, columnar_native

    def batch_covered(node: LogicalNode) -> bool:
        return batch_native(node) and all(
            batch_covered(child) for child in node.children
        )

    def columnar_covered(node: LogicalNode) -> bool:
        return (
            batch_native(node)
            and columnar_native(node)
            and all(columnar_covered(child) for child in node.children)
        )

    if columnar_covered(plan):
        return "columnar"
    if batch_covered(plan):
        return "batched"
    return "streaming"


def execution_mode_labels(plan: LogicalNode) -> dict[int, str]:
    """Per-node execution-mode annotations for EXPLAIN, keyed by ``id(node)``.

    When the whole plan qualifies for columnar execution every node is
    labeled ``columnar`` (the mode is a whole-plan decision); otherwise each
    node is labeled ``batched`` or ``tuple`` individually, so a plan that
    cannot run fully batched shows exactly where the pipeline drops out of
    batch mode.
    """
    from repro.query.physical import batch_native

    labels: dict[int, str] = {}
    plan_columnar = select_execution_mode(plan) == "columnar"

    def walk(node: LogicalNode) -> None:
        if plan_columnar:
            labels[id(node)] = "columnar"
        else:
            labels[id(node)] = "batched" if batch_native(node) else "tuple"
        for child in node.children:
            walk(child)

    walk(plan)
    return labels


# -- rule: Limit over Sort -> Top-N --------------------------------------------


def fuse_top_n(node: LogicalNode) -> LogicalNode:
    """Fuse ``Limit`` directly above a ``Sort`` into a bounded-heap ``TopN``.

    Three shapes qualify, bottom-up:

    * ``Limit(Sort(x))`` becomes ``TopN(x)``;
    * ``Limit(Sort(Project(x)))`` where every sort key exists in ``x``'s
      schema becomes ``Project(TopN(x))`` -- the heap then sees raw scan
      batches and only the surviving k rows are projected (projection is 1:1
      and order-preserving, so the rewrite is exact);
    * ``Limit(Project(Sort(x)))`` (the planner's shape for ORDER BY on a
      non-projected column) becomes ``Project(TopN(x))`` the same way.

    The resulting node is tagged ``[top-n k=n]`` in EXPLAIN output (see
    :func:`rewrite_labels`), so the substitution is never silent.
    """
    node.children = [fuse_top_n(child) for child in node.children]
    if not isinstance(node, Limit):
        return node
    child = node.children[0]
    if isinstance(child, Sort):
        inner = child.child
        if isinstance(inner, Project) and all(
            key in inner.child.schema.column_names for key, _ in child.keys
        ):
            return Project(
                TopN(inner.child, child.keys, node.n), inner.user_columns
            )
        return TopN(child.child, child.keys, node.n)
    if isinstance(child, Project) and isinstance(child.children[0], Sort):
        sort = child.children[0]
        return Project(TopN(sort.child, sort.keys, node.n), child.user_columns)
    return node


def rewrite_labels(plan: LogicalNode) -> dict[int, str]:
    """Per-node rewrite annotations for EXPLAIN, keyed by ``id(node)``.

    Every ``TopN`` produced by :func:`fuse_top_n` is tagged ``top-n k=n``,
    every scan rewritten by :func:`select_index_scans` is tagged ``index``,
    and every scan pruned by :func:`prune_scan_columns` is tagged
    ``project``, so no optimizer substitution is silent.
    """
    labels: dict[int, str] = {}

    def walk(node: LogicalNode) -> None:
        if isinstance(node, TopN):
            labels[id(node)] = f"top-n k={node.n}"
        elif isinstance(node, IndexScan):
            labels[id(node)] = "index"
        elif isinstance(node, VersionScan) and node.columns is not None:
            labels[id(node)] = "project"
        for child in node.children:
            walk(child)

    walk(plan)
    return labels


# -- rule: selective predicate term -> index scan -----------------------------


def select_index_scans(plan: LogicalNode) -> LogicalNode:
    """Rewrite branch scans whose predicate an index answers selectively.

    A branch-head :class:`VersionScan` qualifies when its pushed-down
    predicate has a top-level :class:`ColumnPredicate` conjunct over an
    indexed column (the primary key, equality only; or a declared secondary
    index, equality and ranges) whose estimated match fraction is at most
    :data:`INDEX_SELECTIVITY_THRESHOLD`.  Among qualifying conjuncts the
    most selective one drives the scan; the full predicate is kept on the
    :class:`IndexScan` and re-applied after the fetch, so the rewrite never
    changes results.  EXPLAIN tags rewritten scans ``[index]``.
    """
    if not _index_selection:
        return plan
    plan.children = [select_index_scans(child) for child in plan.children]
    if not isinstance(plan, VersionScan):
        return plan
    if plan.kind != "branch" or plan.predicate is None:
        return plan
    hook = getattr(plan.engine, "index_hook", None)
    if hook is None:
        return plan
    best: tuple[float, ColumnPredicate] | None = None
    for term in conjunction_terms(plan.predicate):
        if not isinstance(term, ColumnPredicate):
            continue
        if not hook.has_index(term.column):
            continue
        if not hook.supports_op(term.column, term.op):
            continue
        fraction = hook.match_fraction(
            plan.version, term.column, term.op, term.value
        )
        if fraction is None or fraction > INDEX_SELECTIVITY_THRESHOLD:
            continue
        if best is None or fraction < best[0]:
            best = (fraction, term)
    if best is None:
        return plan
    term = best[1]
    return IndexScan(
        plan.engine,
        plan.relation,
        plan.alias,
        plan.version,
        term.column,
        term.op,
        term.value,
        plan.predicate,
    )


# -- rule: projection pushdown into columnar scans -----------------------------


def prune_scan_columns(plan: LogicalNode) -> LogicalNode:
    """Push the plan's column requirements down into branch scans.

    Runs last, and only when the whole plan executes columnar (the pruned
    decode path lives in ``scan_branch_columns``).  Each branch-head
    :class:`VersionScan` whose ancestors reference a proper subset of the
    relation's columns gets ``scan.columns`` set -- predicate columns
    included, schema order preserved -- and its output schema projected, so
    the page decode skips every unreferenced column.  Nodes that need their
    child's full schema (joins, diffs, head scans) stop the pruning.
    """
    if select_execution_mode(plan) != "columnar":
        return plan

    def walk(node: LogicalNode, needed: set[str] | None) -> None:
        if isinstance(node, VersionScan):
            if needed is None or node.kind != "branch":
                return
            all_names = node.engine.schema.column_names
            keep = set(needed)
            if node.predicate is not None:
                keep.update(t.column for t in _term_columns(node.predicate))
            if not keep:
                keep = {node.engine.schema.primary_key}
            ordered = tuple(name for name in all_names if name in keep)
            if len(ordered) < len(all_names):
                node.columns = ordered
                node.schema = node.engine.schema.project(list(ordered))
            return
        if isinstance(node, Project):
            walk(node.child, set(node.physical_columns))
            return
        if isinstance(node, Aggregate):
            child_needed = set(node.group_by)
            for item in node.items:
                if item.is_aggregate:
                    if item.argument != "*":
                        child_needed.add(item.argument)
                else:
                    child_needed.add(item.column)
            walk(node.child, child_needed)
            return
        if isinstance(node, Filter):
            child_needed = (
                None
                if needed is None
                else needed | {term.column for term in node.terms}
            )
            walk(node.child, child_needed)
            node.schema = node.child.schema
            return
        if isinstance(node, (Sort, TopN)):
            child_needed = (
                None
                if needed is None
                else needed | {column for column, _ in node.keys}
            )
            walk(node.children[0], child_needed)
            node.schema = node.children[0].schema
            return
        if isinstance(node, (Distinct, Limit)):
            walk(node.children[0], needed)
            node.schema = node.children[0].schema
            return
        # Joins, anti-joins, diffs, head scans and index scans need (or
        # produce) their full relation schema; pruning stops here.
        for child in node.children:
            walk(child, None)

    walk(plan, None)
    return plan


def _term_columns(term):
    """The leaf column predicates below one conjunct (Or/Not included)."""
    from repro.core.predicates import And, ModuloPredicate, Not, Or

    if isinstance(term, (And, Or)):
        return _term_columns(term.left) + _term_columns(term.right)
    if isinstance(term, Not):
        return _term_columns(term.inner)
    if isinstance(term, (ColumnPredicate, ModuloPredicate)):
        return [term]
    return []


# -- rule: NOT IN -> engine diff ---------------------------------------------------


def rewrite_diffs(node: LogicalNode) -> LogicalNode:
    """Rewrite qualifying anti-joins to the engine's ``diff`` primitive."""
    node.children = [rewrite_diffs(child) for child in node.children]
    if not isinstance(node, AntiJoin):
        return node
    outer, inner = node.outer, node.inner
    if not (isinstance(outer, VersionScan) and isinstance(inner, VersionScan)):
        return node
    if (
        outer.engine is inner.engine
        and outer.kind == "branch"
        and inner.kind == "branch"
        and outer.predicate is None
        and inner.predicate is None
        and node.outer_column == node.inner_column
        and node.outer_column == outer.schema.primary_key
    ):
        return VersionDiff(
            outer.engine,
            outer.relation,
            (outer.kind, outer.version),
            (inner.kind, inner.version),
            node.outer_column,
            include_modified=False,
        )
    return node


# -- rule: predicate pushdown ------------------------------------------------------


def push_down_predicates(node: LogicalNode) -> LogicalNode:
    """Push filter terms into scans; drop filters that become empty."""
    node.children = [push_down_predicates(child) for child in node.children]
    if not isinstance(node, Filter):
        return node
    child = node.child
    remaining = [term for term in node.terms if not _push_term(child, term)]
    if not remaining:
        return child
    node.terms = remaining
    return node


def _push_term(node: LogicalNode, term: ColumnComparison) -> bool:
    """Try to push one comparison into ``node``'s scans; True if consumed."""
    if isinstance(node, (VersionScan, HeadScan)):
        if term.alias not in (node.alias, None):
            return False
        if term.column not in node.engine.schema.column_names:
            return False
        node.attach_predicate(ColumnPredicate(term.column, term.op, term.value))
        return True
    if isinstance(node, Join):
        left, right = node.left, node.right
        if term.alias is None:
            # An unqualified predicate applies to every side that has the
            # column (the seed executor's semantics), so it is only consumed
            # when both sides can evaluate it during their scans.
            if _accepts_term(left, term) and _accepts_term(right, term):
                _push_term(left, term)
                _push_term(right, term)
                return True
            return False
        return _push_term(left, term) or _push_term(right, term)
    if isinstance(node, AntiJoin):
        # Only the outer side contributes output rows; inner-side predicates
        # come from the subquery and are already attached below.
        return _push_term(node.outer, term)
    return False


def _accepts_term(node: LogicalNode, term: ColumnComparison) -> bool:
    return (
        isinstance(node, (VersionScan, HeadScan))
        and term.alias in (node.alias, None)
        and term.column in node.engine.schema.column_names
    )
