"""The version graph: commits, branches, and their provenance DAG.

The version-level provenance of a dataset is maintained as a directed acyclic
graph whose nodes are versions (commits) and whose edges record derivation --
by modification, branching or merging (paper Section 2.2.2).  All three
storage engines consult the same graph for branch heads, ancestry and
lowest-common-ancestor queries; the graph is persisted as JSON alongside the
data files on every branch or commit operation, as in the paper
(Section 3, preamble).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.core.durable import dump_json_atomic, load_checked_json
from repro.errors import (
    BranchExistsError,
    BranchNotFoundError,
    CommitNotFoundError,
    CorruptionError,
    VersionError,
)

#: Name of the branch created by ``init`` -- the authoritative branch of
#: record for the dataset (paper Section 2.2.2).
MASTER_BRANCH = "master"


@dataclass(frozen=True)
class Commit:
    """One immutable version of the dataset.

    ``sequence`` is a graph-wide monotonically increasing counter used to
    order commits chronologically and to pick the *lowest* common ancestor
    among several candidates.
    """

    commit_id: str
    branch: str
    parents: tuple[str, ...]
    sequence: int
    message: str = ""

    @property
    def is_merge(self) -> bool:
        """True if this commit has more than one parent."""
        return len(self.parents) > 1


@dataclass
class Branch:
    """A working copy of the dataset: a named, movable head pointer."""

    name: str
    head: str
    created_from: str | None
    active: bool = True
    #: The branch this branch was created from (None for the master branch).
    parent_branch: str | None = None
    #: For branches created by a merge: parent branch names in precedence
    #: order (first wins conflicts under the precedence policy).
    merge_precedence: tuple[str, ...] = field(default_factory=tuple)


class VersionGraph:
    """Commits and branches of one dataset."""

    def __init__(self):
        self._commits: dict[str, Commit] = {}
        self._branches: dict[str, Branch] = {}
        self._sequence = 0

    # -- initialization -------------------------------------------------------

    def init(self, message: str = "init") -> Commit:
        """Create the initial commit and the master branch."""
        if self._commits:
            raise VersionError("the version graph is already initialized")
        commit = self._new_commit(MASTER_BRANCH, parents=(), message=message)
        self._branches[MASTER_BRANCH] = Branch(
            name=MASTER_BRANCH, head=commit.commit_id, created_from=None
        )
        return commit

    @property
    def initialized(self) -> bool:
        """True once :meth:`init` has been called."""
        return bool(self._commits)

    # -- commit / branch bookkeeping -------------------------------------------

    def _new_commit(
        self, branch: str, parents: tuple[str, ...], message: str
    ) -> Commit:
        self._sequence += 1
        commit_id = f"v{self._sequence:06d}"
        commit = Commit(
            commit_id=commit_id,
            branch=branch,
            parents=parents,
            sequence=self._sequence,
            message=message,
        )
        self._commits[commit_id] = commit
        return commit

    def commit(self, branch: str, message: str = "") -> Commit:
        """Record a new commit advancing ``branch``'s head."""
        branch_obj = self.branch(branch)
        commit = self._new_commit(branch, parents=(branch_obj.head,), message=message)
        branch_obj.head = commit.commit_id
        return commit

    def create_branch(
        self, name: str, from_commit: str | None = None, from_branch: str | None = None
    ) -> Branch:
        """Create a branch off ``from_commit`` (or a branch's current head).

        A branch may be created from any commit on any existing branch
        (paper Section 2.2.3, *Branch*).
        """
        if name in self._branches:
            raise BranchExistsError(f"branch {name!r} already exists")
        if from_commit is None:
            source = from_branch if from_branch is not None else MASTER_BRANCH
            from_commit = self.branch(source).head
        if from_commit not in self._commits:
            raise CommitNotFoundError(f"unknown commit: {from_commit!r}")
        parent_branch = (
            from_branch
            if from_branch is not None
            else self._commits[from_commit].branch
        )
        branch = Branch(
            name=name,
            head=from_commit,
            created_from=from_commit,
            parent_branch=parent_branch,
        )
        self._branches[name] = branch
        return branch

    def merge(
        self,
        target_branch: str,
        source_branch: str,
        message: str = "",
        precedence: str | None = None,
    ) -> Commit:
        """Merge ``source_branch``'s head into ``target_branch``.

        The heads of both branches become the parents of a new commit which
        becomes the new head of ``target_branch`` (paper Section 2.2.3,
        *Merge*; making the merged version the head of the target branch is
        the variant the benchmark exercises).
        """
        target = self.branch(target_branch)
        source = self.branch(source_branch)
        parents = (target.head, source.head)
        commit = self._new_commit(target_branch, parents=parents, message=message)
        target.head = commit.commit_id
        first = precedence if precedence is not None else target_branch
        second = source_branch if first == target_branch else target_branch
        target.merge_precedence = (first, second)
        return commit

    def retire_branch(self, name: str) -> None:
        """Mark a branch inactive (science-pattern branches have lifetimes)."""
        self.branch(name).active = False

    # -- lookups ----------------------------------------------------------------

    def branch(self, name: str) -> Branch:
        """The branch named ``name``; raises if unknown."""
        try:
            return self._branches[name]
        except KeyError:
            raise BranchNotFoundError(f"unknown branch: {name!r}") from None

    def get_commit(self, commit_id: str) -> Commit:
        """The commit with id ``commit_id``; raises if unknown."""
        try:
            return self._commits[commit_id]
        except KeyError:
            raise CommitNotFoundError(f"unknown commit: {commit_id!r}") from None

    def has_branch(self, name: str) -> bool:
        """True if a branch named ``name`` exists."""
        return name in self._branches

    def has_commit(self, commit_id: str) -> bool:
        """True if a commit with this id exists."""
        return commit_id in self._commits

    def branches(self, active_only: bool = False) -> list[Branch]:
        """All branches in creation order."""
        result = list(self._branches.values())
        if active_only:
            result = [branch for branch in result if branch.active]
        return result

    def branch_names(self, active_only: bool = False) -> list[str]:
        """Names of all (or all active) branches."""
        return [branch.name for branch in self.branches(active_only)]

    def head(self, branch: str) -> str:
        """The head commit id of ``branch``."""
        return self.branch(branch).head

    def heads(self) -> dict[str, str]:
        """Mapping of branch name to head commit id for all branches."""
        return {name: branch.head for name, branch in self._branches.items()}

    def commits(self) -> list[Commit]:
        """All commits in creation (sequence) order."""
        return sorted(self._commits.values(), key=lambda commit: commit.sequence)

    def commits_on_branch(self, branch: str) -> list[Commit]:
        """Commits recorded directly on ``branch``, oldest first."""
        return [commit for commit in self.commits() if commit.branch == branch]

    def __len__(self) -> int:
        return len(self._commits)

    # -- ancestry --------------------------------------------------------------

    def ancestors(self, commit_id: str, include_self: bool = True) -> set[str]:
        """All ancestors of ``commit_id`` in the version DAG."""
        self.get_commit(commit_id)
        seen: set[str] = set()
        stack = [commit_id]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._commits[current].parents)
        if not include_self:
            seen.discard(commit_id)
        return seen

    def is_ancestor(self, ancestor_id: str, descendant_id: str) -> bool:
        """True if ``ancestor_id`` is an ancestor of (or equals) ``descendant_id``."""
        return ancestor_id in self.ancestors(descendant_id)

    def lowest_common_ancestor(self, commit_a: str, commit_b: str) -> str:
        """The common ancestor with the highest sequence number.

        The LCA commit anchors diff and three-way merge in every engine
        (paper Sections 3.2-3.4).
        """
        common = self.ancestors(commit_a) & self.ancestors(commit_b)
        if not common:
            raise VersionError(
                f"commits {commit_a!r} and {commit_b!r} share no ancestor"
            )
        return max(common, key=lambda cid: self._commits[cid].sequence)

    def lineage(self, commit_id: str) -> list[Commit]:
        """Path of commits from ``commit_id`` back to the root.

        At merge commits the first parent is followed, which corresponds to
        the branch's own line of development.
        """
        path = []
        current: str | None = commit_id
        while current is not None:
            commit = self.get_commit(current)
            path.append(commit)
            current = commit.parents[0] if commit.parents else None
        return path

    def branch_lineage(self, branch: str) -> list[str]:
        """Branch names contributing data to ``branch``, nearest first.

        This is the order in which the version-first engine visits segment
        files for a single-branch scan (paper Section 3.3): the branch's own
        segment, then its parents in precedence order, recursively, without
        repeats.
        """
        result: list[str] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            result.append(name)
            branch_obj = self.branch(name)
            # Merge parents first (precedence order), then the branch point.
            for parent in branch_obj.merge_precedence:
                if parent != name:
                    visit(parent)
            if branch_obj.parent_branch is not None:
                visit(branch_obj.parent_branch)
            elif branch_obj.created_from is not None:
                visit(self.get_commit(branch_obj.created_from).branch)

        visit(branch)
        return result

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the whole graph."""
        return {
            "sequence": self._sequence,
            "commits": [
                {
                    "id": commit.commit_id,
                    "branch": commit.branch,
                    "parents": list(commit.parents),
                    "sequence": commit.sequence,
                    "message": commit.message,
                }
                for commit in self.commits()
            ],
            "branches": [
                {
                    "name": branch.name,
                    "head": branch.head,
                    "created_from": branch.created_from,
                    "active": branch.active,
                    "parent_branch": branch.parent_branch,
                    "merge_precedence": list(branch.merge_precedence),
                }
                for branch in self._branches.values()
            ],
        }

    @classmethod
    def from_dict(cls, raw: dict) -> "VersionGraph":
        """Rebuild a graph from :meth:`to_dict` output."""
        graph = cls()
        graph._sequence = raw["sequence"]
        for entry in raw["commits"]:
            graph._commits[entry["id"]] = Commit(
                commit_id=entry["id"],
                branch=entry["branch"],
                parents=tuple(entry["parents"]),
                sequence=entry["sequence"],
                message=entry.get("message", ""),
            )
        for entry in raw["branches"]:
            graph._branches[entry["name"]] = Branch(
                name=entry["name"],
                head=entry["head"],
                created_from=entry.get("created_from"),
                active=entry.get("active", True),
                parent_branch=entry.get("parent_branch"),
                merge_precedence=tuple(entry.get("merge_precedence", ())),
            )
        return graph

    def save(self, path: str) -> None:
        """Persist the graph to ``path``, CRC-stamped and atomically replaced.

        The graph is the root of every engine's recoverable state, so it goes
        through the full safe-replace protocol (crashpoints
        ``graph-persist-mid-write`` / ``graph-persist-pre-rename``).
        """
        dump_json_atomic(path, self.to_dict(), label="graph-persist")

    @classmethod
    def load(cls, path: str) -> "VersionGraph":
        """Load a graph previously written by :meth:`save`.

        Raises :class:`~repro.errors.CorruptionError` if the file fails its
        checksum -- a bit-flipped graph must never be silently misread.
        """
        if not os.path.exists(path):
            raise VersionError(f"no version graph at {path!r}")
        raw = load_checked_json(path)
        if not isinstance(raw, dict):
            raise CorruptionError(path, "version graph payload is not an object")
        return cls.from_dict(raw)
