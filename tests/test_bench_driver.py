"""Tests for the benchmark driver, queries and reporting."""

import random

import pytest

from repro.bench.driver import (
    BenchmarkConfig,
    apply_tablewise_update,
    cluster_plan,
    load_dataset,
)
from repro.bench.queries import (
    query1_single_scan,
    query2_positive_diff,
    query3_join,
    query4_head_scan,
)
from repro.bench.report import ResultTable
from repro.bench.strategies import Operation, OperationKind, make_strategy
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def small_load(tmp_path_factory):
    """One small curation dataset shared by the query tests in this module."""
    config = BenchmarkConfig(
        strategy="curation",
        engine="hybrid",
        num_branches=5,
        total_operations=400,
        commit_interval=100,
    )
    return load_dataset(config, str(tmp_path_factory.mktemp("bench")))


class TestLoadDataset:
    def test_load_applies_all_operations(self, small_load):
        assert small_load.operations_applied == 400
        assert small_load.inserts + small_load.updates == 400
        assert small_load.load_seconds > 0

    def test_commits_made_at_interval(self, small_load):
        # At least one interval commit plus the final per-branch commits.
        assert len(small_load.commit_ids) > small_load.config.num_branches
        assert len(small_load.commit_seconds) >= 1

    def test_merges_recorded_with_timings(self, small_load):
        assert small_load.merges == len(small_load.merge_timings)
        for timing in small_load.merge_timings:
            assert timing.seconds >= 0
            assert timing.diff_bytes >= 0

    def test_branches_exist_in_engine(self, small_load):
        engine = small_load.engine
        for branch in small_load.strategy.all_branches:
            assert engine.graph.has_branch(branch)

    def test_live_keys_match_engine(self, small_load):
        engine = small_load.engine
        for branch in ("master",):
            engine_keys = {r.values[0] for r in engine.scan_branch(branch)}
            assert set(small_load.live_keys[branch]) == engine_keys

    def test_data_size_positive(self, small_load):
        assert small_load.data_size_bytes > 0
        assert small_load.data_size_mb > 0

    def test_deterministic_across_engines(self, tmp_path):
        keys = {}
        for engine in ("version-first", "tuple-first", "hybrid"):
            config = BenchmarkConfig(
                strategy="deep",
                engine=engine,
                num_branches=3,
                total_operations=150,
                commit_interval=50,
            )
            result = load_dataset(config, str(tmp_path / engine))
            keys[engine] = {
                branch: sorted(r.values[0] for r in result.engine.scan_branch(branch))
                for branch in result.strategy.all_branches
            }
        assert keys["version-first"] == keys["tuple-first"] == keys["hybrid"]


class TestClusterPlan:
    def test_groups_data_operations_by_branch(self):
        plan = [
            Operation(OperationKind.INSERT, branch="b"),
            Operation(OperationKind.INSERT, branch="a"),
            Operation(OperationKind.INSERT, branch="b"),
            Operation(OperationKind.CREATE_BRANCH, branch="c", parent="a"),
            Operation(OperationKind.INSERT, branch="c"),
        ]
        clustered = cluster_plan(plan)
        assert [op.branch for op in clustered] == ["a", "b", "b", "c", "c"]
        assert clustered[3].kind is OperationKind.CREATE_BRANCH

    def test_structural_operations_keep_relative_order(self):
        strategy = make_strategy("flat", num_branches=4, total_operations=200, seed=2)
        plan = strategy.plan()
        clustered = cluster_plan(plan)
        assert len(clustered) == len(plan)
        original_structure = [
            op for op in plan if op.kind is OperationKind.CREATE_BRANCH
        ]
        clustered_structure = [
            op for op in clustered if op.kind is OperationKind.CREATE_BRANCH
        ]
        assert original_structure == clustered_structure

    def test_clustered_load_produces_same_logical_data(self, tmp_path):
        results = {}
        for clustered in (False, True):
            config = BenchmarkConfig(
                strategy="flat",
                engine="tuple-first",
                num_branches=3,
                total_operations=150,
                commit_interval=50,
            )
            result = load_dataset(
                config, str(tmp_path / f"clustered_{clustered}"), clustered=clustered
            )
            results[clustered] = {
                branch: sorted(r.values[0] for r in result.engine.scan_branch(branch))
                for branch in result.strategy.all_branches
            }
        # Interleaved and clustered loads cover the same branches with the
        # same per-branch record counts (exact keys may differ because update
        # targets depend on what is already live when each operation runs).
        assert results[False].keys() == results[True].keys()
        for branch in results[False]:
            assert len(results[False][branch]) == len(results[True][branch])


class TestTablewiseUpdate:
    def test_updates_every_record_and_grows_data(self, tmp_path):
        config = BenchmarkConfig(
            strategy="deep",
            engine="hybrid",
            num_branches=3,
            total_operations=150,
            commit_interval=50,
        )
        result = load_dataset(config, str(tmp_path))
        branch = result.strategy.single_scan_branch(random.Random(0))
        schema = result.engine.schema
        before = {r.values[0]: r.value(schema, "c1") for r in result.engine.scan_branch(branch)}
        size_before = result.data_size_bytes
        updated = apply_tablewise_update(result, branch, column="c1", delta=1)
        assert updated == len(before)
        after = {r.values[0]: r.value(schema, "c1") for r in result.engine.scan_branch(branch)}
        assert all(after[key] == value + 1 for key, value in before.items())
        result.engine.flush()
        assert result.data_size_bytes >= size_before

    def test_unknown_column_rejected(self, tmp_path):
        config = BenchmarkConfig(
            strategy="deep", engine="hybrid", num_branches=2, total_operations=50,
            commit_interval=25,
        )
        result = load_dataset(config, str(tmp_path))
        with pytest.raises(BenchmarkError):
            apply_tablewise_update(result, "master", column="nope")


class TestBenchQueries:
    def test_query1(self, small_load):
        branch = small_load.strategy.single_scan_branch(random.Random(0))
        measurement = query1_single_scan(small_load.engine, branch)
        assert measurement.query == "Q1"
        assert measurement.rows == len(list(small_load.engine.scan_branch(branch)))
        assert measurement.seconds > 0
        assert measurement.bytes_touched > 0
        assert measurement.throughput_mb_per_s >= 0

    def test_query2(self, small_load):
        branch_a, branch_b = small_load.strategy.multi_scan_pair(random.Random(1))
        measurement = query2_positive_diff(small_load.engine, branch_a, branch_b)
        diff = small_load.engine.diff(branch_a, branch_b)
        assert measurement.rows == len(diff.positive)

    def test_query3(self, small_load):
        branch_a, branch_b = small_load.strategy.multi_scan_pair(random.Random(2))
        measurement = query3_join(small_load.engine, branch_a, branch_b)
        assert 0 <= measurement.rows <= len(list(small_load.engine.scan_branch(branch_a)))

    def test_query4(self, small_load):
        measurement = query4_head_scan(small_load.engine)
        assert measurement.rows > 0


class TestResultTable:
    def test_add_row_validates_arity(self):
        table = ResultTable("t", ["a", "b"])
        table.add_row(1, 2)
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_text_rendering_contains_all_cells(self):
        table = ResultTable("My Table", ["name", "value"])
        table.add_row("alpha", 1.2345)
        table.add_row("beta", 250.0)
        table.add_note("a note")
        text = table.to_text()
        assert "My Table" in text
        assert "alpha" in text and "beta" in text
        assert "1.23" in text
        assert "250.0" in text
        assert "a note" in text

    def test_markdown_rendering(self):
        table = ResultTable("MD", ["x"])
        table.add_row(3)
        markdown = table.to_markdown()
        assert markdown.startswith("### MD")
        assert "| x |" in markdown
        assert "| 3 |" in markdown
