#!/usr/bin/env python
"""Fail CI when batched medians regress against the committed baselines.

Compares a freshly measured ``BENCH_pr4.json`` (written by the ``operators``
bench experiment, typically at CI smoke scale) against the committed
acceptance artifact.  Absolute times are machine-dependent, so the check is
on the *ratio*: for every workload present in both files, the fresh batched
median must not be more than ``--tolerance`` slower than what the fresh
streaming median and the committed speedup predict, i.e.::

    fresh_batched <= (1 + tolerance) * fresh_streaming / committed_speedup

which is equivalent to ``fresh_speedup >= committed_speedup / (1 + tol)``.

Workloads whose fresh streaming median is below ``--min-seconds`` are
skipped: at smoke scales a sub-millisecond query is scheduler noise, not a
signal.  Workloads with committed speedup <= 1 are informational only (the
batched mode never promised a win there).
"""

from __future__ import annotations

import argparse
import json
import sys


def iter_workloads(payload: dict):
    """Yield ``(name, entry)`` for every measured workload in a bench JSON."""
    for name, entry in payload.get("workloads", {}).items():
        yield name, entry
    for engine, queries in payload.get("queries", {}).items():
        for query, entry in queries.items():
            yield f"{engine}/{query}", entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True, help="freshly measured JSON")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression of the batched median (default 0.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.002,
        help="skip workloads whose streaming median is below this (noise floor)",
    )
    args = parser.parse_args(argv)
    with open(args.fresh, encoding="utf-8") as handle:
        fresh = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    committed = dict(iter_workloads(baseline))
    failures: list[str] = []
    checked = 0
    for name, entry in iter_workloads(fresh):
        base = committed.get(name)
        if base is None:
            continue
        streaming = entry.get("streaming_s", 0.0)
        batched = entry.get("batched_s", 0.0)
        committed_speedup = base.get("speedup", 0.0)
        if streaming < args.min_seconds:
            print(f"skip  {name}: streaming {streaming:.6f}s below noise floor")
            continue
        if committed_speedup <= 1.0 or batched <= 0:
            print(f"info  {name}: committed speedup {committed_speedup} (not gated)")
            continue
        checked += 1
        fresh_speedup = streaming / batched
        floor = committed_speedup / (1.0 + args.tolerance)
        status = "ok  " if fresh_speedup >= floor else "FAIL"
        print(
            f"{status}  {name}: fresh speedup {fresh_speedup:.2f} "
            f"(committed {committed_speedup:.2f}, floor {floor:.2f})"
        )
        if fresh_speedup < floor:
            failures.append(name)
    if failures:
        print(
            f"\n{len(failures)} workload(s) regressed >"
            f"{args.tolerance:.0%} against {args.baseline}: {', '.join(failures)}"
        )
        return 1
    print(f"\nchecked {checked} workload(s); no batched regression beyond "
          f"{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
