"""Per-engine index maintenance facade.

Every storage engine owns one :class:`IndexMaintenance` instance (its
``index_hook`` attribute -- lint rule REPRO011 checks that every mutation
path notifies it).  The facade owns:

- the in-memory :class:`~repro.storage.pk_index.PrimaryKeyIndex` (branches
  hydrate lazily on first touch, from the persisted store when its epoch
  matches the branch's commit head, otherwise by rebuilding from storage),
- the durable :class:`~repro.index.store.PrimaryKeyIndexStore` written
  inside the commit protocol (delta per commit, snapshot on clean close or
  compaction),
- the declared :class:`~repro.index.secondary.SecondaryIndex` set, built
  lazily per branch and maintained incrementally afterwards,
- the planner-facing API (:meth:`has_index`, :meth:`match_fraction`,
  :meth:`lookup_keys`) behind :class:`~repro.query.logical.IndexScan`.

Durability ordering: the engine calls :meth:`committed` *after* recording
commit state but *before* persisting the version graph.  A crash anywhere
in between leaves the index chain's epoch out of step with the graph head,
which the loader detects -- the index is then rebuilt, never served stale.
"""

from __future__ import annotations

import os
from typing import Callable, Iterable

from repro.core.schema import ColumnType, Schema
from repro.errors import SchemaError
from repro.index.secondary import SUPPORTED_OPS, SecondaryIndex
from repro.index.store import COMPACTION_FRAME_LIMIT, PrimaryKeyIndexStore
from repro.storage.pk_index import PrimaryKeyIndex

#: Column types a secondary index may be declared on.
INDEXABLE_TYPES = (ColumnType.INT, ColumnType.INT32, ColumnType.STRING)


class IndexMaintenance:
    """Owns one engine's primary and secondary indexes, memory and disk."""

    def __init__(self, directory: str, schema: Schema):
        self.schema = schema
        self.pk: PrimaryKeyIndex = PrimaryKeyIndex()
        self.store = PrimaryKeyIndexStore(os.path.join(directory, "index"))
        self.secondary: dict[str, SecondaryIndex] = {}
        #: branch -> {key -> location or None (= delete)} accumulated since
        #: the branch's last commit; drained into one delta frame per commit.
        self._pending: dict[str, dict[int, object]] = {}
        self._rebuild_branch: Callable[[str], dict[int, object]] | None = None
        self._scan_branch: Callable[[str], Iterable] | None = None
        self._head: Callable[[str], str | None] | None = None

    # -- engine wiring --------------------------------------------------------

    def bind(
        self,
        rebuild_branch: Callable[[str], dict[int, object]],
        scan_branch: Callable[[str], Iterable],
        head: Callable[[str], str | None],
        *,
        encode: Callable[[object], object] | None = None,
        decode: Callable[[object], object] | None = None,
    ) -> None:
        """Install the engine callbacks the hook needs.

        ``rebuild_branch`` derives a branch's full pk map from storage
        without touching the pk index (no reentrancy); ``scan_branch``
        yields the branch's live records (for secondary builds); ``head``
        resolves a branch to its current commit id.
        """
        self._rebuild_branch = rebuild_branch
        self._scan_branch = scan_branch
        self._head = head
        if encode is not None:
            self.store._encode = encode
        if decode is not None:
            self.store._decode = decode

    def attach_lazy(self, branches: Iterable[str]) -> None:
        """Register known branches for on-first-touch hydration (cold open)."""
        self.pk.register_lazy(branches, self._hydrate)

    def _hydrate(self, branch: str) -> dict[int, object]:
        expected = self._head(branch) if self._head is not None else None
        persisted = self.store.load_branch(branch, expected)
        if persisted is not None:
            return persisted
        if self._rebuild_branch is None:  # pragma: no cover - engine bug
            raise RuntimeError("index hook has no rebuild callback bound")
        # Stale/corrupt files are already forgotten; the rebuilt map gets
        # re-persisted on the next commit or clean close.
        return self._rebuild_branch(branch)

    # -- mutation notifications ----------------------------------------------

    def applied(self, branch: str, key: int, location: object, record) -> None:
        """An insert or update landed ``key`` at ``location`` in ``branch``."""
        self.pk.put(branch, key, location)
        self._pending.setdefault(branch, {})[key] = location
        for index in self.secondary.values():
            if index.has_branch(branch):
                index.put(branch, key, record.values[index.position])

    def removed(self, branch: str, key: int) -> None:
        """A delete dropped ``key`` from ``branch``."""
        self.pk.remove(branch, key)
        self._pending.setdefault(branch, {})[key] = None
        for index in self.secondary.values():
            if index.has_branch(branch):
                index.remove(branch, key)

    def branch_created(self, branch: str, clone_from: str | None = None) -> None:
        """A new branch forked at its parent's head (or empty for master)."""
        self.pk.add_branch(branch, clone_from=clone_from)
        self.store.forget(branch)
        self._pending.pop(branch, None)
        for index in self.secondary.values():
            if clone_from is not None and index.has_branch(clone_from):
                index.add_branch(branch, clone_from=clone_from)
            else:
                index.drop_branch(branch)

    def branch_rebuilt(self, branch: str, entries: dict[int, object]) -> None:
        """A branch was materialized wholesale (historical checkout)."""
        self.pk.replace_branch(branch, entries)
        self.store.forget(branch)
        self._pending.pop(branch, None)
        for index in self.secondary.values():
            index.drop_branch(branch)

    def branch_dropped(self, branch: str) -> None:
        """A branch was removed entirely."""
        if self.pk.has_branch(branch):
            self.pk.drop_branch(branch)
        self.store.forget(branch)
        self._pending.pop(branch, None)
        for index in self.secondary.values():
            index.drop_branch(branch)

    # -- durability hooks -----------------------------------------------------

    def committed(
        self, branch: str, commit_id: str, previous_commit_id: str | None
    ) -> None:
        """Advance ``branch``'s durable index chain to ``commit_id``.

        Called inside the engine's commit protocol, after commit state is
        recorded and before the version graph persists.  Writes either a
        first full snapshot (new chain) or one delta frame, then compacts
        when the log has grown past :data:`COMPACTION_FRAME_LIMIT`.
        """
        pending = self._pending.pop(branch, {})
        loaded = self.pk.branch_loaded(branch)
        if self.store.epoch(branch) is None and not self.store.has_files(branch):
            # No durable chain yet: start one with a full snapshot, which
            # needs the in-memory map -- hydrating just to persist would
            # defeat lazy opens, so an unloaded branch stays unpersisted
            # until first touched.
            if loaded:
                self.store.write_snapshot(
                    branch, commit_id, self.pk.entries(branch)
                )
            return
        puts = {key: loc for key, loc in pending.items() if loc is not None}
        deletes = [key for key, loc in pending.items() if loc is None]
        self.store.append_delta(
            branch, previous_commit_id, commit_id, puts, deletes
        )
        if loaded and self.store.frames(branch) > COMPACTION_FRAME_LIMIT:
            self.store.write_snapshot(branch, commit_id, self.pk.entries(branch))

    def save(self) -> None:
        """Snapshot every loaded branch whose chain is stale (clean close)."""
        if self._head is None:
            return
        for branch in self.pk.loaded_branches():
            head = self._head(branch)
            if head is None:
                continue
            if (
                self.store.epoch(branch) != head
                or not os.path.exists(self.store.snapshot_path(branch))
            ):
                self.store.write_snapshot(branch, head, self.pk.entries(branch))

    # -- secondary index declaration and use ----------------------------------

    def declare(self, column: str) -> None:
        """Declare a secondary index on ``column`` (idempotent)."""
        if column == self.schema.primary_key or column in self.secondary:
            return
        spec = self.schema.column(column)
        if spec.type not in INDEXABLE_TYPES:
            raise SchemaError(
                f"cannot index column {column!r} of type {spec.type.value}: "
                f"only INT, INT32 and STRING columns are indexable"
            )
        self.secondary[column] = SecondaryIndex(column, self.schema.index_of(column))

    def declared_columns(self) -> tuple[str, ...]:
        """The declared secondary-index columns, in declaration order."""
        return tuple(self.secondary)

    def has_index(self, column: str) -> bool:
        """True if ``column`` is the primary key or has a declared index."""
        return column == self.schema.primary_key or column in self.secondary

    def ensure_secondary(self, branch: str, column: str) -> SecondaryIndex:
        """The secondary index on ``column``, built for ``branch`` if needed."""
        index = self.secondary[column]
        if not index.has_branch(branch):
            if self._scan_branch is None:  # pragma: no cover - engine bug
                raise RuntimeError("index hook has no scan callback bound")
            key_position = self.schema.primary_key_index
            position = index.position
            index.build(
                branch,
                (
                    (record.values[key_position], record.values[position])
                    for record in self._scan_branch(branch)
                ),
            )
        return index

    def supports_op(self, column: str, op: str) -> bool:
        """True if an index on ``column`` can answer operator ``op``.

        The pk index is a hash map, so it answers equality only; declared
        secondary indexes answer equality and ranges.
        """
        if column in self.secondary:
            return op in SUPPORTED_OPS
        if column == self.schema.primary_key:
            return op in ("=", "==")
        return False

    def match_fraction(
        self, branch: str, column: str, op: str, value: object
    ) -> float | None:
        """Estimated fraction of the branch's live rows matching ``op value``.

        ``None`` means the index cannot estimate (unsupported op) and the
        optimizer must not pick it.  Secondary estimates are exact counts;
        a pk equality probe matches at most one row.
        """
        if column == self.schema.primary_key and column not in self.secondary:
            if op not in ("=", "=="):
                return None
            live = self.pk.live_count(branch)
            return 1.0 / live if live else 0.0
        if column not in self.secondary or op not in SUPPORTED_OPS:
            return None
        index = self.ensure_secondary(branch, column)
        size = index.size(branch)
        if size == 0:
            return 0.0
        return index.matching_count(branch, op, value) / size

    def lookup_keys(
        self, branch: str, column: str, op: str, value: object
    ) -> list[int]:
        """Primary keys in ``branch`` matching ``column op value``, sorted."""
        if column == self.schema.primary_key and column not in self.secondary:
            if op in ("=", "==") and self.pk.contains(branch, value):
                return [value]
            return []
        index = self.ensure_secondary(branch, column)
        return sorted(index.lookup(branch, op, value))
