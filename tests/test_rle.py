"""Tests for the run-length codec used by commit histories."""

import pytest

from repro.bitmap.rle import compression_ratio, rle_decode, rle_encode
from repro.errors import StorageError


class TestRLERoundtrip:
    @pytest.mark.parametrize(
        "data",
        [
            b"",
            b"a",
            b"abc",
            b"\x00" * 100,
            b"\xff" * 1000,
            b"ab" * 50,
            b"\x00" * 10 + b"xyz" + b"\x00" * 20,
            bytes(range(256)),
            b"aaa",  # run shorter than MIN_RUN stays literal
            b"aaaa",  # exactly MIN_RUN
        ],
    )
    def test_roundtrip(self, data):
        assert rle_decode(rle_encode(data)) == data

    def test_zero_runs_compress_well(self):
        data = b"\x00" * 10_000
        assert len(rle_encode(data)) < 20

    def test_sparse_bitmap_compresses(self):
        data = bytearray(4096)
        data[17] = 0xFF
        data[900] = 0x01
        encoded = rle_encode(bytes(data))
        assert len(encoded) < 64
        assert rle_decode(encoded) == bytes(data)

    def test_incompressible_overhead_is_bounded(self):
        data = bytes((i * 37 + 11) % 251 for i in range(4096))
        assert len(rle_encode(data)) <= len(data) * 1.05

    def test_compression_ratio_helper(self):
        assert compression_ratio(b"") == 1.0
        assert compression_ratio(b"\x00" * 1000) < 0.05
        assert compression_ratio(bytes(range(200))) >= 0.9


class TestRLEErrors:
    def test_unknown_token_rejected(self):
        with pytest.raises(StorageError):
            rle_decode(b"\x07\x01a")

    def test_truncated_literal_rejected(self):
        encoded = rle_encode(b"hello world this is long enough")
        with pytest.raises(StorageError):
            rle_decode(encoded[:-3])

    def test_truncated_run_rejected(self):
        encoded = rle_encode(b"\x00" * 100)
        with pytest.raises(StorageError):
            rle_decode(encoded[:-1])
