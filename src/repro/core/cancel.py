"""Cooperative cancellation and deadlines for long-running engine work.

The serving layer runs queries on worker threads; Python threads cannot be
killed, so cancellation is cooperative: the thread that owns a request
installs a :class:`CancelScope` (deadline and/or explicit cancel flag) and
the engine's batch loops call :func:`checkpoint` once per batch.  A tripped
scope raises :class:`~repro.errors.DeadlineExceededError` or
:class:`~repro.errors.QueryCancelledError` out of the operator tree, which
unwinds through the normal ``finally`` paths (releasing locks, transaction
state and buffer-pool budget) exactly like any other query error.

Checkpoints are placed at batch granularity (~1k rows), so the cost is one
thread-local lookup and a monotonic-clock read per batch -- noise next to
decoding the batch -- while bounding how long a cancelled query keeps
running to a single batch's worth of work.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import DeadlineExceededError, QueryCancelledError


class CancelScope:
    """A deadline plus an explicit cancel flag for one unit of work.

    ``timeout_s`` is relative to construction time; ``deadline`` is an
    absolute ``time.monotonic()`` value (at most one should be given).
    A scope with neither never expires and only trips on :meth:`cancel`.
    """

    __slots__ = ("label", "deadline", "started", "_cancelled", "_reason")

    def __init__(
        self,
        *,
        timeout_s: float | None = None,
        deadline: float | None = None,
        label: str = "request",
    ):
        self.label = label
        self.started = time.monotonic()
        if deadline is not None:
            self.deadline: float | None = deadline
        elif timeout_s is not None:
            self.deadline = self.started + timeout_s
        else:
            self.deadline = None
        self._cancelled = False
        self._reason = ""

    def cancel(self, reason: str = "") -> None:
        """Trip the scope; the owning thread raises at its next checkpoint."""
        self._reason = reason
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def elapsed(self) -> float:
        return time.monotonic() - self.started

    def remaining(self) -> float | None:
        """Seconds until the deadline (None when there is no deadline)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def expired(self) -> bool:
        return self.deadline is not None and time.monotonic() >= self.deadline

    def check(self) -> None:
        """Raise if the scope has been cancelled or its deadline passed."""
        if self._cancelled:
            suffix = f": {self._reason}" if self._reason else ""
            raise QueryCancelledError(f"{self.label} cancelled{suffix}")
        if self.deadline is not None and time.monotonic() >= self.deadline:
            elapsed = round(self.elapsed(), 4)
            raise DeadlineExceededError(
                f"{self.label} exceeded its deadline after {elapsed}s",
                elapsed_s=elapsed,
            )


_current = threading.local()


def current_scope() -> CancelScope | None:
    """The scope installed on this thread, or None outside any scope."""
    return getattr(_current, "scope", None)


@contextmanager
def use_scope(scope: CancelScope) -> Iterator[CancelScope]:
    """Install ``scope`` as this thread's current scope for the block.

    Scopes nest: the innermost wins while its block is active and the outer
    scope is restored on exit, so a bounded sub-operation (say, a lock
    acquisition with its own budget) does not erase the request's deadline.
    """
    previous = current_scope()
    _current.scope = scope
    try:
        yield scope
    finally:
        _current.scope = previous


def checkpoint() -> None:
    """Raise if the current thread's scope (if any) has tripped.

    Safe to call from any engine loop: outside a scope it is a single
    thread-local lookup and returns immediately.
    """
    scope = current_scope()
    if scope is not None:
        scope.check()


def remaining_time(default: float | None = None) -> float | None:
    """Seconds left on the current scope's deadline, else ``default``.

    Used to derive sub-operation budgets (lock timeouts, socket timeouts)
    from the request deadline so no internal wait outlives the request.
    The result is floored at 0.0 -- an already-expired scope yields a
    zero-second budget, making the sub-operation fail fast.
    """
    scope = current_scope()
    if scope is None or scope.deadline is None:
        return default
    remaining = scope.remaining()
    assert remaining is not None
    return max(0.0, remaining)
