"""A small versioned SQL front end.

Decibel supports arbitrary declarative queries that compare multiple versions
(paper Section 2.2.3); its companion language VQuel is defined elsewhere and
the paper communicates queries through their SQL equivalents (Table 1).  This
package implements that SQL dialect: single-version scans
(``WHERE R.Version = 'v01'``), positive diffs (``NOT IN`` subqueries over
another version), multi-version self-joins, and head scans
(``WHERE HEAD(R.Version) = true``), plus ordinary column predicates,
``DISTINCT``, aggregates, ``GROUP BY``, ``ORDER BY`` and ``LIMIT``.

Execution is a three-stage pipeline: :mod:`repro.query.logical` lowers the
parsed AST into a logical plan, :mod:`repro.query.optimizer` applies
rule-based rewrites (predicate pushdown, ``NOT IN`` -> engine ``diff``), and
:mod:`repro.query.physical` maps the optimized plan onto the iterator
operators of :mod:`repro.core.operators`.
"""

from repro.query.tokenizer import Token, TokenType, tokenize
from repro.query.parser import (
    ColumnComparison,
    HeadCondition,
    JoinCondition,
    NotInSubquery,
    OrderKey,
    SelectItem,
    SelectQuery,
    TableRef,
    VersionCondition,
    parse_query,
)
from repro.query.logical import LogicalNode, lower_query, render_plan, result_columns
from repro.query.optimizer import optimize
from repro.query.physical import QueryResult, build_physical, execute_plan
from repro.query.executor import execute_query, explain_query, plan_query

__all__ = [
    "Token",
    "TokenType",
    "tokenize",
    "SelectQuery",
    "SelectItem",
    "OrderKey",
    "TableRef",
    "VersionCondition",
    "HeadCondition",
    "ColumnComparison",
    "JoinCondition",
    "NotInSubquery",
    "parse_query",
    "LogicalNode",
    "lower_query",
    "render_plan",
    "result_columns",
    "optimize",
    "build_physical",
    "execute_plan",
    "QueryResult",
    "execute_query",
    "explain_query",
    "plan_query",
]
