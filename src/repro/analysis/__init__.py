"""Static analysis for the Decibel reproduction.

Two layers of machine-checked invariants guard the engine:

* :mod:`repro.analysis.plan_check` -- a **plan verifier** that walks every
  logical plan before a single row flows and checks schema/type
  propagation, execution-mode consistency, optimizer-rewrite legality and
  operator-protocol conformance, raising a structured
  :class:`~repro.errors.PlanInvariantError` on the first violation.

* :mod:`repro.analysis.lint` -- an **engine lint**: a small AST-based rule
  framework encoding repo-wide source invariants (operator batch protocol,
  pickle confinement, lock ordering, bench determinism, ...), runnable via
  ``scripts/lint.py`` and enforced in CI.
"""

from repro.analysis.plan_check import (
    default_verify,
    set_default_verify,
    verify_plan,
)
from repro.errors import PlanInvariantError

__all__ = [
    "PlanInvariantError",
    "default_verify",
    "set_default_verify",
    "verify_plan",
]
