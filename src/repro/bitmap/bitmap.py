"""A growable bitset.

Bitmaps are the indexing structure of the tuple-first and hybrid layouts: one
bit per (tuple, branch) pair records whether the tuple is live in the branch.
The backing store is a ``bytearray`` that grows by doubling, matching the
amortized growth strategy described for branch creation in the paper
(Section 3.2).  Bulk logical operations convert to Python integers, which
gives word-at-a-time AND/OR/XOR without a native extension.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class Bitmap:
    """A dynamically sized bitset with bulk logical operations."""

    __slots__ = ("_bytes", "_num_bits")

    def __init__(self, num_bits: int = 0):
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        self._num_bits = num_bits
        self._bytes = bytearray((num_bits + 7) // 8)

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_indices(cls, indices: Iterable[int], num_bits: int = 0) -> "Bitmap":
        """A bitmap with exactly the given bit positions set."""
        bitmap = cls(num_bits)
        for index in indices:
            bitmap.set(index)
        return bitmap

    @classmethod
    def from_bytes(cls, data: bytes, num_bits: int) -> "Bitmap":
        """Rebuild a bitmap from :meth:`to_bytes` output."""
        bitmap = cls(num_bits)
        payload = bytearray(data[: (num_bits + 7) // 8])
        payload.extend(b"\x00" * ((num_bits + 7) // 8 - len(payload)))
        bitmap._bytes = payload
        return bitmap

    def copy(self) -> "Bitmap":
        """An independent copy of this bitmap."""
        clone = Bitmap(self._num_bits)
        clone._bytes = bytearray(self._bytes)
        return clone

    # -- size -----------------------------------------------------------------

    def __len__(self) -> int:
        """The logical number of bits tracked (set or not)."""
        return self._num_bits

    @property
    def size_bytes(self) -> int:
        """Bytes used by the backing store."""
        return len(self._bytes)

    def _ensure(self, index: int) -> None:
        if index < 0:
            raise IndexError("bit index must be non-negative")
        if index >= self._num_bits:
            self._num_bits = index + 1
        needed = (self._num_bits + 7) // 8
        if needed > len(self._bytes):
            # Grow by doubling to amortize repeated appends.
            new_size = max(needed, 2 * len(self._bytes), 8)
            self._bytes.extend(b"\x00" * (new_size - len(self._bytes)))

    # -- single-bit operations ------------------------------------------------

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1, growing the bitmap if needed."""
        self._ensure(index)
        self._bytes[index >> 3] |= 1 << (index & 7)

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0, growing the bitmap if needed."""
        self._ensure(index)
        self._bytes[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def get(self, index: int) -> bool:
        """True if bit ``index`` is set.  Out-of-range bits read as 0."""
        if index < 0:
            raise IndexError("bit index must be non-negative")
        if index >= self._num_bits:
            return False
        return bool(self._bytes[index >> 3] & (1 << (index & 7)))

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    # -- bulk operations ------------------------------------------------------

    def _as_int(self) -> int:
        return int.from_bytes(self._bytes, "little")

    @classmethod
    def _from_int(cls, value: int, num_bits: int) -> "Bitmap":
        bitmap = cls(num_bits)
        num_bytes = (num_bits + 7) // 8
        bitmap._bytes = bytearray(value.to_bytes(max(num_bytes, 1), "little")[:num_bytes])
        if len(bitmap._bytes) < num_bytes:
            bitmap._bytes.extend(b"\x00" * (num_bytes - len(bitmap._bytes)))
        return bitmap

    def _binary(self, other: "Bitmap", op) -> "Bitmap":
        num_bits = max(self._num_bits, other._num_bits)
        return Bitmap._from_int(op(self._as_int(), other._as_int()), num_bits)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return self._binary(other, lambda a, b: a & b)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return self._binary(other, lambda a, b: a | b)

    def __xor__(self, other: "Bitmap") -> "Bitmap":
        return self._binary(other, lambda a, b: a ^ b)

    def and_not(self, other: "Bitmap") -> "Bitmap":
        """Bits set in ``self`` but not in ``other`` (set difference)."""
        return self._binary(other, lambda a, b: a & ~b)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._as_int() == other._as_int()

    def __hash__(self) -> int:  # pragma: no cover - bitmaps rarely hashed
        return hash(self._as_int())

    # -- queries --------------------------------------------------------------

    def count(self) -> int:
        """Number of set bits (population count)."""
        return self._as_int().bit_count()

    def any(self) -> bool:
        """True if at least one bit is set."""
        return any(self._bytes)

    def iter_set_bits(self) -> Iterator[int]:
        """Yield the indices of set bits in ascending order."""
        for byte_index, byte in enumerate(self._bytes):
            if not byte:
                continue
            base = byte_index << 3
            while byte:
                low = byte & -byte
                yield base + low.bit_length() - 1
                byte ^= low

    def to_indices(self) -> list[int]:
        """The set bit positions as a list."""
        return list(self.iter_set_bits())

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """The backing bytes, trimmed to the logical bit length."""
        return bytes(self._bytes[: (self._num_bits + 7) // 8])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Bitmap(bits={self._num_bits}, set={self.count()})"
