"""End-to-end crash-recovery matrix: workloads x crashpoints x engines.

Every test follows the same shape: run a workload through the transactional
API, inject a crash at a named point inside the final transaction's commit,
reopen the database directory with :meth:`Decibel.open`, and assert the two
durability invariants:

* **Committed is durable** -- every transaction whose COMMIT record reached
  the log is fully visible after recovery (redone if needed).
* **Losers are invisible** -- a transaction that crashed before its commit
  point leaves no trace.

A hypothesis-driven variant generates the workload (insert / update /
delete / branch mixes) and checks recovered state against an in-memory
model.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.record import Record
from repro.core.schema import Schema
from repro.db.database import Decibel
from repro.query.executor import explain_query
from repro.testing.faults import FaultSchedule, InjectedCrash, inject

#: Every named crashpoint the durable write paths register, spanning the WAL
#: append, metadata atomic-writes, and commit-history appends.
CRASHPOINTS = [
    "wal-append-pre-fsync",
    "graph-persist-mid-write",
    "graph-persist-pre-rename",
    "segment-meta-mid-write",
    "segment-meta-pre-rename",
    "history-append-pre-fsync",
    "commit-locations-pre-rename",
    "hybrid-meta-pre-fsync",
    "index-mid-write",
    "index-pre-rename",
    "index-delta-pre-fsync",
]

ENGINES = ["tuple-first", "version-first", "hybrid"]

SCHEMA = Schema.of_ints(2)


def record(key, payload=0):
    return Record((key, payload))


def seed_database(directory, engine):
    """A dataset with committed baseline data: keys 0..9 plus key 100."""
    db = Decibel(str(directory), engine=engine)
    rel = db.create_relation("t", SCHEMA)
    rel.init([record(i, i * 10) for i in range(10)])
    txn = db.transactions("t").begin()
    txn.insert("master", record(100, 1))
    txn.commit("committed baseline")
    return db


def live_keys(db, branch="master"):
    return {r.key(SCHEMA) for r in db.relation("t").scan(branch)}


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("point", CRASHPOINTS)
class TestCrashMatrix:
    def test_insert_crash(self, tmp_path, engine, point):
        db = seed_database(tmp_path, engine)
        txn = db.transactions("t").begin()
        txn.insert("master", record(200, 2))
        self._crash_and_verify(tmp_path, engine, point, txn, victim_key=200)

    def test_update_crash(self, tmp_path, engine, point):
        db = seed_database(tmp_path, engine)
        txn = db.transactions("t").begin()
        txn.update("master", record(5, 999))
        crashed = self._crash(point, txn)
        reopened = Decibel.open(str(tmp_path), engine=engine)
        assert live_keys(reopened) == set(range(10)) | {100}
        rows = {
            r.key(SCHEMA): r.values[1] for r in reopened.relation("t").scan("master")
        }
        if crashed and not self._committed(reopened, txn):
            assert rows[5] == 50, "uncommitted update leaked through recovery"
        else:
            assert rows[5] == 999, "committed update was lost"

    def test_delete_crash(self, tmp_path, engine, point):
        db = seed_database(tmp_path, engine)
        txn = db.transactions("t").begin()
        txn.delete("master", 7)
        crashed = self._crash(point, txn)
        reopened = Decibel.open(str(tmp_path), engine=engine)
        keys = live_keys(reopened)
        if crashed and not self._committed(reopened, txn):
            assert 7 in keys, "uncommitted delete survived the crash"
        else:
            assert 7 not in keys, "committed delete was resurrected"
        assert keys - {7} == (set(range(10)) | {100}) - {7}

    def test_branch_workload_crash(self, tmp_path, engine, point):
        db = seed_database(tmp_path, engine)
        db.relation("t").branch("dev", from_branch="master")
        txn = db.transactions("t").begin()
        txn.insert("dev", record(300, 3))
        txn.delete("dev", 3)
        crashed = self._crash(point, txn)
        reopened = Decibel.open(str(tmp_path), engine=engine)
        # Master is untouched by the dev transaction either way.
        assert live_keys(reopened) == set(range(10)) | {100}
        dev = live_keys(reopened, "dev")
        if crashed and not self._committed(reopened, txn):
            assert dev == set(range(10)) | {100}
        else:
            assert dev == (set(range(10)) | {100, 300}) - {3}

    # -- helpers ----------------------------------------------------------

    def _crash(self, point, txn):
        """Commit under an armed crashpoint; True if the crash fired."""
        try:
            with inject(FaultSchedule(point)) as injector:
                txn.commit("under test")
        except InjectedCrash:
            assert injector.fired is not None
            return True
        return False

    @staticmethod
    def _committed(db, txn):
        """True if the transaction's COMMIT record survived in the log.

        Recovery checkpoints the WAL, so consult the recovery report rather
        than the (now truncated) log.
        """
        report = db.last_recovery
        return txn.transaction_id in report.committed

    def _crash_and_verify(self, tmp_path, engine, point, txn, victim_key):
        crashed = self._crash(point, txn)
        reopened = Decibel.open(str(tmp_path), engine=engine)
        keys = live_keys(reopened)
        baseline = set(range(10)) | {100}
        assert baseline <= keys, "committed baseline data was lost"
        if crashed and not self._committed(reopened, txn):
            assert victim_key not in keys, "loser transaction is visible"
            assert keys == baseline
        else:
            assert victim_key in keys, "committed transaction was lost"
            assert keys == baseline | {victim_key}
        # The catalog and graph must parse and agree with the indexes --
        # Decibel.open already ran _verify_consistency, so reaching here
        # means the dataset is structurally sound.  Queries still work:
        count = reopened.query(
            "SELECT COUNT(*) FROM t WHERE t.Version = 'master'"
        ).rows[0][0]
        assert count == len(keys)


class TestRecoveryDetails:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_crash_between_commit_and_apply_is_redone(self, tmp_path, engine):
        """A committed-but-unapplied transaction is redone exactly once."""
        db = seed_database(tmp_path, engine)
        txn = db.transactions("t").begin()
        txn.insert("master", record(500, 5))
        with pytest.raises(InjectedCrash):
            # The graph persist happens inside engine.commit, after the WAL
            # COMMIT record: the transaction is committed but not applied.
            with inject(FaultSchedule("graph-persist-mid-write")):
                txn.commit("will need redo")
        reopened = Decibel.open(str(tmp_path), engine=engine)
        report = reopened.last_recovery
        assert txn.transaction_id in report.committed
        assert 500 in live_keys(reopened)
        rows = [
            r
            for r in reopened.relation("t").scan("master")
            if r.key(SCHEMA) == 500
        ]
        assert len(rows) == 1, "redo duplicated the insert"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_clean_reopen_has_no_work(self, tmp_path, engine):
        db = seed_database(tmp_path, engine)
        db.close()
        reopened = Decibel.open(str(tmp_path), engine=engine)
        report = reopened.last_recovery
        assert report.needs_redo == set()
        assert live_keys(reopened) == set(range(10)) | {100}

    @pytest.mark.parametrize("engine", ENGINES)
    def test_double_crash_during_recovery(self, tmp_path, engine):
        """Crashing *inside recovery* still converges on the next open."""
        db = seed_database(tmp_path, engine)
        txn = db.transactions("t").begin()
        txn.insert("master", record(600, 6))
        with pytest.raises(InjectedCrash):
            with inject(FaultSchedule("graph-persist-mid-write")):
                txn.commit("first crash")
        # Second crash: die during the recovery's own redo commit.
        with pytest.raises(InjectedCrash):
            with inject(FaultSchedule("graph-persist-mid-write")):
                Decibel.open(str(tmp_path), engine=engine)
        reopened = Decibel.open(str(tmp_path), engine=engine)
        assert 600 in live_keys(reopened)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_transaction_ids_unique_across_restart(self, tmp_path, engine):
        db = seed_database(tmp_path, engine)
        txn = db.transactions("t").begin()
        txn.insert("master", record(700, 7))
        with pytest.raises(InjectedCrash):
            with inject(FaultSchedule("wal-append-pre-fsync", hit=2)):
                txn.commit("loser")
        reopened = Decibel.open(str(tmp_path), engine=engine)
        new_txn = reopened.transactions("t").begin()
        assert new_txn.transaction_id != txn.transaction_id


class TestIndexCrash:
    """Index files are derived data: a crash anywhere in their write path
    must leave a database that rebuilds the index, never one serving a
    stale or torn map.

    The crashpoints fire at different commits: a branch's *first* chain
    commit writes a full snapshot (``index-mid-write`` /
    ``index-pre-rename``), later commits append delta frames
    (``index-delta-pre-fsync``).  ``torn_bytes`` additionally truncates
    the delta log's tail before dying, modelling a frame that only
    partially reached the platter.
    """

    def _verify_index_agrees_with_scan(self, reopened, branch="master"):
        """Every live key answers through the pk index; misses answer []."""
        keys = live_keys(reopened, branch)
        plan = explain_query(
            reopened,
            f"SELECT * FROM t WHERE t.Version = '{branch}' AND t.id = 0",
        )
        assert "[index]" in plan, "pk point query lost its index scan"
        for key in sorted(keys):
            rows = reopened.query(
                f"SELECT * FROM t WHERE t.Version = '{branch}' AND t.id = {key}"
            ).rows
            assert len(rows) == 1 and rows[0][0] == key, (
                f"index disagrees with scan for key {key} on {branch!r}"
            )
        return keys

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("point", ["index-mid-write", "index-pre-rename"])
    def test_snapshot_crash_rebuilds(self, tmp_path, engine, point):
        """Die writing a branch's first index snapshot; recovery rebuilds."""
        db = seed_database(tmp_path, engine)
        db.relation("t").branch("dev", from_branch="master")
        txn = db.transactions("t").begin()
        txn.insert("dev", record(200, 2))
        crashed = False
        try:
            # Dev's first chain commit writes a full snapshot: the armed
            # point fires inside that write.
            with inject(FaultSchedule(point)) as injector:
                txn.commit("dies writing the dev snapshot")
        except InjectedCrash:
            crashed = True
            assert injector.fired is not None
        assert crashed, f"{point} never fired during the first dev commit"
        reopened = Decibel.open(str(tmp_path), engine=engine)
        self._verify_index_agrees_with_scan(reopened, "master")
        dev = self._verify_index_agrees_with_scan(reopened, "dev")
        committed = txn.transaction_id in reopened.last_recovery.committed
        if committed:
            assert 200 in dev, "committed insert missing after index crash"
        else:
            rows = reopened.query(
                "SELECT * FROM t WHERE t.Version = 'dev' AND t.id = 200"
            ).rows
            assert rows == [], "loser insert visible through the index"

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("torn_bytes", [0, 3], ids=["clean", "torn-tail"])
    def test_delta_crash_rebuilds(self, tmp_path, engine, torn_bytes):
        """Die appending a delta frame (optionally tearing its tail)."""
        db = seed_database(tmp_path, engine)
        txn = db.transactions("t").begin()
        txn.insert("master", record(200, 2))
        txn.delete("master", 3)
        crashed = False
        try:
            with inject(
                FaultSchedule("index-delta-pre-fsync", torn_bytes=torn_bytes)
            ) as injector:
                txn.commit("dies appending the master delta frame")
        except InjectedCrash:
            crashed = True
            assert injector.fired is not None
        assert crashed, "index-delta-pre-fsync never fired"
        reopened = Decibel.open(str(tmp_path), engine=engine)
        keys = self._verify_index_agrees_with_scan(reopened, "master")
        committed = txn.transaction_id in reopened.last_recovery.committed
        if committed:
            assert 200 in keys and 3 not in keys
        else:
            assert keys == set(range(10)) | {100}
            rows = reopened.query(
                "SELECT * FROM t WHERE t.Version = 'master' AND t.id = 200"
            ).rows
            assert rows == [], "loser insert visible through the index"

    @pytest.mark.parametrize("engine", ENGINES)
    def test_corrupt_snapshot_on_disk_is_rebuilt(self, tmp_path, engine):
        """Flip bytes in a persisted snapshot; the loader must reject it."""
        import glob

        db = seed_database(tmp_path, engine)
        db.close()
        snapshots = glob.glob(
            str(tmp_path / "t" / "index" / "pk_*.json")
        )
        assert snapshots, "clean close left no pk snapshot behind"
        for path in snapshots:
            with open(path, "r+b") as handle:
                handle.seek(-8, 2)
                handle.write(b"garbage!")
        reopened = Decibel.open(str(tmp_path), engine=engine)
        keys = self._verify_index_agrees_with_scan(reopened, "master")
        assert keys == set(range(10)) | {100}


# -- hypothesis-driven matrix -------------------------------------------------

workload_steps = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "branch"]),
        st.integers(min_value=0, max_value=19),
        st.integers(min_value=0, max_value=99),
    ),
    min_size=1,
    max_size=8,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    steps=workload_steps,
    crash_index=st.integers(min_value=0, max_value=len(CRASHPOINTS) - 1),
)
@pytest.mark.parametrize("engine", ENGINES)
def test_generated_workloads_recover(tmp_path_factory, engine, steps, crash_index):
    """Random workloads, crashed at a random point, recover to model state."""
    directory = tmp_path_factory.mktemp("db")
    point = CRASHPOINTS[crash_index]
    db = Decibel(str(directory), engine=engine)
    rel = db.create_relation("t", SCHEMA)
    rel.init([record(i, i) for i in range(10)])
    model = {"master": {i: i for i in range(10)}}
    branches = ["master"]

    # Apply the committed prefix of the workload (everything but the last
    # step) through individual committed transactions, mirrored in the model.
    manager = db.transactions("t")
    committed_steps, final_step = steps[:-1], steps[-1]
    for action, key, payload in committed_steps:
        branch = branches[key % len(branches)]
        if action == "branch":
            name = f"b{len(branches)}"
            rel.branch(name, from_branch=branch)
            model[name] = dict(model[branch])
            branches.append(name)
            continue
        txn = manager.begin()
        if action == "insert" and key not in model[branch]:
            txn.insert(branch, record(key, payload))
            model[branch][key] = payload
        elif action == "update" and key in model[branch]:
            txn.update(branch, record(key, payload))
            model[branch][key] = payload
        elif action == "delete" and key in model[branch]:
            txn.delete(branch, key)
            del model[branch][key]
        txn.commit()

    # The final step runs under an armed crashpoint.
    action, key, payload = final_step
    branch = branches[key % len(branches)]
    crashed = False
    victim = None
    if action == "branch" or key % 2 == 0:
        victim = manager.begin()
        victim.insert(branch, record(1000 + key, payload))
    else:
        victim = manager.begin()
        if key in model[branch]:
            victim.delete(branch, key)
        else:
            victim.insert(branch, record(key, payload))
    try:
        with inject(FaultSchedule(point)):
            victim.commit("maybe dies")
    except InjectedCrash:
        crashed = True

    reopened = Decibel.open(str(directory), engine=engine)
    report = reopened.last_recovery
    survived = not crashed or victim.transaction_id in report.committed
    for name in branches:
        expected = dict(model[name])
        if survived and name == branch:
            # Replay the victim's effect into the model.
            if action == "branch" or key % 2 == 0:
                expected[1000 + key] = payload
            elif key in expected:
                del expected[key]
            else:
                expected[key] = payload
        got = {
            r.key(SCHEMA): r.values[1]
            for r in reopened.relation("t").scan(name)
        }
        assert got == expected, (
            f"branch {name!r} diverged after crash at {point} "
            f"(crashed={crashed}, survived={survived})"
        )


class TestServingLayerCrash:
    """The PR-8 recovery path, driven through the serving layer.

    A server session's commit dies at the WAL group-commit fsync.  The
    client got no ACK, so either outcome is legitimate -- the commit
    record reached the log (visible in full after recovery) or it did
    not (no trace) -- but a *partial* commit or a lost previously-ACKed
    commit is never acceptable.  The multi-writer no-lost-ACK variant
    lives in tests/test_server_faults.py.
    """

    def test_crashed_server_commit_is_all_or_nothing(self, tmp_path):
        from repro.errors import DecibelError
        from repro.server import DecibelClient, ServerConfig, ServerThread

        db = seed_database(tmp_path, "hybrid")
        server = ServerThread(db, ServerConfig(worker_threads=2), own_db=True)
        host, port = server.start()
        with DecibelClient(host, port, max_attempts=1) as client:
            client.connect()
            # One ACKed commit before the crash: it must survive.
            client.insert("t", [300, 3])
            client.commit("durable")
            # The next commit dies at its group fsync: no ACK, no trace.
            client.insert("t", [400, 4])
            with inject(FaultSchedule("wal-group-commit-pre-fsync")) as injector:
                with pytest.raises((DecibelError, ConnectionError, OSError)):
                    client.commit("dies at fsync")
                server.stop()
                assert injector.crashed
        reopened = Decibel.open(str(tmp_path), engine="hybrid")
        live = live_keys(reopened)
        baseline = set(range(10)) | {100, 300}
        assert live in (baseline, baseline | {400}), (
            f"recovered state is neither pre- nor post-commit: {sorted(live)}"
        )
