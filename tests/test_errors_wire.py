"""The wire-error taxonomy: stable codes and lossless round-trips.

Every exception the engine raises must survive serialization to a client
and come back as the same type with the same structured fields -- the
serving layer's error handling is only as good as this contract.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import (
    BenchmarkError,
    BranchExistsError,
    BranchNotFoundError,
    ColumnBatchError,
    CommitNotFoundError,
    CorruptionError,
    DatabaseClosedError,
    DeadlineExceededError,
    DecibelError,
    MergeConflictError,
    OverloadedError,
    PageError,
    PlanInvariantError,
    ProtocolError,
    QueryCancelledError,
    QueryError,
    RecordError,
    SchemaError,
    StorageError,
    TransactionError,
    UnavailableError,
    VersionError,
    error_from_wire,
    registered_error_codes,
)


def roundtrip(exc: DecibelError) -> DecibelError:
    doc = exc.to_wire()
    # The wire form must be JSON-serializable as-is.
    rebuilt = error_from_wire(json.loads(json.dumps(doc)))
    return rebuilt


SIMPLE_ERRORS = [
    SchemaError("bad schema"),
    RecordError("bad record"),
    PageError("bad page"),
    StorageError("io failed"),
    TransactionError("deadlock victim"),
    VersionError("version trouble"),
    BranchNotFoundError("no branch 'dev'"),
    CommitNotFoundError("no commit v9"),
    BranchExistsError("branch 'dev' exists"),
    MergeConflictError("3 conflicts"),
    BenchmarkError("bad workload"),
    ProtocolError("bad frame"),
    UnavailableError("draining"),
    QueryCancelledError("cancelled by client"),
    DatabaseClosedError("closed"),
    DecibelError("generic"),
]


class TestRegistry:
    def test_codes_are_unique_and_stable(self):
        codes = registered_error_codes()
        # Every registered code maps back to a class whose code matches.
        for code, cls in codes.items():
            assert cls.code == code
        # The stable names clients are allowed to depend on.
        # (the base class's "internal" code is the from-wire fallback and
        # intentionally not in the subclass registry)
        expected = {
            "schema",
            "record",
            "column-batch",
            "page",
            "storage",
            "corruption",
            "transaction",
            "version",
            "branch-not-found",
            "commit-not-found",
            "branch-exists",
            "merge-conflict",
            "query",
            "plan-invariant",
            "benchmark",
            "protocol",
            "unavailable",
            "overloaded",
            "deadline-exceeded",
            "cancelled",
            "database-closed",
        }
        assert expected <= set(codes)

    def test_retryable_classification(self):
        assert OverloadedError("x").retryable
        assert UnavailableError("x").retryable
        assert DeadlineExceededError("x").retryable
        assert TransactionError("x").retryable
        assert not SchemaError("x").retryable
        assert not QueryError("x").retryable
        assert not CorruptionError("/p", "torn").retryable
        assert not ProtocolError("x").retryable

    def test_duplicate_code_is_rejected_at_class_creation(self):
        with pytest.raises(TypeError):

            class Impostor(DecibelError):
                code = "overloaded"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "exc", SIMPLE_ERRORS, ids=[type(e).__name__ for e in SIMPLE_ERRORS]
    )
    def test_simple_errors_roundtrip(self, exc):
        rebuilt = roundtrip(exc)
        assert type(rebuilt) is type(exc)
        assert rebuilt.code == exc.code
        assert rebuilt.retryable == exc.retryable
        assert str(exc) in str(rebuilt)

    def test_query_error_preserves_position(self):
        exc = QueryError("unexpected token")
        exc.position = 17
        rebuilt = roundtrip(exc)
        assert isinstance(rebuilt, QueryError)
        assert rebuilt.position == 17

    def test_plan_invariant_error_preserves_rule_and_node(self):
        exc = PlanInvariantError("mode", "Project", "batched child in columnar plan")
        rebuilt = roundtrip(exc)
        assert isinstance(rebuilt, PlanInvariantError)
        assert rebuilt.rule == "mode"
        assert rebuilt.node == "Project"
        assert rebuilt.detail == "batched child in columnar plan"

    def test_corruption_error_preserves_forensics(self):
        exc = CorruptionError(
            "/data/wal.log", "checksum mismatch", offset=4096,
            expected="deadbeef", actual="00000000",
        )
        rebuilt = roundtrip(exc)
        assert isinstance(rebuilt, CorruptionError)
        assert rebuilt.file == "/data/wal.log"
        assert rebuilt.offset == 4096
        assert rebuilt.expected == "deadbeef"
        assert rebuilt.actual == "00000000"

    def test_column_batch_error_preserves_context(self):
        exc = ColumnBatchError("length", "price", "3 != 4")
        rebuilt = roundtrip(exc)
        assert isinstance(rebuilt, ColumnBatchError)
        assert rebuilt.reason == "length"
        assert rebuilt.column == "price"
        assert rebuilt.detail == "3 != 4"

    def test_overloaded_error_preserves_retry_hint(self):
        exc = OverloadedError("queue full", retry_after_s=0.25)
        rebuilt = roundtrip(exc)
        assert isinstance(rebuilt, OverloadedError)
        assert rebuilt.retry_after_s == 0.25
        assert rebuilt.retryable

    def test_deadline_error_preserves_elapsed(self):
        exc = DeadlineExceededError("over budget", elapsed_s=1.5)
        rebuilt = roundtrip(exc)
        assert isinstance(rebuilt, DeadlineExceededError)
        assert rebuilt.elapsed_s == 1.5

    def test_unknown_code_degrades_to_base_error(self):
        doc = {
            "code": "from-the-future",
            "message": "a new failure mode",
            "retryable": True,
            "fields": {},
        }
        rebuilt = error_from_wire(doc)
        assert type(rebuilt) is DecibelError
        assert rebuilt.code == "from-the-future"
        assert rebuilt.retryable is True
        assert "a new failure mode" in str(rebuilt)

    def test_wire_form_shape(self):
        doc = OverloadedError("busy", retry_after_s=0.1).to_wire()
        assert set(doc) == {"code", "message", "retryable", "fields"}
        assert doc["code"] == "overloaded"
        assert doc["retryable"] is True
        assert doc["fields"]["retry_after_s"] == 0.1
