"""Property tests for the version-first per-branch primary-key index.

The index (key -> (segment, ordinal) per branch) is an acceleration
structure layered over the paper's index-free version-first layout; the
segment-chain walk of ``scan_branch`` remains the reference semantics.
Hypothesis generates operation sequences -- inserts, updates, deletes,
branches (from heads and from historical commits), commits and merges --
and the tests check that the index and the chain walk stay in agreement
after replaying them: same live keys, locations resolving to the same
records, and identical batched-scan output.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.record import Record
from repro.core.schema import Schema
from repro.storage.version_first import VersionFirstEngine

operation_steps = st.lists(
    st.tuples(
        st.sampled_from(
            ["insert", "update", "delete", "branch", "branch_commit",
             "commit", "merge"]
        ),
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=0, max_value=999),
    ),
    min_size=1,
    max_size=60,
)


def _live_map(engine: VersionFirstEngine, branch: str) -> dict:
    """The chain walk's view of a branch: {key -> record values}."""
    return {
        record.values[0]: record.values
        for record in engine.scan_branch(branch)
    }


def _replay(engine: VersionFirstEngine, steps) -> list[str]:
    branches = ["master"]
    commits = [engine.graph.head("master")]
    live: dict[str, set[int]] = {"master": set()}
    for step_index, (action, key, payload_seed) in enumerate(steps):
        branch = branches[key % len(branches)]
        payload = (payload_seed, payload_seed * 2, payload_seed * 3)
        if action == "insert":
            if key in live[branch]:
                continue
            engine.insert(branch, Record((key,) + payload))
            live[branch].add(key)
        elif action == "update":
            if key not in live[branch]:
                continue
            engine.update(branch, Record((key,) + payload))
        elif action == "delete":
            if key not in live[branch]:
                continue
            engine.delete(branch, key)
            live[branch].discard(key)
        elif action == "branch":
            if len(branches) >= 5:
                continue
            name = f"b{step_index}"
            engine.create_branch(name, from_branch=branch)
            branches.append(name)
            live[name] = set(live[branch])
        elif action == "branch_commit":
            if len(branches) >= 5 or not commits:
                continue
            commit_id = commits[payload_seed % len(commits)]
            name = f"c{step_index}"
            engine.create_branch(name, from_commit=commit_id)
            branches.append(name)
            live[name] = set(_live_map(engine, name))
        elif action == "commit":
            commits.append(engine.commit(branch))
        else:  # merge
            if len(branches) < 2:
                continue
            source = branches[payload_seed % len(branches)]
            if source == branch:
                continue
            engine.merge(branch, source, message=f"m{step_index}")
            # Merges rewrite the target; refresh its mirror from the
            # reference chain walk (never from the index under test).
            live[branch] = set(_live_map(engine, branch))
    return branches


def _assert_index_matches_chain(engine: VersionFirstEngine, branches) -> None:
    for branch in branches:
        expected = _live_map(engine, branch)
        entries = engine.pk_index.entries(branch)
        # Same live key set...
        assert set(entries) == set(expected), f"branch {branch} key sets differ"
        # ...and every location resolves to the chain walk's record.
        for key, (segment_id, ordinal) in entries.items():
            record = engine.segments.get(segment_id).record_at(ordinal)
            assert record.values == expected[key], (
                f"branch {branch} key {key}: index location holds "
                f"{record.values}, chain walk found {expected[key]}"
            )
        # The index-driven batched scan reproduces the chain walk exactly.
        batched = [
            record
            for batch in engine.scan_branch_batched(branch)
            for record in batch
        ]
        assert batched == list(engine.scan_branch(branch))
        # And the count-only path agrees with both.
        assert engine.count_branch(branch) == len(expected)


class TestVersionFirstPkIndex:
    @given(steps=operation_steps)
    @settings(max_examples=25, deadline=None)
    def test_index_and_chain_walk_agree(self, steps, tmp_path_factory):
        schema = Schema.of_ints(4)
        directory = tmp_path_factory.mktemp("vf_pk_index")
        engine = VersionFirstEngine(
            str(directory / "engine"), schema, page_size=4096
        )
        engine.init([Record((100 + i, i, i, i)) for i in range(3)])
        branches = _replay(engine, steps)
        _assert_index_matches_chain(engine, branches)

    def test_index_survives_merge_of_divergent_branches(self, tmp_path):
        schema = Schema.of_ints(4)
        engine = VersionFirstEngine(str(tmp_path / "e"), schema, page_size=4096)
        engine.init([Record((k, k, k, k)) for k in range(10)])
        engine.commit("master", "base")
        engine.create_branch("dev", from_branch="master")
        engine.update("dev", Record((3, 30, 30, 30)))
        engine.delete("dev", 4)
        engine.insert("dev", Record((20, 1, 1, 1)))
        engine.update("master", Record((5, 50, 50, 50)))
        engine.commit("dev", "dev work")
        engine.commit("master", "master work")
        engine.merge("master", "dev")
        _assert_index_matches_chain(engine, ["master", "dev"])

    def test_branch_from_commit_rebuilds_index(self, tmp_path):
        schema = Schema.of_ints(4)
        engine = VersionFirstEngine(str(tmp_path / "e"), schema, page_size=4096)
        engine.init([Record((k, k, k, k)) for k in range(5)])
        frozen = engine.commit("master", "frozen")
        engine.delete("master", 2)
        engine.insert("master", Record((9, 9, 9, 9)))
        engine.commit("master", "moved on")
        engine.create_branch("old", from_commit=frozen)
        # The new branch sees the historical state, not master's head.
        assert set(engine.pk_index.entries("old")) == {0, 1, 2, 3, 4}
        _assert_index_matches_chain(engine, ["master", "old"])
