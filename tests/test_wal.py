"""Tests for the write-ahead log."""

from repro.core.wal import LogRecord, LogRecordType, WriteAheadLog


class TestLogRecord:
    def test_json_roundtrip(self):
        record = LogRecord(LogRecordType.WRITE, 7, branch="dev", payload="insert")
        assert LogRecord.from_json(record.to_json()) == record

    def test_json_roundtrip_minimal(self):
        record = LogRecord(LogRecordType.BEGIN, 1)
        restored = LogRecord.from_json(record.to_json())
        assert restored.branch is None and restored.payload is None


class TestWriteAheadLog:
    def test_in_memory_append(self):
        wal = WriteAheadLog.in_memory()
        wal.append(LogRecord(LogRecordType.BEGIN, 1))
        assert len(wal) == 1

    def test_file_backed_persistence(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(LogRecord(LogRecordType.BEGIN, 1))
        wal.append(LogRecord(LogRecordType.COMMIT, 1))
        reopened = WriteAheadLog(path)
        assert len(reopened) == 2
        assert reopened.records()[1].type is LogRecordType.COMMIT

    def test_replay_classifies_transactions(self):
        wal = WriteAheadLog.in_memory()
        wal.append(LogRecord(LogRecordType.BEGIN, 1))
        wal.append(LogRecord(LogRecordType.COMMIT, 1))
        wal.append(LogRecord(LogRecordType.BEGIN, 2))
        wal.append(LogRecord(LogRecordType.ABORT, 2))
        wal.append(LogRecord(LogRecordType.BEGIN, 3))  # crashed mid-flight
        report = wal.replay()
        assert report.committed == {1}
        assert report.aborted == {2}
        assert report.in_flight == {3}
        assert report.losers == {2, 3}

    def test_checkpoint_truncates(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        for i in range(5):
            wal.append(LogRecord(LogRecordType.BEGIN, i))
        wal.checkpoint()
        assert len(wal) == 1
        assert WriteAheadLog(path).records()[0].type is LogRecordType.CHECKPOINT

    def test_replay_empty_log(self):
        report = WriteAheadLog.in_memory().replay()
        assert not report.committed and not report.losers
