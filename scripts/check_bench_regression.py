#!/usr/bin/env python
"""Fail CI when measured speedup ratios regress against committed baselines.

Compares a freshly measured bench JSON (``BENCH_pr4.json`` from the
``operators`` experiment, ``BENCH_pr5.json`` from the ``sort-topn``
experiment or ``BENCH_pr7.json`` from the ``columnar`` experiment,
typically at CI smoke scale) against the committed acceptance artifact.  Absolute times are machine-dependent, so the check is on the
*ratio*: for every workload present in both files, the fresh "fast side"
median must not be more than ``--tolerance`` slower than what the fresh
"slow side" median and the committed speedup predict, i.e.::

    fresh_fast <= (1 + tolerance) * fresh_slow / committed_speedup

which is equivalent to ``fresh_speedup >= committed_speedup / (1 + tol)``.

The slow/fast sides are whichever ratio pair the entry records: row-batched
vs columnar execution (PR 7), streaming vs batched execution (PR 4), full
sort vs Top-N (PR 5), or -- from the ``index`` experiment's
``BENCH_pr10.json`` (PR 10) -- lazy-rebuild vs persisted-index cold opens
and full scans vs index scans.  Workloads whose
fresh slow-side median is below ``--min-seconds`` are skipped: at smoke
scales a sub-millisecond query is scheduler noise, not a signal.  Workloads
with committed speedup <= 1 (or no recorded speedup at all, such as the
informational spill-path entries) are not gated.

Entries recording a *cost* ratio rather than a speedup -- the
``recovery`` experiment's ``recovery_open_s / clean_open_s`` pair from
``BENCH_pr8.json`` and the ``concurrency`` experiment's ``p99_s / p50_s``
tail-amplification pair from ``BENCH_pr9.json`` -- are gated the other
way around: the fresh ratio must not *exceed* the committed ratio by more
than the tolerance, so crash recovery cannot silently become
disproportionately more expensive than a clean open and serving-layer
tail latency cannot silently blow up under concurrency.
"""

from __future__ import annotations

import argparse
import json
import sys

#: ``(slow_key, fast_key)`` pairs an entry may record its ratio under, in
#: lookup order: batched-vs-columnar (PR 7), streaming-vs-batched (PR 4),
#: full-sort-vs-Top-N (PR 5) and the PR 10 index pairs
#: (rebuild-vs-indexed cold opens, full-scan-vs-index-scan queries).
#: The columnar pair comes first so PR 7
#: entries -- which carry all of streaming_s/batched_s/columnar_s -- gate
#: the ratio their recorded ``speedup`` describes (batched / columnar);
#: PR 4/5 entries lack ``columnar_s`` and fall through.
RATIO_KEY_PAIRS = (
    ("batched_s", "columnar_s"),
    ("streaming_s", "batched_s"),
    ("full_sort_s", "topn_s"),
    ("rebuild_open_s", "indexed_open_s"),
    ("full_scan_s", "index_scan_s"),
)

#: ``(cost_key, base_key)`` pairs gated as a *ceiling*: the fresh
#: cost/base ratio must not exceed the committed ``ratio`` by more than
#: the tolerance.  Used by the ``recovery`` experiment (PR 8) and the
#: serving-layer ``concurrency`` experiment (PR 9), where a regression
#: makes the ratio rise -- the floor gate above cannot see it.
CEILING_KEY_PAIRS = (
    ("recovery_open_s", "clean_open_s"),
    ("p99_s", "p50_s"),
)


def ceiling_sides(entry: dict) -> tuple[float, float] | None:
    """The ``(cost, base)`` medians of a ceiling-gated entry, if any."""
    for cost_key, base_key in CEILING_KEY_PAIRS:
        if cost_key in entry and base_key in entry:
            return entry[cost_key], entry[base_key]
    return None


def iter_workloads(payload: dict):
    """Yield ``(name, entry)`` for every measured workload in a bench JSON."""
    for name, entry in payload.get("workloads", {}).items():
        yield name, entry
    for engine, queries in payload.get("queries", {}).items():
        for query, entry in queries.items():
            yield f"{engine}/{query}", entry


def ratio_sides(entry: dict) -> tuple[float, float] | None:
    """The ``(slow, fast)`` medians of an entry, whichever pair it records."""
    for slow_key, fast_key in RATIO_KEY_PAIRS:
        if slow_key in entry and fast_key in entry:
            return entry[slow_key], entry[fast_key]
    return None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fresh", required=True, help="freshly measured JSON")
    parser.add_argument("--baseline", required=True, help="committed baseline JSON")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional regression of the batched median (default 0.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=0.002,
        help="skip workloads whose streaming median is below this (noise floor)",
    )
    args = parser.parse_args(argv)
    with open(args.fresh, encoding="utf-8") as handle:
        fresh = json.load(handle)
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)
    committed = dict(iter_workloads(baseline))
    failures: list[str] = []
    checked = 0
    for name, entry in iter_workloads(fresh):
        base = committed.get(name)
        if base is None:
            continue
        cost_sides = ceiling_sides(entry)
        if cost_sides is not None:
            cost, base_side = cost_sides
            committed_ratio = base.get("ratio", 0.0)
            if base_side < args.min_seconds:
                print(f"skip  {name}: base side {base_side:.6f}s below noise floor")
                continue
            if committed_ratio <= 0 or base_side <= 0:
                print(f"info  {name}: committed ratio {committed_ratio} (not gated)")
                continue
            checked += 1
            fresh_ratio = cost / base_side
            # A committed cost ratio below 1 is timing noise (recovery does
            # strictly more work than a clean open), so the ceiling is
            # anchored at >= 1.0 to avoid gating against a fluke baseline.
            ceiling = max(committed_ratio, 1.0) * (1.0 + args.tolerance)
            status = "ok  " if fresh_ratio <= ceiling else "FAIL"
            print(
                f"{status}  {name}: fresh cost ratio {fresh_ratio:.2f} "
                f"(committed {committed_ratio:.2f}, ceiling {ceiling:.2f})"
            )
            if fresh_ratio > ceiling:
                failures.append(name)
            continue
        sides = ratio_sides(entry)
        if sides is None:
            print(f"info  {name}: no ratio pair recorded (not gated)")
            continue
        slow, fast = sides
        committed_speedup = base.get("speedup", 0.0)
        if slow < args.min_seconds:
            print(f"skip  {name}: slow side {slow:.6f}s below noise floor")
            continue
        if committed_speedup <= 1.0 or fast <= 0:
            print(f"info  {name}: committed speedup {committed_speedup} (not gated)")
            continue
        checked += 1
        fresh_speedup = slow / fast
        floor = committed_speedup / (1.0 + args.tolerance)
        status = "ok  " if fresh_speedup >= floor else "FAIL"
        print(
            f"{status}  {name}: fresh speedup {fresh_speedup:.2f} "
            f"(committed {committed_speedup:.2f}, floor {floor:.2f})"
        )
        if fresh_speedup < floor:
            failures.append(name)
    if failures:
        print(
            f"\n{len(failures)} workload(s) regressed >"
            f"{args.tolerance:.0%} against {args.baseline}: {', '.join(failures)}"
        )
        return 1
    print(f"\nchecked {checked} workload(s); no regression beyond "
          f"{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
