"""Tests specific to the hybrid engine."""

import pytest

from repro.core.record import Record
from repro.errors import CommitNotFoundError
from repro.storage.hybrid import HybridEngine

from tests.conftest import SMALL_PAGE_SIZE, make_records


@pytest.fixture
def hy_engine(schema, tmp_path):
    return HybridEngine(str(tmp_path / "hy"), schema, page_size=SMALL_PAGE_SIZE)


@pytest.fixture
def hy_loaded(hy_engine, records):
    hy_engine.init(records)
    return hy_engine


class TestHybridSegments:
    def test_branch_freezes_parent_head_and_creates_two_heads(self, hy_loaded):
        old_head = hy_loaded._head_segment["master"]
        before = hy_loaded.segment_count()
        hy_loaded.create_branch("dev", from_branch="master")
        assert hy_loaded.segments.get(old_head).frozen
        assert hy_loaded.segment_count() == before + 2
        assert hy_loaded._head_segment["master"] != old_head
        assert hy_loaded._head_segment["dev"] != old_head

    def test_branch_segment_index_tracks_membership(self, hy_loaded):
        old_head = hy_loaded._head_segment["master"]
        hy_loaded.create_branch("dev", from_branch="master")
        assert old_head in hy_loaded._branch_segments["master"]
        assert old_head in hy_loaded._branch_segments["dev"]
        hy_loaded.insert("dev", Record((100, 0, 0, 0)))
        dev_head = hy_loaded._head_segment["dev"]
        assert dev_head in hy_loaded._branch_segments["dev"]
        assert dev_head not in hy_loaded._branch_segments["master"]

    def test_local_bitmaps_fork_per_segment(self, hy_loaded):
        old_head = hy_loaded._head_segment["master"]
        hy_loaded.create_branch("dev", from_branch="master")
        local = hy_loaded._local_bitmaps[old_head]
        assert local.branch_bitmap("dev").count() == 20
        hy_loaded.delete("dev", 0)
        assert local.branch_bitmap("dev").count() == 19
        assert local.branch_bitmap("master").count() == 20

    def test_scan_skips_unrelated_segments(self, hy_loaded):
        hy_loaded.create_branch("dev", from_branch="master")
        hy_loaded.insert("dev", Record((200, 0, 0, 0)))
        hy_loaded.insert("master", Record((201, 0, 0, 0)))
        relevant = set(hy_loaded._branch_segment_bitmaps("dev"))
        assert hy_loaded._head_segment["master"] not in relevant

    def test_update_clears_bit_in_old_segment(self, hy_loaded):
        old_head = hy_loaded._head_segment["master"]
        hy_loaded.create_branch("dev", from_branch="master")
        hy_loaded.update("dev", Record((3, 9, 9, 9)))
        assert not hy_loaded._local_bitmaps[old_head].is_set(3, "dev")
        values = {r.values[0]: r.values for r in hy_loaded.scan_branch("dev")}
        assert values[3] == (3, 9, 9, 9)


class TestHybridCommits:
    def test_commit_histories_are_per_branch_segment(self, hy_loaded):
        hy_loaded.create_branch("dev", from_branch="master")
        hy_loaded.insert("dev", Record((300, 0, 0, 0)))
        hy_loaded.commit("dev")
        hy_loaded.insert("master", Record((301, 0, 0, 0)))
        hy_loaded.commit("master")
        # Hybrid splits commit metadata across many small per-(branch, segment)
        # files, unlike tuple-first's one file per branch (paper Section 5.3).
        assert hy_loaded.commit_history_count() >= 3

    def test_checkout_commit_bitmaps(self, hy_loaded, schema):
        hy_loaded.insert("master", Record((400, 0, 0, 0)))
        commit_id = hy_loaded.commit("master")
        hy_loaded.delete("master", 400)
        snapshots = hy_loaded.checkout_commit_bitmaps(commit_id)
        total = sum(bitmap.count() for bitmap in snapshots.values())
        assert total == 21
        keys = {r.key(schema) for r in hy_loaded.scan_commit(commit_id)}
        assert 400 in keys

    def test_unknown_commit_rejected(self, hy_loaded):
        with pytest.raises(CommitNotFoundError):
            list(hy_loaded.scan_commit("v054321"))
        with pytest.raises(CommitNotFoundError):
            hy_loaded.checkout_commit_bitmaps("v054321")

    def test_historical_branch_restores_bitmaps(self, hy_loaded, schema):
        commit_id = hy_loaded.commit("master", "snapshot")
        hy_loaded.insert("master", Record((500, 0, 0, 0)))
        hy_loaded.commit("master")
        hy_loaded.create_branch("past", from_commit=commit_id)
        keys = {r.key(schema) for r in hy_loaded.scan_branch("past")}
        assert keys == set(range(20))
        hy_loaded.insert("past", Record((501, 0, 0, 0)))
        assert hy_loaded.branch_contains_key("past", 501)


class TestHybridMergeSharing:
    def test_merge_shares_tuples_across_segments(self, hy_loaded):
        hy_loaded.create_branch("dev", from_branch="master")
        hy_loaded.insert("dev", Record((600, 1, 2, 3)))
        hy_loaded.commit("dev")
        hy_loaded.commit("master")
        data_before = sum(s.record_count for s in hy_loaded.segments.all())
        hy_loaded.merge("master", "dev")
        data_after = sum(s.record_count for s in hy_loaded.segments.all())
        assert data_after == data_before  # shared, not copied
        location = hy_loaded.pk_index.get("master", 600)
        assert location == hy_loaded.pk_index.get("dev", 600)

    def test_bitmap_index_bytes(self, hy_loaded):
        assert hy_loaded.bitmap_index_bytes() > 0
