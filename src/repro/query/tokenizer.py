"""Tokenizer for the versioned SQL dialect."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import QueryError

_KEYWORDS = {
    "select",
    "from",
    "where",
    "and",
    "or",
    "not",
    "in",
    "as",
    "true",
    "false",
    "head",
    "distinct",
    "group",
    "by",
    "order",
    "limit",
    "asc",
    "desc",
}

_SYMBOLS = ("<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", ".", "*")


class TokenType(enum.Enum):
    """Lexical categories of the dialect."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    STRING = "string"
    NUMBER = "number"
    SYMBOL = "symbol"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        """True if the token has the given type (and value, case-insensitive)."""
        if self.type is not token_type:
            return False
        return value is None or self.value.lower() == value.lower()


def _lex_error(message: str, position: int) -> QueryError:
    """A :class:`QueryError` with its ``position`` attribute populated."""
    error = QueryError(f"{message} at position {position}")
    error.position = position
    return error


def tokenize(sql: str) -> list[Token]:
    """Split ``sql`` into tokens, ending with a sentinel END token."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        char = sql[i]
        if char.isspace():
            i += 1
            continue
        if char == "'":
            end = sql.find("'", i + 1)
            if end < 0:
                raise _lex_error("unterminated string literal", i)
            tokens.append(Token(TokenType.STRING, sql[i + 1 : end], i))
            i = end + 1
            continue
        if char.isdigit() or (char == "-" and i + 1 < n and sql[i + 1].isdigit()):
            j = i + 1
            while j < n and (sql[j].isdigit()):
                j += 1
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if char.isalpha() or char == "_":
            j = i + 1
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            token_type = (
                TokenType.KEYWORD if word.lower() in _KEYWORDS else TokenType.IDENTIFIER
            )
            tokens.append(Token(token_type, word, i))
            i = j
            continue
        for symbol in _SYMBOLS:
            if sql.startswith(symbol, i):
                tokens.append(Token(TokenType.SYMBOL, symbol, i))
                i += len(symbol)
                break
        else:
            raise _lex_error(f"unexpected character {char!r}", i)
    tokens.append(Token(TokenType.END, "", n))
    return tokens
