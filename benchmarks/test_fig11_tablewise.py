"""Figure 11 and Table 4: table-wise updates.

Paper shape: rewriting every record of a branch grows the dataset by roughly
that branch's size (Table 4); afterwards version-first's scan degrades in
proportion to the new data while the bitmap-based engines do not, and
tuple-first actually *improves* because the rewrite clusters the branch's
records together (Figure 11).
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import ExperimentScale, figure11_tablewise_updates


def test_fig11_and_table4_tablewise_updates(benchmark, workdir, scale):
    # The paper runs this experiment at 10 branches instead of 50 so each
    # branch holds more data; keep the branch count modest here too.
    local_scale = ExperimentScale(
        total_operations=scale.total_operations,
        num_branches=min(scale.num_branches, 6),
        commit_interval=scale.commit_interval,
        num_columns=scale.num_columns,
    )
    fig11, table4 = run_once(
        benchmark, figure11_tablewise_updates, workdir, scale=local_scale
    )
    fig11.print()
    table4.print()
    assert len(fig11.rows) == 12  # 4 strategies x 3 engines
    assert len(table4.rows) == 12

    # Table 4 shape: the dataset grows for every strategy and engine.
    for strategy, engine, pre, post in table4.rows:
        assert post >= pre, f"{strategy}/{engine} did not grow after the update"

    # Figure 11 shape: every scan still completes, and for version-first the
    # post-update scan is never cheaper than before (it has strictly more data
    # to walk), while the bitmap engines stay within a modest factor.  Scans
    # at test scale finish in milliseconds, so the bound is loose enough to
    # ride out scheduler noise on a single outlier row.
    for strategy, engine, before, after in fig11.rows:
        assert before > 0 and after > 0
        if engine == "VF":
            assert after >= before * 0.5
