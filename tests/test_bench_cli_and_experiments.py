"""Smoke tests for the experiment runners and the benchmark CLI.

The full-size experiments run under ``benchmarks/``; here they are exercised
at a tiny scale to cover the plumbing (dataset construction, measurement,
table assembly) inside the regular test suite.
"""

import json

import pytest

from repro.bench.cli import EXPERIMENTS, build_parser, main
from repro.bench.experiments import (
    ExperimentScale,
    ablation_commit_layers,
    figure6_scaling,
    figure8_query2,
    git_comparison,
    sort_topn,
    table3_merge_throughput,
)
from repro.bench.report import ResultTable


@pytest.fixture
def tiny_scale():
    return ExperimentScale(
        total_operations=240, num_branches=4, commit_interval=60, num_columns=4
    )


class TestExperimentRunnersSmoke:
    def test_figure6_structure(self, tmp_path, tiny_scale):
        q1, q4 = figure6_scaling(
            str(tmp_path), branch_counts=(2, 4), scale=tiny_scale
        )
        assert [row[0] for row in q1.rows] == [2, 4]
        assert all(value > 0 for row in q1.rows for value in row[1:])
        assert all(value > 0 for row in q4.rows for value in row[1:])

    def test_figure8_structure(self, tmp_path, tiny_scale):
        table = figure8_query2(str(tmp_path), scale=tiny_scale)
        assert [row[0] for row in table.rows] == ["deep", "flat", "science", "curation"]
        assert all(value >= 0 for row in table.rows for value in row[1:])

    def test_table3_structure(self, tmp_path, tiny_scale):
        table = table3_merge_throughput(str(tmp_path), scale=tiny_scale)
        assert [row[0] for row in table.rows] == ["VF", "TF", "HY"]
        for _, two_way, three_way, merges in table.rows:
            assert merges >= 1
            assert two_way >= 0 and three_way >= 0

    def test_git_comparison_structure(self, tmp_path, tiny_scale):
        table = git_comparison(
            str(tmp_path), update_fraction=0.0, scale=tiny_scale, num_branches=3,
            commits=6, checkout_samples=3,
        )
        assert table.rows[-1][0] == "Decibel (hybrid)"
        assert len(table.rows) == 5
        for row in table.rows:
            assert row[1] > 0  # data size
            assert row[4] >= 0  # commit mean

    def test_ablation_layers_structure(self, tmp_path, tiny_scale):
        table = ablation_commit_layers(str(tmp_path), scale=tiny_scale)
        assert [row[0] for row in table.rows] == [0, 4, 8, 16]

    def test_sort_topn_structure(self, tmp_path, tiny_scale):
        tiny_scale.scan_rows = 2000
        json_path = str(tmp_path / "BENCH_pr5.json")
        table = sort_topn(str(tmp_path), scale=tiny_scale, json_path=json_path)
        assert len(table.rows) == 6  # three micro workloads + three engines
        with open(json_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        # The Limit-over-Sort rewrite must be recorded, never silent.
        assert "top-n k=10" in payload["explain"]
        workloads = payload["workloads"]
        assert workloads["top_n"]["rows"] == 10
        assert workloads["order_by_spill"]["identical_rows"] is True
        assert workloads["order_by_spill"]["spilled_runs"] > 0
        assert set(payload["queries"]) == {
            "version-first", "tuple-first", "hybrid"
        }


class TestBenchmarkCLI:
    def test_every_registered_experiment_has_a_runner(self):
        for name, (description, runner) in EXPERIMENTS.items():
            assert description
            assert callable(runner)

    def test_list_mode(self, capsys):
        assert main(["--list"]) == 0
        output = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in output

    def test_no_arguments_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["definitely-not-an-experiment"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig7", "--operations", "500"])
        assert args.experiments == ["fig7"]
        assert args.operations == 500
        assert args.branches == 8

    def test_runs_one_experiment_end_to_end(self, tmp_path, capsys):
        code = main(
            [
                "fig8",
                "--workdir",
                str(tmp_path),
                "--operations",
                "240",
                "--branches",
                "4",
                "--commit-interval",
                "60",
                "--columns",
                "4",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "Figure 8" in output
        assert "curation" in output

    def test_markdown_output(self, tmp_path, capsys):
        code = main(
            [
                "ablation-layers",
                "--markdown",
                "--workdir",
                str(tmp_path),
                "--operations",
                "240",
                "--branches",
                "4",
                "--commit-interval",
                "60",
                "--columns",
                "4",
            ]
        )
        assert code == 0
        assert "| layer interval |" in capsys.readouterr().out

    def test_result_table_type_used(self):
        # The CLI relies on runners returning ResultTable objects.
        assert isinstance(ResultTable("t", ["a"]), ResultTable)
