"""The tuple-first storage engine.

Tuples from every branch live together in a single shared heap file, and a
bitmap index records which branches each tuple is live in (paper Section 3.2).
Commits snapshot the committing branch's bitmap into a per-branch,
delta-and-RLE-compressed commit history file kept outside the live index.
Multi-branch operations (diff, Query 4) reduce to bitmap algebra; single-branch
scans must visit the shared heap file, where tuples of the scanned branch are
interleaved with everyone else's -- the weakness the evaluation highlights.

The bitmap index may be branch-oriented (the default, and what the paper's
evaluation uses) or tuple-oriented; see :mod:`repro.bitmap`.
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.bitmap import BitmapOrientation, CommitHistory, make_bitmap_index
from repro.bitmap.bitmap import Bitmap, union_member_pages
from repro.core.buffer_pool import BufferPool
from repro.core.columns import ColumnBatch
from repro.core.heapfile import HeapFile
from repro.core.page import DEFAULT_PAGE_SIZE
from repro.core.predicates import Predicate, compile_predicate
from repro.core.record import Record
from repro.core.schema import Schema
from repro.errors import CommitNotFoundError, StorageError
from repro.storage.base import (
    ChangeMap,
    DEFAULT_SCAN_BATCH_SIZE,
    StorageEngineKind,
    VersionedStorageEngine,
    fetch_bitmap_ordinals,
    regroup_chunks,
    scan_heap_bitmap_batched,
    scan_heap_bitmap_columns,
)
from repro.storage.pk_index import PrimaryKeyIndex
from repro.versioning.diff import DiffResult
from repro.versioning.version_graph import MASTER_BRANCH


class TupleFirstEngine(VersionedStorageEngine):
    """Single shared heap file plus a branch/tuple bitmap index."""

    kind = StorageEngineKind.TUPLE_FIRST

    def __init__(
        self,
        directory: str,
        schema: Schema,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pool: BufferPool | None = None,
        bitmap_orientation: BitmapOrientation | str = BitmapOrientation.BRANCH,
        commit_layer_interval: int = 8,
    ):
        super().__init__(
            directory, schema, page_size=page_size, buffer_pool=buffer_pool
        )
        self.heap = HeapFile(
            os.path.join(directory, "data.heap"),
            schema,
            self.buffer_pool,
            page_size=page_size,
        )
        self.bitmap_index = make_bitmap_index(bitmap_orientation)
        self.pk_index: PrimaryKeyIndex[int] = self.index_hook.pk
        self.index_hook.bind(
            self._pk_entries_for_branch,
            self.scan_branch,
            lambda branch: self.graph.head(branch),
        )
        self.commit_layer_interval = commit_layer_interval
        self._histories: dict[str, CommitHistory] = {}

    # -- engine hooks ---------------------------------------------------------

    def _prepare_master(self) -> None:
        self._add_branch_structures(MASTER_BRANCH, clone_from=None)

    def _add_branch_structures(self, branch: str, clone_from: str | None) -> None:
        self.bitmap_index.add_branch(branch, clone_from=clone_from)
        self.index_hook.branch_created(branch, clone_from=clone_from)
        self._histories[branch] = CommitHistory(
            path=os.path.join(self.directory, f"commits_{branch}.hist"),
            layer_interval=self.commit_layer_interval,
        )

    def _materialize_branch(
        self, name: str, parent_branch: str, from_commit: str, at_head: bool
    ) -> None:
        if at_head:
            # A branch is a straight clone of the parent's bitmap (and key map).
            self._add_branch_structures(name, clone_from=parent_branch)
            return
        # Branching from a historical commit: restore that commit's bitmap
        # from the parent's commit history, then rebuild the key map from it.
        snapshot = self._bitmap_at_commit(from_commit)
        self._add_branch_structures(name, clone_from=None)
        self.bitmap_index.restore_branch(name, snapshot)
        entries: dict[int, int] = {}
        pk_position = self.schema.primary_key_index
        for ordinal in snapshot.iter_set_bits():
            record = self.heap.record_by_ordinal(ordinal)
            entries[record.values[pk_position]] = ordinal
        self.index_hook.branch_rebuilt(name, entries)

    def _record_commit_state(self, branch: str, commit_id: str) -> None:
        snapshot = self.bitmap_index.branch_bitmap(branch)
        self._histories[branch].record_commit(commit_id, snapshot)

    def _flush_storage(self) -> None:
        self.heap.flush()

    def _load_storage(self) -> None:
        """Restore every branch to its head-commit bitmap snapshot.

        The shared heap was reloaded when the engine object was constructed;
        what recovery restores here is *visibility*: each branch's live
        bitmap is checked out from its head commit, so heap tuples appended
        by uncommitted (loser) transactions have no set bits anywhere and
        stay invisible.  Commit histories whose tail was never referenced by
        the persisted graph are truncated by ``rebind_commit_ids``.
        """
        for branch in self.graph.branch_names():
            self.bitmap_index.add_branch(branch)
            history = CommitHistory(
                path=os.path.join(self.directory, f"commits_{branch}.hist"),
                layer_interval=self.commit_layer_interval,
            )
            history.rebind_commit_ids(
                [c.commit_id for c in self.graph.commits_on_branch(branch)]
            )
            self._histories[branch] = history
        # Second pass: a branch with no commits of its own checks out through
        # an ancestor's history, so all histories must be loaded first.
        for branch in self.graph.branch_names():
            self.bitmap_index.restore_branch(
                branch, self._bitmap_at_commit(self.graph.head(branch))
            )
        # Primary-key maps hydrate lazily on first touch: from the persisted
        # per-branch index files when their epoch matches the recovered
        # head, otherwise by the bitmap walk below.
        self.index_hook.attach_lazy(self.graph.branch_names())

    def _pk_entries_for_branch(self, branch: str) -> dict[int, int]:
        """Derive a branch's full pk map from its live bitmap (index rebuild)."""
        pk_position = self.schema.primary_key_index
        entries: dict[int, int] = {}
        for ordinal in self.bitmap_index.branch_bitmap(branch).iter_set_bits():
            record = self.heap.record_by_ordinal(ordinal)
            entries[record.values[pk_position]] = ordinal
        return entries

    # -- data operations --------------------------------------------------------

    def insert(self, branch: str, record: Record) -> None:
        ordinal = self._append(record)
        self.bitmap_index.set(ordinal, branch)
        self.index_hook.applied(branch, record.key(self.schema), ordinal, record)
        self.stats.records_inserted += 1
        self._dirty_writes = True

    def update(self, branch: str, record: Record) -> None:
        key = record.key(self.schema)
        previous = self.pk_index.get(branch, key)
        if previous is not None:
            # The old copy stays in the heap (historical commits still see
            # it); only its live bit for this branch is cleared.
            self.bitmap_index.clear(previous, branch)
        ordinal = self._append(record)
        self.bitmap_index.set(ordinal, branch)
        self.index_hook.applied(branch, key, ordinal, record)
        self.stats.records_updated += 1
        self._dirty_writes = True

    def delete(self, branch: str, key: int) -> None:
        previous = self.pk_index.get(branch, key)
        if previous is None:
            raise StorageError(f"key {key} is not live in branch {branch!r}")
        self.bitmap_index.clear(previous, branch)
        self.index_hook.removed(branch, key)
        self.stats.records_deleted += 1
        self._dirty_writes = True

    def branch_contains_key(self, branch: str, key: int) -> bool:
        return self.pk_index.contains(branch, key)

    def record_for_key(self, branch: str, key: int) -> Record | None:
        ordinal = self.pk_index.get(branch, key)
        if ordinal is None:
            return None
        return self.heap.record_by_ordinal(ordinal)

    def records_for_keys(self, branch: str, keys) -> list[Record]:
        """Index-scan fetch: each touched page is fetched once, in key order."""
        out: list[Record] = []
        pages: dict[int, object] = {}
        heap = self.heap
        per_page = heap.records_per_page
        for key in keys:
            ordinal = self.pk_index.get(branch, key)
            if ordinal is None:
                continue
            page_number, slot = divmod(ordinal, per_page)
            page = pages.get(page_number)
            if page is None:
                if len(pages) > 64:
                    pages.clear()  # bound decoded-page references per fetch
                page = pages[page_number] = heap.page(page_number)
            out.append(page.record_at(slot))
        return out

    def _append(self, record: Record) -> int:
        record_id = self.heap.append(record)
        return record_id.ordinal(self.heap.records_per_page)

    # -- scans --------------------------------------------------------------------

    def scan_branch(
        self, branch: str, predicate: Predicate | None = None
    ) -> Iterator[Record]:
        bitmap = self.bitmap_index.branch_bitmap(branch)
        yield from self._scan_bitmap(bitmap, predicate)

    def scan_branch_batched(
        self,
        branch: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[Record]]:
        """Vectorized :meth:`scan_branch`: page-batch reads, word-level bitmap."""
        bitmap = self.bitmap_index.branch_bitmap(branch)
        yield from scan_heap_bitmap_batched(
            self.heap, bitmap, self.schema, predicate, batch_size, self.stats
        )

    def scan_branch_columns(
        self,
        branch: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
        columns: tuple[str, ...] | None = None,
    ) -> Iterator[ColumnBatch]:
        """Columnar :meth:`scan_branch`: pages decode straight into typed
        column arrays, never building record objects.  ``columns`` pushes
        projection into the page decode."""
        bitmap = self.bitmap_index.branch_bitmap(branch)
        yield from scan_heap_bitmap_columns(
            self.heap,
            bitmap,
            self.schema,
            predicate,
            batch_size,
            self.stats,
            columns=columns,
        )

    def count_branch(self, branch: str, predicate: Predicate | None = None) -> int:
        if predicate is None:
            # Cardinality is the branch bitmap's popcount; no heap I/O at all.
            return self.bitmap_index.branch_bitmap(branch).count()
        return super().count_branch(branch, predicate)

    def scan_commit(
        self, commit_id: str, predicate: Predicate | None = None
    ) -> Iterator[Record]:
        yield from self._scan_bitmap(self._bitmap_at_commit(commit_id), predicate)

    def scan_commit_batched(
        self,
        commit_id: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[Record]]:
        """Vectorized :meth:`scan_commit`: the branch-scan page-batch path
        applied to the commit's recorded bitmap."""
        bitmap = self._bitmap_at_commit(commit_id)
        yield from scan_heap_bitmap_batched(
            self.heap, bitmap, self.schema, predicate, batch_size, self.stats
        )

    def scan_commit_columns(
        self,
        commit_id: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[ColumnBatch]:
        """Columnar :meth:`scan_commit` over the commit's recorded bitmap."""
        bitmap = self._bitmap_at_commit(commit_id)
        yield from scan_heap_bitmap_columns(
            self.heap, bitmap, self.schema, predicate, batch_size, self.stats
        )

    def count_commit(self, commit_id: str, predicate: Predicate | None = None) -> int:
        if predicate is None:
            return self._bitmap_at_commit(commit_id).count()
        return super().count_commit(commit_id, predicate)

    def _bitmap_at_commit(self, commit_id: str) -> Bitmap:
        branch = self.graph.get_commit(commit_id).branch
        history = self._histories.get(branch)
        if history is None or commit_id not in history:
            raise CommitNotFoundError(
                f"commit {commit_id!r} has no recorded bitmap snapshot"
            )
        return history.checkout(commit_id)

    def _scan_bitmap(
        self, bitmap: Bitmap, predicate: Predicate | None
    ) -> Iterator[Record]:
        """Emit the records whose bits are set, reading page by page.

        Because tuples of a branch are interleaved with other branches', the
        scan walks every heap page that contains at least one live tuple --
        typically all of them -- which is the behaviour the paper's Query 1
        measurements expose.
        """
        per_page = self.heap.records_per_page
        schema = self.schema
        live_pages: dict[int, list[int]] = {}
        for ordinal in bitmap.iter_set_bits():
            live_pages.setdefault(ordinal // per_page, []).append(ordinal % per_page)
        for page_number in sorted(live_pages):
            page = self.heap.page(page_number)
            for slot in live_pages[page_number]:
                record = page.record_at(slot)
                self.stats.records_scanned += 1
                if predicate is None or predicate.evaluate(record, schema):
                    yield record

    def scan_branches(
        self, branches: list[str], predicate: Predicate | None = None
    ) -> Iterator[tuple[Record, frozenset[str]]]:
        """One pass over the shared heap, page at a time, consulting bitmaps.

        Branch membership is computed word-at-a-time from the already
        materialized branch bitmaps (one shared frozenset per membership
        pattern) instead of re-probing every branch bitmap per tuple.
        """
        bitmaps = {name: self.bitmap_index.branch_bitmap(name) for name in branches}
        matches = compile_predicate(predicate, self.schema)
        live_pages = union_member_pages(bitmaps, self.heap.records_per_page)
        for page_number in sorted(live_pages):
            records = self.heap.page(page_number).records_view()
            for slot, members in live_pages[page_number]:
                record = records[slot]
                self.stats.records_scanned += 1
                if matches is not None and not matches(record.values):
                    continue
                yield record, members

    def scan_branches_batched(
        self,
        branches: list[str],
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[tuple[Record, frozenset[str]]]]:
        """Batched :meth:`scan_branches`: page-at-a-time annotated reads."""

        def page_hits() -> Iterator[list[tuple[Record, frozenset[str]]]]:
            bitmaps = {
                name: self.bitmap_index.branch_bitmap(name) for name in branches
            }
            matches = compile_predicate(predicate, self.schema)
            live_pages = union_member_pages(bitmaps, self.heap.records_per_page)
            for page_number in sorted(live_pages):
                records = self.heap.page(page_number).records_view()
                slots = live_pages[page_number]
                self.stats.records_scanned += len(slots)
                if matches is None:
                    yield [(records[slot], members) for slot, members in slots]
                else:
                    yield [
                        (record, members)
                        for slot, members in slots
                        if matches((record := records[slot]).values)
                    ]

        yield from regroup_chunks(page_hits(), batch_size)

    # -- diff ------------------------------------------------------------------------

    def diff(self, branch_a: str, branch_b: str) -> DiffResult:
        """XOR the two branch bitmaps and route records to the two sides."""
        self.stats.diffs += 1
        bitmap_a = self.bitmap_index.branch_bitmap(branch_a)
        bitmap_b = self.bitmap_index.branch_bitmap(branch_b)
        result = DiffResult(version_a=branch_a, version_b=branch_b)
        scratch = Bitmap()  # one buffer reused for both one-sided differences
        fetch_bitmap_ordinals(
            self.heap, bitmap_a.and_not_into(bitmap_b, scratch),
            result.positive, self.stats,
        )
        fetch_bitmap_ordinals(
            self.heap, bitmap_b.and_not_into(bitmap_a, scratch),
            result.negative, self.stats,
        )
        return result

    # -- merge inputs -------------------------------------------------------------------

    def _collect_merge_inputs(
        self, target_branch: str, source_branch: str, lca_commit: str, three_way: bool
    ) -> tuple[ChangeMap, ChangeMap, dict[int, Record]]:
        """Use bitmap comparisons against the LCA snapshot (paper Section 3.2).

        Only tuples whose liveness differs from the LCA are fetched from the
        heap, which is what keeps tuple-first merges cheaper than
        version-first's full scans.
        """
        pk_position = self.schema.primary_key_index
        if not three_way:
            # Two-way precedence mode: no ancestor scan at all; each side's
            # contribution comes from comparing the two heads directly.
            changed_target, changed_source = self._two_way_changes(
                self.branch_record_map(target_branch),
                self.branch_record_map(source_branch),
            )
            return changed_target, changed_source, {}
        target_bitmap = self.bitmap_index.branch_bitmap(target_branch)
        source_bitmap = self.bitmap_index.branch_bitmap(source_branch)
        lca_bitmap = self._bitmap_at_commit(lca_commit)

        def changes_vs_lca(branch_bitmap: Bitmap, branch: str) -> ChangeMap:
            changes: ChangeMap = {}
            added = branch_bitmap.and_not(lca_bitmap)
            removed = lca_bitmap.and_not(branch_bitmap)
            for ordinal in added.iter_set_bits():
                record = self.heap.record_by_ordinal(ordinal)
                changes[record.values[pk_position]] = record
            for ordinal in removed.iter_set_bits():
                record = self.heap.record_by_ordinal(ordinal)
                key = record.values[pk_position]
                if key not in changes:
                    # Live at the LCA but no longer live here and not
                    # re-inserted: the branch deleted it.
                    if not self.pk_index.contains(branch, key):
                        changes[key] = None
            return changes

        changed_target = changes_vs_lca(target_bitmap, target_branch)
        changed_source = changes_vs_lca(source_bitmap, source_branch)
        ancestors: dict[int, Record] = {}
        wanted = set(changed_target) | set(changed_source)
        # The LCA records that can possibly matter are those no longer live in
        # one of the branches (an updated or deleted tuple clears its LCA
        # bit), so only that bitmap difference is scanned -- "using the bitmap
        # this way reduces the amount of data that needs to be scanned from
        # the lca" (paper Section 3.2).
        touched = lca_bitmap.and_not(target_bitmap) | lca_bitmap.and_not(source_bitmap)
        for ordinal in touched.iter_set_bits():
            record = self.heap.record_by_ordinal(ordinal)
            key = record.values[pk_position]
            if key in wanted:
                ancestors[key] = record
        return changed_target, changed_source, ancestors

    # -- merge application ---------------------------------------------------------------

    def _apply_merge_change(
        self, target_branch: str, source_branch: str, key: int, record: Record | None
    ) -> None:
        """Prefer sharing the source branch's tuple over copying it.

        When the resolved record is exactly the source branch's current copy,
        the merge only flips bits: the target's old copy (if any) is cleared
        and the source's tuple becomes live in the target too.  Only records
        whose resolved values match neither branch (field-level merges) are
        physically appended.
        """
        if record is None:
            if self.branch_contains_key(target_branch, key):
                self.delete(target_branch, key)
            return
        target_ordinal = self.pk_index.get(target_branch, key)
        if target_ordinal is not None:
            current = self.heap.record_by_ordinal(target_ordinal)
            if current.values == record.values:
                return  # the target already holds the resolved record
        source_ordinal = self.pk_index.get(source_branch, key)
        if source_ordinal is not None:
            source_record = self.heap.record_by_ordinal(source_ordinal)
            if source_record.values == record.values:
                if target_ordinal is not None:
                    self.bitmap_index.clear(target_ordinal, target_branch)
                self.bitmap_index.set(source_ordinal, target_branch)
                self.index_hook.applied(target_branch, key, source_ordinal, record)
                return
        super()._apply_merge_change(target_branch, source_branch, key, record)

    # -- sizes ------------------------------------------------------------------------------

    def data_size_bytes(self) -> int:
        return self.heap.size_bytes()

    def commit_metadata_bytes(self) -> int:
        return sum(history.size_bytes() for history in self._histories.values())

    def bitmap_index_bytes(self) -> int:
        """Memory footprint of the live bitmap index."""
        return self.bitmap_index.size_bytes()

    def commit_history(self, branch: str) -> CommitHistory:
        """The commit history file of ``branch`` (exposed for benchmarks)."""
        return self._histories[branch]

    def checkout_commit_bitmap(self, commit_id: str) -> Bitmap:
        """Reconstruct only the bitmap snapshot of a commit (no data scan).

        This is the operation the paper's Table 2 times as "checkout": the
        delta chain of the owning branch's commit history is replayed up to
        the commit, without touching the heap file.
        """
        return self._bitmap_at_commit(commit_id)
