"""Cross-engine equivalence: all three layouts must agree on query results.

The three storage engines are different physical representations of the same
logical versioned dataset, so after replaying an identical operation sequence
they must return identical answers to every benchmark query.  These tests
replay deterministic pseudo-random workloads (including branching and merging)
against all three engines side by side and compare the logical contents.
"""

import random

import pytest

from repro.core.record import Record
from repro.core.schema import Schema
from repro.db.database import Decibel
from tests.conftest import ENGINE_CLASSES, SMALL_PAGE_SIZE


def build_engines(tmp_path, schema):
    return {
        kind: cls(str(tmp_path / kind), schema, page_size=SMALL_PAGE_SIZE)
        for kind, cls in ENGINE_CLASSES.items()
    }


def branch_contents(engine, branch):
    return {r.values[0]: r.values for r in engine.scan_branch(branch)}


def replay_workload(engines, schema, seed, operations=300, with_merges=True):
    """Apply the same random workload to every engine."""
    rng = random.Random(seed)
    branches = ["master"]
    live: dict[str, set[int]] = {"master": set()}
    next_key = 0
    next_branch = 0
    for kind, engine in engines.items():
        engine.init([])
    for step in range(operations):
        action = rng.random()
        branch = rng.choice(branches)
        if action < 0.05 and len(branches) < 6:
            parent = branch
            name = f"b{next_branch}"
            next_branch += 1
            for engine in engines.values():
                engine.create_branch(name, from_branch=parent)
            branches.append(name)
            live[name] = set(live[parent])
        elif action < 0.10 and with_merges and len(branches) > 1:
            target, source = rng.sample(branches, 2)
            for engine in engines.values():
                engine.commit(target)
                engine.commit(source)
                engine.merge(target, source)
            # Three-way merges propagate source-side deletions too, so refresh
            # the model's view of the target from an engine rather than
            # approximating it.
            live[target] = set(
                branch_contents(engines["version-first"], target)
            )
        elif action < 0.2 and live[branch]:
            key = rng.choice(sorted(live[branch]))
            for engine in engines.values():
                engine.delete(branch, key)
            live[branch].discard(key)
        elif action < 0.5 and live[branch]:
            key = rng.choice(sorted(live[branch]))
            payload = (rng.randrange(1000), rng.randrange(1000), rng.randrange(1000))
            for engine in engines.values():
                engine.update(branch, Record((key,) + payload))
        else:
            key = next_key
            next_key += 1
            payload = (rng.randrange(1000), rng.randrange(1000), rng.randrange(1000))
            for engine in engines.values():
                engine.insert(branch, Record((key,) + payload))
            live[branch].add(key)
        if step % 50 == 49:
            for engine in engines.values():
                engine.commit(branch)
    return branches


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_branch_contents_agree(tmp_path, schema, seed):
    engines = build_engines(tmp_path, schema)
    branches = replay_workload(engines, schema, seed)
    reference_kind = "version-first"
    for branch in branches:
        reference = branch_contents(engines[reference_kind], branch)
        for kind, engine in engines.items():
            assert branch_contents(engine, branch) == reference, (
                f"{kind} disagrees with {reference_kind} on branch {branch}"
            )


@pytest.mark.parametrize("seed", [7, 19])
def test_diffs_agree(tmp_path, schema, seed):
    engines = build_engines(tmp_path, schema)
    branches = replay_workload(engines, schema, seed)
    if len(branches) < 2:
        pytest.skip("workload created no extra branches")
    pairs = [(branches[0], branches[-1]), (branches[-1], branches[0])]
    for branch_a, branch_b in pairs:
        summaries = {}
        for kind, engine in engines.items():
            diff = engine.diff(branch_a, branch_b)
            summaries[kind] = (
                {r.values for r in diff.positive},
                {r.values for r in diff.negative},
            )
        reference = summaries["version-first"]
        for kind, summary in summaries.items():
            assert summary == reference, f"{kind} diff disagrees"


@pytest.mark.parametrize("seed", [5])
def test_head_scans_agree(tmp_path, schema, seed):
    engines = build_engines(tmp_path, schema)
    replay_workload(engines, schema, seed, operations=200)
    summaries = {}
    for kind, engine in engines.items():
        rows = {}
        for record, members in engine.scan_heads():
            rows.setdefault(record.values, set()).update(members)
        summaries[kind] = rows
    reference = summaries["version-first"]
    for kind, summary in summaries.items():
        assert summary == reference, f"{kind} head scan disagrees"


#: Query shapes exercising the planner end to end: aggregates, grouping,
#: ordering/limits, distinct, multi-predicate joins, diffs and head scans.
PLANNER_QUERIES = [
    "SELECT count(id), sum(c1), min(c2), max(c2) FROM R WHERE R.Version = 'master'",
    "SELECT c1, count(id) FROM R WHERE R.Version = 'dev' GROUP BY c1 ORDER BY c1",
    "SELECT c1, avg(c2) FROM R WHERE R.Version = 'master' AND c2 > 100 "
    "GROUP BY c1 ORDER BY avg(c2) DESC, c1",
    "SELECT id, c1 FROM R WHERE R.Version = 'master' ORDER BY c1 DESC, id ASC LIMIT 7",
    # ORDER BY on a non-projected column (sort threads through the projection).
    "SELECT id FROM R WHERE R.Version = 'dev' ORDER BY c1 DESC, id ASC",
    # Limit-over-sort runs through the Top-N rewrite.
    "SELECT id FROM R WHERE R.Version = 'dev' ORDER BY c2 DESC, id ASC LIMIT 9",
    # Empty input: count is 0, the rest are SQL NULL.
    "SELECT min(c1), max(c2), sum(c1), avg(c2), count(id) FROM R "
    "WHERE R.Version = 'master' AND id > 100000",
    "SELECT DISTINCT c1 FROM R WHERE R.Version = 'dev' ORDER BY c1",
    "SELECT * FROM R as R1, R as R2 WHERE R1.Version = 'dev' AND R1.id = R2.id "
    "AND R1.c1 = R2.c1 AND R1.c2 > 50 AND R2.Version = 'master'",
    "SELECT * FROM R WHERE R.Version = 'dev' AND R.id NOT IN "
    "(SELECT id FROM R WHERE R.Version = 'master')",
    "SELECT id FROM R WHERE HEAD(R.Version) = true AND c1 >= 200 ORDER BY id",
]


def build_databases(tmp_path):
    """One Decibel per engine kind, loaded with an identical branched workload."""
    rng = random.Random(42)
    payloads = [
        (key, rng.randrange(5) * 100, rng.randrange(400), rng.randrange(50))
        for key in range(40)
    ]
    dev_inserts = [
        (key, rng.randrange(5) * 100, rng.randrange(400), rng.randrange(50))
        for key in range(100, 110)
    ]
    updates = [
        (key, rng.randrange(5) * 100, rng.randrange(400), rng.randrange(50))
        for key in rng.sample(range(40), 8)
    ]
    deletes = rng.sample(range(40), 4)
    databases = {}
    for kind in ENGINE_CLASSES:
        db = Decibel(str(tmp_path / kind), engine=kind, page_size=SMALL_PAGE_SIZE)
        relation = db.create_relation("R", Schema.of_ints(4))
        relation.init(Record(values) for values in payloads)
        relation.branch("dev", from_branch="master")
        for values in dev_inserts:
            relation.insert("dev", Record(values))
        for values in updates:
            relation.update("dev", Record(values))
        for key in deletes:
            relation.delete("dev", key)
        relation.commit("dev", "dev work")
        databases[kind] = db
    return databases


def test_planner_results_agree(tmp_path):
    """All engines must agree on every planner query shape."""
    databases = build_databases(tmp_path)
    for sql in PLANNER_QUERIES:
        summaries = {}
        for kind, db in databases.items():
            result = db.query(sql)
            summaries[kind] = (tuple(result.columns), sorted(result.rows))
        reference = summaries["version-first"]
        for kind, summary in summaries.items():
            assert summary == reference, (
                f"{kind} disagrees with version-first on {sql!r}"
            )


def test_planner_head_annotations_agree(tmp_path):
    """Branch annotations of HEAD() queries must agree across engines."""
    databases = build_databases(tmp_path)
    sql = "SELECT id FROM R WHERE HEAD(R.Version) = true"
    summaries = {}
    for kind, db in databases.items():
        result = db.query(sql)
        rows = {}
        for row, branches in zip(result.rows, result.branch_annotations):
            rows.setdefault(row, set()).update(branches)
        summaries[kind] = rows
    reference = summaries["version-first"]
    for kind, summary in summaries.items():
        assert summary == reference, f"{kind} head annotations disagree"


def test_commit_checkouts_agree(tmp_path, schema):
    engines = build_engines(tmp_path, schema)
    for engine in engines.values():
        engine.init([Record((i, i, i, i)) for i in range(10)])
    checkpoints = {}
    for step in range(5):
        for kind, engine in engines.items():
            engine.insert("master", Record((100 + step, step, 0, 0)))
            engine.update("master", Record((step, 99, 99, 99)))
            commit_id = engine.commit("master")
            checkpoints.setdefault(step, {})[kind] = commit_id
    for step, per_engine in checkpoints.items():
        contents = {
            kind: {r.values for r in engines[kind].checkout(commit_id)}
            for kind, commit_id in per_engine.items()
        }
        reference = contents["version-first"]
        for kind, values in contents.items():
            assert values == reference, f"{kind} checkout at step {step} disagrees"
