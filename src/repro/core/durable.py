"""Crash-safe file primitives: atomic replace and CRC-stamped payloads.

Every durable metadata file in the system (version graph, segment metadata,
commit locations, catalog, persisted pk indexes) is written through
:func:`atomic_write`, which follows the classic safe-replace protocol:

1. write the full payload to a temporary sibling file,
2. ``fsync`` the temporary file so its bytes are on the platter,
3. ``os.replace`` it over the target (atomic on POSIX),
4. ``fsync`` the containing directory so the rename itself is durable.

A crash at any step leaves either the old complete file or the new complete
file -- never a torn mixture.  Named crashpoints (``{label}-mid-write``,
``{label}-pre-rename``) are registered at the two interesting interruption
windows so the fault-injection harness can prove that property.

JSON metadata is additionally wrapped in a CRC envelope
(``{"crc32": ..., "data": ...}``) by :func:`dump_checked_json`;
:func:`load_checked_json` verifies the checksum and raises a structured
:class:`~repro.errors.CorruptionError` on mismatch instead of silently
misreading bit-flipped state.  Envelopes are versionless and backwards
compatible: a legacy unstamped file loads as-is.

``REPRO_STRICT_RECOVERY=0`` switches recovery from strict (raise on any
corruption) to degraded mode (quarantine the corrupt piece, note it in
:func:`drain_recovery_notes`, and keep going with what is readable).
"""

from __future__ import annotations

import json
import os
import struct
import zlib

from repro.errors import CorruptionError
from repro.testing.faults import check_crashed, crashpoint

#: Framing header for append-only record logs: CRC32 of the payload, then the
#: payload length, little-endian (the same framing the WAL uses).
_FRAME = struct.Struct("<II")


def fsync_dir(directory: str) -> None:
    """Flush a directory's entry table so renames/creates in it are durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open support
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def atomic_write(path: str, data: bytes, label: str | None = None) -> None:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + rename).

    ``label`` names the crashpoints guarding this write: ``{label}-mid-write``
    fires with only half the payload in the temporary file (proving the
    target is untouched by a torn write) and ``{label}-pre-rename`` fires
    with the payload fully synced but not yet visible under ``path``.
    """
    check_crashed()
    name = label if label is not None else "atomic-write"
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        half = len(data) // 2
        handle.write(data[:half])
        handle.flush()
        crashpoint(f"{name}-mid-write", path=tmp)
        handle.write(data[half:])
        handle.flush()
        os.fsync(handle.fileno())
    crashpoint(f"{name}-pre-rename", path=tmp)
    os.replace(tmp, path)
    fsync_dir(os.path.dirname(os.path.abspath(path)))


def append_framed(path: str, payload: bytes, label: str | None = None) -> None:
    """Durably append one checksummed, length-prefixed record to a log file.

    O(1) per append (write + fsync) where :func:`atomic_write` would rewrite
    the whole file.  ``{label}-pre-fsync`` fires after the bytes are written
    but before they are forced to disk, so the harness can tear the append.
    """
    check_crashed()
    name = label if label is not None else "framed-append"
    created = not os.path.exists(path)
    with open(path, "ab") as handle:
        handle.write(_FRAME.pack(zlib.crc32(payload), len(payload)) + payload)
        handle.flush()
        crashpoint(f"{name}-pre-fsync", path=path)
        os.fsync(handle.fileno())
    if created:
        fsync_dir(os.path.dirname(os.path.abspath(path)))


def read_framed(path: str, description: str = "record log") -> list[bytes]:
    """Read every complete record of an :func:`append_framed` log.

    A torn or corrupt tail is truncated away (with a recovery note); in
    strict mode a corrupt record *followed by* bytes that still parse as a
    valid record raises, since truncating would discard readable data.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    records: list[bytes] = []
    offset = 0
    error: CorruptionError | None = None
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            error = CorruptionError(
                path,
                f"torn {description} record header",
                offset=offset,
                expected=_FRAME.size,
                actual=len(data) - offset,
            )
            break
        crc, length = _FRAME.unpack_from(data, offset)
        body_start = offset + _FRAME.size
        if body_start + length > len(data):
            error = CorruptionError(
                path,
                f"torn {description} record payload",
                offset=offset,
                expected=length,
                actual=len(data) - body_start,
            )
            break
        payload = data[body_start : body_start + length]
        actual_crc = zlib.crc32(payload)
        if actual_crc != crc:
            error = CorruptionError(
                path,
                f"{description} record CRC32 mismatch",
                offset=offset,
                expected=crc,
                actual=actual_crc,
            )
            break
        records.append(payload)
        offset = body_start + length
    if error is not None:
        if strict_recovery() and _frame_parses_beyond(data, offset):
            raise error
        os.truncate(path, offset)
        with open(path, "rb") as handle:
            os.fsync(handle.fileno())
        add_recovery_note(f"truncated torn {description} tail: {error}")
    return records


def _frame_parses_beyond(data: bytes, offset: int) -> bool:
    """True if a complete checksummed frame exists at any later alignment."""
    tail = data[offset:]
    for start in range(max(0, len(tail) - _FRAME.size)):
        crc, length = _FRAME.unpack_from(tail, start)
        if length == 0 or start + _FRAME.size + length > len(tail):
            continue
        if zlib.crc32(tail[start + _FRAME.size : start + _FRAME.size + length]) == crc:
            return True
    return False


def _canonical_json(obj: object) -> bytes:
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def dump_checked_json(obj: object) -> bytes:
    """Serialize ``obj`` inside a CRC32 envelope for :func:`atomic_write`."""
    payload = _canonical_json(obj)
    envelope = {"crc32": zlib.crc32(payload), "data": obj}
    return json.dumps(envelope, separators=(",", ":"), sort_keys=True).encode("utf-8")


def load_checked_json(path: str) -> object:
    """Read a file written by :func:`dump_checked_json`, verifying its CRC.

    Raises :class:`CorruptionError` when the file is not valid JSON or the
    envelope checksum disagrees with its contents.  A legacy file that never
    carried an envelope is returned as-is (no checksum to verify).
    """
    with open(path, "rb") as handle:
        raw = handle.read()
    try:
        obj = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise CorruptionError(
            path, f"not valid JSON: {exc.msg}", offset=exc.pos
        ) from exc
    if isinstance(obj, dict) and set(obj) == {"crc32", "data"}:
        payload = _canonical_json(obj["data"])
        actual = zlib.crc32(payload)
        if actual != obj["crc32"]:
            raise CorruptionError(
                path,
                "CRC32 mismatch on stamped payload",
                expected=obj["crc32"],
                actual=actual,
            )
        return obj["data"]
    return obj


def dump_json_atomic(path: str, obj: object, label: str | None = None) -> None:
    """CRC-stamp ``obj`` and atomically write it to ``path``."""
    atomic_write(path, dump_checked_json(obj), label=label)


def strict_recovery() -> bool:
    """True (the default) when corruption must raise; False to degrade.

    Controlled by ``REPRO_STRICT_RECOVERY``: any value other than ``0``,
    ``false`` or ``no`` keeps recovery strict.
    """
    value = os.environ.get("REPRO_STRICT_RECOVERY", "1").strip().lower()
    return value not in ("0", "false", "no")


#: Quarantine log for degraded-mode recovery.  Loaders that skip a corrupt
#: piece (a torn WAL tail, a bad segment page) append a human-readable note
#: here; :meth:`repro.db.database.Decibel.open` drains it into the recovery
#: report so degradation is visible, never silent.
_recovery_notes: list[str] = []


def add_recovery_note(note: str) -> None:
    """Record that recovery skipped or repaired something."""
    _recovery_notes.append(note)


def drain_recovery_notes() -> list[str]:
    """Return and clear all accumulated recovery notes."""
    notes = list(_recovery_notes)
    _recovery_notes.clear()
    return notes
