"""Per-branch primary-key indexes.

To support efficient updates and deletes, the tuple-first layout keeps "a
primary-key index indicating the most recent version of each primary key in
each branch" (paper Section 3.2); the hybrid layout needs the same thing with
a (segment, position) location instead of a global tuple index.  The index is
a mapping from branch name to ``{primary key -> location}``, where the
location type is whatever the owning engine uses.
"""

from __future__ import annotations

from typing import Callable, Generic, Iterable, Iterator, TypeVar

from repro.errors import BranchNotFoundError

LocationT = TypeVar("LocationT")


class PrimaryKeyIndex(Generic[LocationT]):
    """Maps (branch, primary key) to the latest physical location of the key.

    Branches registered through :meth:`register_lazy` hold no entries until
    first touched: the first key operation against such a branch invokes the
    registered hydrator (which loads a persisted snapshot or rebuilds from
    storage) and caches the result.  This keeps cold opens O(branches
    touched), not O(total data).
    """

    def __init__(self):
        self._branches: dict[str, dict[int, LocationT]] = {}
        self._lazy: set[str] = set()
        self._hydrator: Callable[[str], dict[int, LocationT]] | None = None

    # -- branch management ----------------------------------------------------

    def add_branch(self, branch: str, clone_from: str | None = None) -> None:
        """Register ``branch``, optionally cloning another branch's entries."""
        self._lazy.discard(branch)
        if clone_from is None:
            self._branches.setdefault(branch, {})
        else:
            self._branches[branch] = dict(self._branch(clone_from))

    def register_lazy(
        self,
        branches: Iterable[str],
        hydrator: Callable[[str], dict[int, LocationT]],
    ) -> None:
        """Register ``branches`` whose entries materialize on first touch.

        ``hydrator(branch)`` must produce the full key map without going
        back through this index (no reentrancy).
        """
        self._hydrator = hydrator
        for branch in branches:
            if branch not in self._branches:
                self._lazy.add(branch)

    def has_branch(self, branch: str) -> bool:
        """True if ``branch`` is registered (loaded or pending lazy load)."""
        return branch in self._branches or branch in self._lazy

    def branch_loaded(self, branch: str) -> bool:
        """True if ``branch``'s entries are materialized in memory."""
        return branch in self._branches

    def loaded_branches(self) -> list[str]:
        """Names of the branches whose entries are materialized."""
        return list(self._branches)

    def drop_branch(self, branch: str) -> None:
        """Forget all entries of ``branch``."""
        if branch in self._lazy:
            self._lazy.discard(branch)
            return
        self._branch(branch)
        del self._branches[branch]

    def replace_branch(self, branch: str, entries: dict[int, LocationT]) -> None:
        """Overwrite the whole key map of ``branch`` (used by checkouts)."""
        self._lazy.discard(branch)
        self._branches[branch] = dict(entries)

    # -- key operations ---------------------------------------------------------

    def put(self, branch: str, key: int, location: LocationT) -> None:
        """Record that ``key``'s latest version in ``branch`` lives at ``location``."""
        self._branch(branch)[key] = location

    def get(self, branch: str, key: int) -> LocationT | None:
        """The latest location of ``key`` in ``branch``, or None if absent."""
        return self._branch(branch).get(key)

    def remove(self, branch: str, key: int) -> None:
        """Forget ``key`` in ``branch`` (after a delete)."""
        self._branch(branch).pop(key, None)

    def contains(self, branch: str, key: int) -> bool:
        """True if ``key`` currently exists in ``branch``."""
        return key in self._branch(branch)

    def keys(self, branch: str) -> Iterator[int]:
        """All live primary keys of ``branch``."""
        return iter(self._branch(branch))

    def entries(self, branch: str) -> dict[int, LocationT]:
        """A copy of the full key map of ``branch``."""
        return dict(self._branch(branch))

    def items(self, branch: str) -> Iterator[tuple[int, LocationT]]:
        """Live ``(key, location)`` pairs of ``branch`` without copying.

        Callers must not mutate the index while iterating.
        """
        return iter(self._branch(branch).items())

    def locations(self, branch: str) -> Iterator[LocationT]:
        """Live locations of ``branch`` without copying the key map.

        Callers must not mutate the index while iterating.
        """
        return iter(self._branch(branch).values())

    def live_count(self, branch: str) -> int:
        """Number of live keys in ``branch``."""
        return len(self._branch(branch))

    # -- internals --------------------------------------------------------------

    def _branch(self, branch: str) -> dict[int, LocationT]:
        try:
            return self._branches[branch]
        except KeyError:
            if branch in self._lazy and self._hydrator is not None:
                self._lazy.discard(branch)
                entries = dict(self._hydrator(branch))
                self._branches[branch] = entries
                return entries
            raise BranchNotFoundError(
                f"branch {branch!r} is not present in the primary-key index"
            ) from None
