"""Property tests for the word-level bitmap primitives, the batch record
codec and the compiled-predicate path, each checked against its naive
tuple-at-a-time counterpart."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bitmap.bitmap import Bitmap, iter_union_members
from repro.core.predicates import (
    And,
    ColumnPredicate,
    ModuloPredicate,
    Not,
    Or,
    TruePredicate,
    compile_batch_filter,
    compile_predicate,
)
from repro.core.record import Record, RecordCodec
from repro.core.schema import Column, ColumnType, Schema

index_sets = st.sets(st.integers(min_value=0, max_value=2000), max_size=200)


def naive_bits(bitmap: Bitmap) -> set[int]:
    """Per-bit probing reference for the word-level iterators."""
    return {i for i in range(len(bitmap)) if bitmap.get(i)}


class TestWordPrimitives:
    @given(index_sets)
    def test_iter_words_reconstructs_bits(self, indices):
        bitmap = Bitmap.from_indices(indices)
        rebuilt = set()
        for word_index, word in bitmap.iter_words():
            assert word != 0
            base = word_index * 64
            for bit in range(64):
                if word >> bit & 1:
                    rebuilt.add(base + bit)
        assert rebuilt == indices == naive_bits(bitmap)

    @given(index_sets)
    def test_set_many_matches_repeated_set(self, indices):
        bulk = Bitmap()
        bulk.set_many(indices)
        naive = Bitmap()
        for index in indices:
            naive.set(index)
        assert set(bulk.iter_set_bits()) == set(naive.iter_set_bits()) == indices

    @given(index_sets, index_sets)
    def test_inplace_ops_match_operators(self, left, right):
        a, b = Bitmap.from_indices(left), Bitmap.from_indices(right)
        assert set(a.copy().union_update(b).iter_set_bits()) == left | right
        assert set(a.copy().intersection_update(b).iter_set_bits()) == left & right
        assert set(a.copy().difference_update(b).iter_set_bits()) == left - right

    @given(index_sets, index_sets)
    def test_and_not_into_reuses_out_buffer(self, left, right):
        a, b = Bitmap.from_indices(left), Bitmap.from_indices(right)
        out = Bitmap.from_indices({5000})  # stale contents must be overwritten
        returned = a.and_not_into(b, out)
        assert returned is out
        assert set(out.iter_set_bits()) == left - right
        assert out == a.and_not(b)

    @given(index_sets, st.sets(st.integers(min_value=0, max_value=2000), max_size=30))
    def test_count_cache_survives_mutation(self, initial, flips):
        bitmap = Bitmap.from_indices(initial)
        assert bitmap.count() == len(initial)
        state = set(initial)
        for index in flips:
            if index in state:
                bitmap.clear(index)
                state.discard(index)
            else:
                bitmap.set(index)
                state.add(index)
            assert bitmap.count() == len(state)

    @given(st.dictionaries(st.sampled_from("abcd"), index_sets, max_size=4))
    def test_iter_union_members_matches_naive(self, named_sets):
        bitmaps = {
            name: Bitmap.from_indices(indices)
            for name, indices in named_sets.items()
        }
        got = list(iter_union_members(bitmaps))
        union = sorted(set().union(*named_sets.values())) if named_sets else []
        assert [ordinal for ordinal, _ in got] == union
        for ordinal, members in got:
            assert members == {
                name for name, bitmap in bitmaps.items() if bitmap.get(ordinal)
            }

    def test_from_bytes_rejects_oversized_num_bits(self):
        bitmap = Bitmap.from_indices([0, 9])
        data = bitmap.to_bytes()
        with pytest.raises(ValueError):
            Bitmap.from_bytes(data, num_bits=8 * len(data) + 1)

    def test_from_bytes_roundtrip_still_works(self):
        bitmap = Bitmap.from_indices([1, 8, 63, 64, 200])
        restored = Bitmap.from_bytes(bitmap.to_bytes(), len(bitmap))
        assert restored == bitmap


int_schema = Schema.of_ints(4)
mixed_schema = Schema(
    (
        Column("id", ColumnType.INT),
        Column("count", ColumnType.INT32),
        Column("name", ColumnType.STRING, width=12),
    ),
    primary_key="id",
)


class TestDecodeBatch:
    def test_empty(self):
        codec = RecordCodec(int_schema)
        assert codec.decode_batch(b"", 0, 0) == []
        assert codec.decode_batch(b"") == []

    @given(
        st.lists(
            st.tuples(
                st.integers(-(2**40), 2**40),
                st.integers(-(2**40), 2**40),
                st.integers(-(2**40), 2**40),
                st.integers(-(2**40), 2**40),
            ),
            min_size=1,
            max_size=40,
        )
    )
    def test_int_schema_matches_per_record_decode(self, rows):
        codec = RecordCodec(int_schema)
        records = [Record(values) for values in rows]
        buffer = b"".join(codec.encode(record) for record in records)
        batch = codec.decode_batch(buffer, 0, len(records))
        singles = [
            codec.decode(buffer, offset)
            for offset in range(0, len(buffer), codec.record_size)
        ]
        assert batch == singles == records

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 2**30),
                st.integers(-(2**20), 2**20),
                st.text(
                    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
                    max_size=12,
                ),
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_mixed_schema_matches_per_record_decode(self, rows):
        codec = RecordCodec(mixed_schema)
        records = [Record(values) for values in rows]
        buffer = b"".join(codec.encode(record) for record in records)
        batch = codec.decode_batch(buffer, 0, len(records))
        singles = [
            codec.decode(buffer, offset)
            for offset in range(0, len(buffer), codec.record_size)
        ]
        assert batch == singles

    def test_tombstones_and_offset(self):
        codec = RecordCodec(int_schema)
        live = Record((1, 2, 3, 4))
        dead = Record.deleted(int_schema, 9)
        buffer = b"\xff" * 3 + codec.encode(live) + codec.encode(dead)
        batch = codec.decode_batch(buffer, 3, 2)
        assert batch[0] == live
        assert batch[1].tombstone and batch[1].values[0] == 9


payload_predicates = st.recursive(
    st.one_of(
        st.just(TruePredicate()),
        st.builds(
            ColumnPredicate,
            st.sampled_from(["id", "c1", "c2", "c3"]),
            st.sampled_from(["=", "!=", "<", "<=", ">", ">="]),
            st.integers(-50, 50),
        ),
        st.builds(
            ModuloPredicate,
            st.sampled_from(["id", "c1", "c2", "c3"]),
            st.integers(2, 9),
        ),
    ),
    lambda inner: st.one_of(
        st.builds(And, inner, inner),
        st.builds(Or, inner, inner),
        st.builds(Not, inner),
    ),
    max_leaves=6,
)


class TestCompiledPredicates:
    @given(
        payload_predicates,
        st.lists(
            st.tuples(
                st.integers(-60, 60),
                st.integers(-60, 60),
                st.integers(-60, 60),
                st.integers(-60, 60),
            ),
            max_size=30,
        ),
    )
    def test_compiled_matches_evaluate(self, predicate, rows):
        compiled = compile_predicate(predicate, int_schema)
        for values in rows:
            record = Record(values)
            assert compiled(record.values) == predicate.evaluate(record, int_schema)

    @given(
        payload_predicates,
        st.lists(
            st.tuples(
                st.integers(-60, 60),
                st.integers(-60, 60),
                st.integers(-60, 60),
                st.integers(-60, 60),
            ),
            max_size=30,
        ),
    )
    def test_batch_filter_matches_evaluate(self, predicate, rows):
        page_filter = compile_batch_filter(predicate, int_schema)
        assert page_filter is not None
        records = [Record(values) for values in rows]
        expected = [
            record
            for record in records
            if predicate.evaluate(record, int_schema)
        ]
        assert page_filter(records) == expected

    def test_batch_filter_unknown_predicate_falls_back(self):
        from repro.core.predicates import Predicate

        class Odd(Predicate):
            def evaluate(self, record, schema):
                return record.values[0] % 2 == 1

            def __hash__(self):
                return 1

            def __eq__(self, other):
                return isinstance(other, Odd)

        assert compile_batch_filter(Odd(), int_schema) is None
        assert compile_batch_filter(None, int_schema) is None

    def test_compile_is_memoized(self):
        predicate = ColumnPredicate("c1", ">", 3)
        assert compile_predicate(predicate, int_schema) is compile_predicate(
            ColumnPredicate("c1", ">", 3), int_schema
        )

    def test_none_compiles_to_none(self):
        assert compile_predicate(None, int_schema) is None
