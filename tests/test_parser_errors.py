"""Parser/tokenizer error paths: malformed SQL must fail *well*.

Every lexical or syntactic failure must surface as :class:`QueryError`
carrying a character ``position`` -- never an ``IndexError``/``KeyError``
escaping from the internals.  The property test throws garbled inputs
(random strings, truncations and mutations of valid queries) at the parser
to enforce the "never an internal error" half mechanically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DecibelError, QueryError
from repro.query.parser import parse_query
from repro.query.tokenizer import tokenize

VALID_QUERIES = [
    "SELECT id, c1 FROM R WHERE R.Version = 'master'",
    "SELECT count(*), c1 FROM R WHERE R.Version = 'x' GROUP BY c1",
    "SELECT id FROM R WHERE HEAD(R.Version) = TRUE ORDER BY id DESC LIMIT 3",
    "SELECT id FROM R WHERE R.Version = 'a' AND id NOT IN "
    "(SELECT id FROM R WHERE R.Version = 'b')",
]


class TestTokenizerErrors:
    def test_unterminated_string(self):
        with pytest.raises(QueryError) as exc:
            tokenize("SELECT id FROM R WHERE R.Version = 'master")
        assert exc.value.position == 35
        assert "position 35" in str(exc.value)

    def test_unexpected_character(self):
        with pytest.raises(QueryError) as exc:
            tokenize("SELECT id; DROP TABLE R")
        assert exc.value.position == 9
        assert "';'" in str(exc.value)


class TestParserErrors:
    @pytest.mark.parametrize(
        "sql, fragment",
        [
            ("SELECT", "expected"),
            ("SELECT FROM R", "expected"),
            ("SELECT id R", "'from'"),
            ("SELECT id FROM", "expected"),
            ("SELECT id, * FROM R", "'*' cannot be mixed"),
            ("SELECT id FROM R WHERE", "expected"),
            ("SELECT id FROM R WHERE id = ", "literal"),
            ("SELECT id FROM R WHERE id = 1 OR c1 = 2", "OR is not supported"),
            ("SELECT id FROM R WHERE HEAD(id) = TRUE", "Version column"),
            (
                "SELECT id FROM R WHERE HEAD(R.Version) = 1",
                "TRUE or FALSE",
            ),
            ("SELECT id FROM R LIMIT -1", "non-negative"),
            ("SELECT id FROM R WHERE id = 1 trailing", "expected"),
        ],
    )
    def test_malformed_sql_raises_query_error_with_position(
        self, sql, fragment
    ):
        with pytest.raises(QueryError) as exc:
            parse_query(sql)
        assert fragment in str(exc.value)
        assert exc.value.position is not None
        assert 0 <= exc.value.position <= len(sql) + 1
        assert "position" in str(exc.value)

    def test_position_points_at_offending_token(self):
        sql = "SELECT id FROM R WHERE id = 1 OR c1 = 2"
        with pytest.raises(QueryError) as exc:
            parse_query(sql)
        assert sql[exc.value.position : exc.value.position + 2] == "OR"

    def test_valid_queries_still_parse(self):
        for sql in VALID_QUERIES:
            parse_query(sql)


class TestGarbledInputProperty:
    """No input, however garbled, may escape the QueryError contract."""

    @given(st.text(max_size=80))
    @settings(max_examples=300, deadline=None)
    def test_arbitrary_text_never_raises_internal_errors(self, sql):
        try:
            parse_query(sql)
        except QueryError:
            pass  # the contract: structured failure only

    @given(
        st.sampled_from(VALID_QUERIES),
        st.integers(min_value=0, max_value=80),
    )
    @settings(max_examples=200, deadline=None)
    def test_truncations_of_valid_queries(self, sql, cut):
        try:
            parse_query(sql[: min(cut, len(sql))])
        except QueryError:
            pass

    @given(
        st.sampled_from(VALID_QUERIES),
        st.integers(min_value=0, max_value=200),
        st.characters(codec="ascii"),
    )
    @settings(max_examples=300, deadline=None)
    def test_single_character_mutations(self, sql, index, char):
        index = index % len(sql)
        mutated = sql[:index] + char + sql[index + 1 :]
        try:
            parse_query(mutated)
        except QueryError:
            pass

    @given(st.text(max_size=80))
    @settings(max_examples=200, deadline=None)
    def test_failures_carry_position_info(self, sql):
        try:
            parse_query(sql)
        except QueryError as exc:
            # Tokenizer and parser errors both thread the offset through.
            assert exc.position is None or isinstance(exc.position, int)
        except DecibelError:
            pytest.fail("non-query DecibelError escaped the parser")
