"""The versioned index subsystem, end to end.

Four layers under test:

* **Equivalence** -- a hypothesis-driven workload model checks that
  index-backed queries and full scans agree after arbitrary
  insert / update / delete / branch / merge interleavings, on all three
  engines (the index is an access path, never a second source of truth).
* **Persistence** -- clean closes snapshot the pk index; cold opens load
  the persisted chain instead of rebuilding, stale chains (head moved
  while the files sat still) rebuild, and lazy registration means an
  untouched branch costs nothing at open.
* **Planning** -- the optimizer rewrites selective scans to
  :class:`IndexScan` (visible as ``[index]`` in EXPLAIN) only when the
  index covers the driving term, and the rewrite is toggleable.
* **Verification** -- seeded violations of the index coverage rules are
  caught by the plan verifier with actionable messages.
"""

from __future__ import annotations

import shutil

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import PlanInvariantError, verify_plan
from repro.core.record import Record
from repro.core.schema import Schema
from repro.db.database import Decibel
from repro.errors import SchemaError
from repro.query.executor import explain_query, plan_query
from repro.query.logical import IndexScan
from repro.query.optimizer import (
    INDEX_SELECTIVITY_THRESHOLD,
    index_selection_enabled,
    select_execution_mode,
    set_index_selection,
)

SCHEMA = Schema.of_ints(3)  # id, c1, c2


def record(key, c1=0, c2=0):
    return Record((key, c1, c2))


@pytest.fixture
def no_index_selection():
    """Disable the optimizer's index-scan rewrite for one test."""
    set_index_selection(False)
    try:
        yield
    finally:
        set_index_selection(True)


def rows_for(db, sql):
    return sorted(tuple(row) for row in db.query(sql).rows)


def both_arms(db, sql):
    """(full-scan rows, index-enabled rows) for the same SQL."""
    set_index_selection(False)
    try:
        full = rows_for(db, sql)
    finally:
        set_index_selection(True)
    return full, rows_for(db, sql)


def make_db(directory, engine, *, rows=50, distinct=10, indexes=("c1",)):
    db = Decibel(str(directory), engine=engine)
    relation = db.create_relation("R", SCHEMA, indexes=indexes)
    relation.init(
        [record(i, i % distinct, i * 10) for i in range(rows)]
    )
    return db


ENGINES = ["tuple-first", "version-first", "hybrid"]


# -- equivalence: index-backed answers == full scans --------------------------

workload_steps = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "branch", "merge"]),
        st.integers(min_value=0, max_value=24),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=8,
)


@settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(steps=workload_steps)
@pytest.mark.parametrize("engine", ENGINES)
def test_index_equals_scan_under_workloads(tmp_path_factory, engine, steps):
    """Indexed queries agree with full scans and the engine's own scan API.

    Ground truth comes from :meth:`VersionedRelation.scan` (the raw engine
    scan, no query pipeline), so a bug shared by both query arms cannot
    hide: merge semantics themselves are covered by the engine-equivalence
    and diff/conflict suites.
    """
    directory = tmp_path_factory.mktemp("db")
    db = Decibel(str(directory), engine=engine)
    rel = db.create_relation("R", SCHEMA, indexes=("c1",))
    rel.init([record(i, i % 4, i * 10) for i in range(10)])
    branches = ["master"]
    manager = db.transactions("R")

    def present(branch, key):
        return any(r.values[0] == key for r in rel.scan(branch))

    for action, key, payload in steps:
        branch = branches[key % len(branches)]
        if action == "branch":
            name = f"b{len(branches)}"
            rel.branch(name, from_branch=branch)
            branches.append(name)
            continue
        if action == "merge":
            source = branches[payload % len(branches)]
            if source != branch:
                rel.merge(branch, source)
            continue
        txn = manager.begin()
        if action == "insert" and not present(branch, key):
            txn.insert(branch, record(key, payload % 4, payload))
        elif action == "update" and present(branch, key):
            txn.update(branch, record(key, payload % 4, payload))
        elif action == "delete" and present(branch, key):
            txn.delete(branch, key)
        txn.commit()

    for name in branches:
        truth = {r.values[0]: tuple(r.values) for r in rel.scan(name)}
        # Primary-key point lookups: every live key answers exactly its
        # row; misses (997 never inserted) answer nothing.
        for key in sorted(set(truth) | {997}):
            sql = (
                f"SELECT * FROM R WHERE R.Version = '{name}' AND R.id = {key}"
            )
            full, indexed = both_arms(db, sql)
            expected = [truth[key]] if key in truth else []
            assert indexed == full == expected
        # Secondary equality and range: arms agree with each other and
        # with the raw scan.
        for op, match in (
            ("=", lambda c1: c1 == 2),
            ("<", lambda c1: c1 < 2),
        ):
            sql = (
                f"SELECT * FROM R WHERE R.Version = '{name}' "
                f"AND R.c1 {op} 2"
            )
            full, indexed = both_arms(db, sql)
            expected = sorted(
                row for row in truth.values() if match(row[1])
            )
            assert indexed == full == expected


# -- persistence: snapshots, staleness, laziness ------------------------------

class TestPersistence:
    def _count_rebuilds(self, db):
        """Wrap the hook's rebuild callback with a counter."""
        hook = db.relation("R").engine.index_hook
        counter = {"rebuilds": 0}
        original = hook._rebuild_branch

        def counting(branch):
            counter["rebuilds"] += 1
            return original(branch)

        hook._rebuild_branch = counting
        return counter

    @pytest.mark.parametrize("engine", ENGINES)
    def test_cold_open_loads_persisted_chain(self, tmp_path, engine):
        db = make_db(tmp_path, engine)
        db.close()
        reopened = Decibel.open(str(tmp_path), engine=engine)
        counter = self._count_rebuilds(reopened)
        rows = reopened.query(
            "SELECT * FROM R WHERE R.Version = 'master' AND R.id = 7"
        ).rows
        assert [tuple(r) for r in rows] == [(7, 7, 70)]
        assert counter["rebuilds"] == 0, (
            "cold open fell back to a full-scan rebuild despite a valid "
            "persisted snapshot"
        )

    @pytest.mark.parametrize("engine", ENGINES)
    def test_missing_files_trigger_rebuild(self, tmp_path, engine):
        db = make_db(tmp_path, engine)
        db.close()
        shutil.rmtree(tmp_path / "R" / "index")
        reopened = Decibel.open(str(tmp_path), engine=engine)
        counter = self._count_rebuilds(reopened)
        rows = reopened.query(
            "SELECT * FROM R WHERE R.Version = 'master' AND R.id = 7"
        ).rows
        assert [tuple(r) for r in rows] == [(7, 7, 70)]
        assert counter["rebuilds"] == 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_stale_epoch_triggers_rebuild(self, tmp_path, engine):
        """Index files from a superseded head are rejected, then rebuilt."""
        db = make_db(tmp_path, engine)
        db.close()
        index_dir = tmp_path / "R" / "index"
        stale = tmp_path / "stale-index"
        shutil.copytree(index_dir, stale)
        # Move the branch head past the copied files' epoch...
        db = Decibel.open(str(tmp_path), engine=engine)
        txn = db.transactions("R").begin()
        txn.insert("master", record(500, 1, 1))
        txn.commit("moves the head")
        db.close()
        # ...then put the stale files back: their chain ends at the old head.
        shutil.rmtree(index_dir)
        shutil.copytree(stale, index_dir)
        reopened = Decibel.open(str(tmp_path), engine=engine)
        counter = self._count_rebuilds(reopened)
        rows = reopened.query(
            "SELECT * FROM R WHERE R.Version = 'master' AND R.id = 500"
        ).rows
        assert [tuple(r) for r in rows] == [(500, 1, 1)], (
            "a stale persisted index hid a committed row"
        )
        assert counter["rebuilds"] == 1

    @pytest.mark.parametrize("engine", ENGINES)
    def test_open_does_not_hydrate_untouched_branches(self, tmp_path, engine):
        db = make_db(tmp_path, engine)
        db.relation("R").branch("dev", from_branch="master")
        db.close()
        reopened = Decibel.open(str(tmp_path), engine=engine)
        hook = reopened.relation("R").engine.index_hook
        assert not hook.pk.branch_loaded("master")
        assert not hook.pk.branch_loaded("dev")
        # Touching master hydrates master only.
        reopened.query("SELECT * FROM R WHERE R.Version = 'master' AND R.id = 1")
        assert hook.pk.branch_loaded("master")
        assert not hook.pk.branch_loaded("dev")


# -- planning: the [index] rewrite and its gating -----------------------------

class TestPlanning:
    @pytest.fixture
    def db(self, tmp_path):
        # c1 cycles 0..9 over 200 rows: 5% per value, under the threshold;
        # c2 is not indexed.
        database = Decibel(str(tmp_path / "db"), engine="hybrid")
        relation = database.create_relation("R", SCHEMA, indexes=("c1",))
        relation.init([record(i, i % 10, i % 2) for i in range(200)])
        return database

    def test_pk_point_query_uses_index(self, db):
        plan = explain_query(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND R.id = 7"
        )
        assert "[index]" in plan
        assert "IndexScan" in plan

    def test_secondary_equality_and_range_use_index(self, db):
        for op in ("=", "<"):
            plan = explain_query(
                db,
                f"SELECT * FROM R WHERE R.Version = 'master' AND R.c1 {op} 1",
            )
            assert "[index]" in plan, f"c1 {op} 1 lost its index scan"

    def test_non_indexed_column_scans(self, db):
        plan = explain_query(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND R.c2 = 1"
        )
        assert "[index]" not in plan

    def test_unselective_predicate_scans(self, db):
        # Every second row matches c2 = 1; even if c2 were indexed the
        # fraction (0.5) exceeds the threshold.  Index c2 and check the
        # optimizer still declines.
        db.create_index("R", "c2")
        plan = explain_query(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND R.c2 = 1"
        )
        assert "[index]" not in plan
        assert INDEX_SELECTIVITY_THRESHOLD < 0.5

    def test_toggle_disables_rewrite(self, db, no_index_selection):
        assert not index_selection_enabled()
        plan = explain_query(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND R.id = 7"
        )
        assert "[index]" not in plan

    def test_index_scan_results_match_full_scan(self, db):
        for sql in (
            "SELECT * FROM R WHERE R.Version = 'master' AND R.id = 7",
            "SELECT * FROM R WHERE R.Version = 'master' AND R.c1 = 3",
            "SELECT id, c2 FROM R WHERE R.Version = 'master' AND R.c1 < 2",
            "SELECT * FROM R WHERE R.Version = 'master' AND R.c1 = 3 "
            "AND R.c2 = 1",
        ):
            full, indexed = both_arms(db, sql)
            assert indexed == full

    def test_create_index_is_idempotent_and_durable(self, tmp_path):
        db = make_db(tmp_path, "hybrid", indexes=())
        plan = explain_query(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND R.c1 = 3"
        )
        assert "[index]" not in plan
        db.create_index("R", "c1")
        db.create_index("R", "c1")  # second declaration is a no-op
        plan = explain_query(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND R.c1 = 3"
        )
        assert "[index]" in plan
        db.close()
        # The declaration rides in the catalog: a cold open still plans
        # index scans without re-declaring.
        reopened = Decibel.open(str(tmp_path), engine="hybrid")
        plan = explain_query(
            reopened,
            "SELECT * FROM R WHERE R.Version = 'master' AND R.c1 = 3",
        )
        assert "[index]" in plan

    def test_unknown_column_is_rejected(self, tmp_path):
        db = make_db(tmp_path, "hybrid", indexes=())
        with pytest.raises(SchemaError):
            db.create_index("R", "nope")

    def test_unindexable_column_type_is_rejected(self, tmp_path):
        from repro.core.schema import Column, ColumnType
        from repro.index.maintenance import IndexMaintenance

        schema = Schema(
            (Column("id", ColumnType.INT), Column("score", ColumnType.FLOAT))
        )
        hook = IndexMaintenance(str(tmp_path), schema)
        with pytest.raises(SchemaError):
            hook.declare("score")


# -- verification: seeded violations of the coverage rules --------------------

class TestVerifierCoverage:
    @pytest.fixture
    def db(self, tmp_path):
        database = Decibel(str(tmp_path / "db"), engine="hybrid")
        relation = database.create_relation("R", SCHEMA, indexes=("c1",))
        relation.init([record(i, i % 10, i % 2) for i in range(200)])
        return database

    def _index_plan(self, db, sql):
        plan = plan_query(db, sql)
        node = self._find(plan, IndexScan)
        return plan, node

    @staticmethod
    def _find(plan, node_type):
        if isinstance(plan, node_type):
            return plan
        for child in plan.children:
            try:
                return TestVerifierCoverage._find(child, node_type)
            except LookupError:
                continue
        raise LookupError(f"no {node_type.__name__} in plan")

    def test_clean_index_plans_verify(self, db):
        for sql in (
            "SELECT * FROM R WHERE R.Version = 'master' AND R.id = 7",
            "SELECT * FROM R WHERE R.Version = 'master' AND R.c1 < 2",
        ):
            plan, _ = self._index_plan(db, sql)
            verify_plan(plan, mode=select_execution_mode(plan))

    def test_scan_on_non_indexed_column_rejected(self, db):
        plan, node = self._index_plan(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND R.c1 = 3"
        )
        node.index_column = "c2"
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(plan)
        assert exc.value.rule == "rewrite-legality"
        assert "no index exists" in exc.value.detail

    def test_unsupported_operator_rejected(self, db):
        plan, node = self._index_plan(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND R.id = 7"
        )
        node.op = "<"  # the pk hash index answers equality only
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(plan)
        assert exc.value.rule == "rewrite-legality"
        assert "cannot answer operator" in exc.value.detail

    def test_unknown_branch_rejected(self, db):
        plan, node = self._index_plan(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND R.id = 7"
        )
        node.version = "no-such-branch"
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(plan)
        assert exc.value.rule == "rewrite-legality"
        assert "not a branch" in exc.value.detail

    def test_driving_term_must_be_a_conjunct(self, db):
        plan, node = self._index_plan(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND R.c1 = 3"
        )
        node.value = 999  # no longer matches any predicate conjunct
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(plan)
        assert exc.value.rule == "rewrite-legality"
        assert "driving term" in exc.value.detail


# -- projection pushdown ------------------------------------------------------

class TestProjectionPushdown:
    @pytest.fixture
    def db(self, tmp_path):
        database = Decibel(str(tmp_path / "db"), engine="hybrid")
        relation = database.create_relation("R", Schema.of_ints(5))
        relation.init(
            [Record((i, i % 3, i * 2, i * 3, i * 4)) for i in range(40)]
        )
        return database

    def test_narrow_select_prunes_scan_columns(self, db):
        plan = explain_query(
            db, "SELECT id, c1 FROM R WHERE R.Version = 'master'"
        )
        assert "[project]" in plan

    def test_pruned_results_match_wide_results(self, db):
        narrow = rows_for(
            db,
            "SELECT id, c1 FROM R WHERE R.Version = 'master' AND c2 > 10",
        )
        wide = rows_for(
            db, "SELECT * FROM R WHERE R.Version = 'master' AND c2 > 10"
        )
        assert narrow == sorted((row[0], row[1]) for row in wide)
