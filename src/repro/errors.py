"""Exception hierarchy for the Decibel reproduction.

All errors raised by the library derive from :class:`DecibelError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the individual failure modes.
"""

from __future__ import annotations


class DecibelError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(DecibelError):
    """A schema definition or a record/schema mismatch is invalid."""


class RecordError(DecibelError):
    """A record could not be encoded, decoded or validated."""


class PageError(DecibelError):
    """A page is full, corrupt, or addressed out of bounds."""


class StorageError(DecibelError):
    """A heap file, segment file or buffer pool operation failed."""


class TransactionError(DecibelError):
    """A transaction violated the locking protocol or was aborted."""


class VersionError(DecibelError):
    """A version-graph operation referenced an unknown or invalid version."""


class BranchNotFoundError(VersionError):
    """The named branch does not exist in the version graph."""


class CommitNotFoundError(VersionError):
    """The referenced commit does not exist in the version graph."""


class BranchExistsError(VersionError):
    """An attempt was made to create a branch whose name is already taken."""


class MergeConflictError(VersionError):
    """A merge produced conflicts and no resolution policy was supplied."""


class QueryError(DecibelError):
    """A versioned query could not be parsed, planned or executed."""


class BenchmarkError(DecibelError):
    """The benchmark driver was configured inconsistently."""
