"""Tests for the growable bitmap."""

import pytest

from repro.bitmap.bitmap import Bitmap


class TestBitmapBasics:
    def test_new_bitmap_is_empty(self):
        bitmap = Bitmap(10)
        assert len(bitmap) == 10
        assert bitmap.count() == 0
        assert not bitmap.any()

    def test_set_and_get(self):
        bitmap = Bitmap()
        bitmap.set(3)
        assert bitmap.get(3)
        assert bitmap[3]
        assert not bitmap.get(2)

    def test_set_grows_bitmap(self):
        bitmap = Bitmap()
        bitmap.set(1000)
        assert len(bitmap) == 1001
        assert bitmap.get(1000)

    def test_clear(self):
        bitmap = Bitmap()
        bitmap.set(5)
        bitmap.clear(5)
        assert not bitmap.get(5)

    def test_clear_can_grow(self):
        bitmap = Bitmap()
        bitmap.clear(50)
        assert len(bitmap) == 51
        assert bitmap.count() == 0

    def test_out_of_range_reads_as_zero(self):
        bitmap = Bitmap(4)
        assert not bitmap.get(100)

    def test_negative_index_rejected(self):
        bitmap = Bitmap()
        with pytest.raises(IndexError):
            bitmap.set(-1)
        with pytest.raises(IndexError):
            bitmap.get(-1)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Bitmap(-1)

    def test_from_indices(self):
        bitmap = Bitmap.from_indices([1, 3, 5])
        assert bitmap.to_indices() == [1, 3, 5]
        assert bitmap.count() == 3

    def test_copy_is_independent(self):
        original = Bitmap.from_indices([1, 2])
        clone = original.copy()
        clone.set(9)
        assert not original.get(9)
        assert clone.get(9)


class TestBitmapBulkOps:
    def test_and(self):
        a = Bitmap.from_indices([1, 2, 3])
        b = Bitmap.from_indices([2, 3, 4])
        assert (a & b).to_indices() == [2, 3]

    def test_or(self):
        a = Bitmap.from_indices([1, 2])
        b = Bitmap.from_indices([2, 8])
        assert (a | b).to_indices() == [1, 2, 8]

    def test_xor(self):
        a = Bitmap.from_indices([1, 2, 3])
        b = Bitmap.from_indices([3, 4])
        assert (a ^ b).to_indices() == [1, 2, 4]

    def test_and_not(self):
        a = Bitmap.from_indices([1, 2, 3])
        b = Bitmap.from_indices([2])
        assert a.and_not(b).to_indices() == [1, 3]

    def test_ops_with_different_lengths(self):
        a = Bitmap.from_indices([1])
        b = Bitmap.from_indices([100])
        assert (a | b).to_indices() == [1, 100]
        assert (a & b).count() == 0

    def test_equality_ignores_trailing_zeros(self):
        a = Bitmap.from_indices([1], num_bits=8)
        b = Bitmap.from_indices([1], num_bits=64)
        assert a == b

    def test_equality_with_other_types(self):
        assert Bitmap() != object()

    def test_xor_is_its_own_inverse(self):
        a = Bitmap.from_indices([1, 5, 9])
        b = Bitmap.from_indices([5, 12])
        assert (a ^ b) ^ b == a


class TestBitmapSerialization:
    def test_roundtrip(self):
        bitmap = Bitmap.from_indices([0, 7, 8, 63, 64])
        restored = Bitmap.from_bytes(bitmap.to_bytes(), len(bitmap))
        assert restored == bitmap
        assert restored.to_indices() == [0, 7, 8, 63, 64]

    def test_empty_roundtrip(self):
        bitmap = Bitmap(0)
        assert Bitmap.from_bytes(bitmap.to_bytes(), 0).count() == 0

    def test_iter_set_bits_order(self):
        indices = [512, 3, 77, 4]
        assert Bitmap.from_indices(indices).to_indices() == sorted(indices)

    def test_size_bytes_growth_is_amortized(self):
        bitmap = Bitmap()
        for i in range(1000):
            bitmap.set(i)
        # Doubling growth keeps the backing store within 2x of what's needed.
        assert bitmap.size_bytes <= 2 * ((1000 + 7) // 8) + 8
