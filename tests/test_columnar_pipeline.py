"""End-to-end columnar execution: equivalence across modes and engines.

The columnar path is only correct if it is invisible: every query must
return bit-identical results whether it runs streaming (tuple iterators),
row-batched or columnar, on every storage engine.  These tests drive the
full planner query suite through all nine (engine x mode) combinations,
check the engine-level columnar scans against the row scans directly, and
pin the mode-selection / verifier / EXPLAIN wiring.
"""

from __future__ import annotations

import pytest

from repro.analysis import PlanInvariantError, verify_plan
from repro.core.operators import Operator
from repro.core.predicates import And, ColumnPredicate, ModuloPredicate
from repro.core.record import Record
from repro.query.executor import plan_query
from repro.query.optimizer import select_execution_mode
from repro.query.physical import LimitOp, execute_plan
from tests.test_engine_equivalence import PLANNER_QUERIES, build_databases

MODES = ("streaming", "batched", "columnar")


def summarize(result):
    return (
        tuple(result.columns),
        sorted(result.rows),
        sorted(
            (row, frozenset(branches))
            for row, branches in zip(
                result.rows, result.branch_annotations or []
            )
        ),
    )


class TestEngineColumnScans:
    """scan_branch_columns must mirror scan_branch exactly."""

    @pytest.fixture
    def branched_engine(self, engine, records):
        engine.init(records, message="initial")
        engine.create_branch("dev", from_branch="master")
        for key in range(100, 112):
            engine.insert("dev", Record((key, key * 10, key * 100, 7)))
        for key in (2, 5, 11):
            engine.update("dev", Record((key, -key, -key, -key)))
        for key in (3, 8):
            engine.delete("dev", key)
        engine.commit("dev", "dev work")
        return engine

    def rows_of(self, batches):
        return [row for batch in batches for row in batch.rows()]

    @pytest.mark.parametrize("branch", ["master", "dev"])
    def test_unfiltered_scan_matches_rows(self, branched_engine, branch):
        expected = [
            record.values for record in branched_engine.scan_branch(branch)
        ]
        got = self.rows_of(branched_engine.scan_branch_columns(branch))
        assert sorted(got) == sorted(expected)
        assert got == expected  # same order as the row scan, too

    @pytest.mark.parametrize(
        "predicate",
        [
            ColumnPredicate("c1", ">", 40),
            And(
                ColumnPredicate("c2", ">=", 0),
                ModuloPredicate("id", 3),
            ),
            ColumnPredicate("id", "=", 100000),  # matches nothing
        ],
        ids=["range", "and-modulo", "empty"],
    )
    @pytest.mark.parametrize("branch", ["master", "dev"])
    def test_predicate_scan_matches_rows(
        self, branched_engine, branch, predicate
    ):
        expected = [
            record.values
            for record in branched_engine.scan_branch(branch, predicate)
        ]
        got = self.rows_of(
            branched_engine.scan_branch_columns(branch, predicate)
        )
        assert got == expected

    @pytest.mark.parametrize("batch_size", [1, 3, 1024])
    def test_batch_size_does_not_change_contents(
        self, branched_engine, batch_size
    ):
        expected = [
            record.values for record in branched_engine.scan_branch("dev")
        ]
        got = self.rows_of(
            branched_engine.scan_branch_columns("dev", batch_size=batch_size)
        )
        assert got == expected

    def test_cold_scan_matches_warm(self, branched_engine):
        warm = self.rows_of(branched_engine.scan_branch_columns("dev"))
        branched_engine.drop_caches()
        cold = self.rows_of(branched_engine.scan_branch_columns("dev"))
        assert cold == warm


class TestThreeModeEquivalence:
    """All nine (engine x mode) combinations agree on every query shape."""

    def test_modes_agree_on_planner_suite(self, tmp_path):
        databases = build_databases(tmp_path)
        for sql in PLANNER_QUERIES:
            for kind, db in databases.items():
                plan = plan_query(db, sql)
                reference = None
                for mode in MODES:
                    summary = summarize(execute_plan(plan, mode=mode))
                    if reference is None:
                        reference = summary
                    else:
                        assert summary == reference, (
                            f"{kind}/{mode} disagrees on {sql!r}"
                        )

    def test_planner_suite_selects_columnar(self, tmp_path):
        databases = build_databases(tmp_path)
        db = databases["hybrid"]
        for sql in PLANNER_QUERIES:
            plan = plan_query(db, sql)
            assert select_execution_mode(plan) == "columnar", sql

    def test_head_annotations_survive_columnar_boundary(self, tmp_path):
        databases = build_databases(tmp_path)
        sql = "SELECT id FROM R WHERE HEAD(R.Version) = true"
        for kind, db in databases.items():
            plan = plan_query(db, sql)
            per_mode = {}
            for mode in MODES:
                result = execute_plan(plan, mode=mode)
                assert result.branch_annotations is not None
                per_mode[mode] = sorted(
                    (row, frozenset(branches))
                    for row, branches in zip(
                        result.rows, result.branch_annotations
                    )
                )
            assert per_mode["columnar"] == per_mode["streaming"]
            assert per_mode["columnar"] == per_mode["batched"]


class TestModeWiring:
    def test_explain_tags_every_node_columnar(self, tmp_path):
        databases = build_databases(tmp_path)
        out = databases["hybrid"].explain(
            "SELECT c1, count(id) FROM R WHERE R.Version = 'dev' "
            "GROUP BY c1 ORDER BY c1"
        )
        lines = [line for line in out.splitlines() if line.strip()]
        assert lines and all("[columnar]" in line for line in lines)

    def test_lost_column_path_degrades_to_batched(self, tmp_path, monkeypatch):
        databases = build_databases(tmp_path)
        db = databases["hybrid"]
        sql = "SELECT id FROM R WHERE R.Version = 'master' LIMIT 3"
        plan = plan_query(db, sql)
        assert select_execution_mode(plan) == "columnar"
        # A refactor deleting one operator's column_batches override must
        # drop the whole plan out of columnar mode (no silent mid-pipeline
        # row fallback) and fail columnar verification loudly.
        monkeypatch.setattr(
            LimitOp, "column_batches", Operator.column_batches
        )
        assert select_execution_mode(plan) == "batched"
        with pytest.raises(PlanInvariantError) as exc:
            verify_plan(plan, mode="columnar")
        assert exc.value.rule == "mode-consistency"
        assert "column-batch" in str(exc.value)
        # The degraded mode still verifies and still answers correctly.
        verify_plan(plan, mode="batched")
        result = execute_plan(plan, mode="batched")
        reference = execute_plan(plan, mode="streaming")
        assert sorted(result.rows) == sorted(reference.rows)

    def test_unknown_mode_rejected(self, tmp_path):
        databases = build_databases(tmp_path)
        plan = plan_query(
            databases["hybrid"],
            "SELECT id FROM R WHERE R.Version = 'master'",
        )
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            execute_plan(plan, mode="vectorized")
