"""The user-facing Decibel database facade."""

from repro.db.database import Decibel, VersionedRelation

__all__ = ["Decibel", "VersionedRelation"]
