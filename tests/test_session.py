"""Tests for user sessions (checkout state and read/write positioning)."""

import pytest

from repro.core.record import Record
from repro.errors import VersionError
from repro.versioning.session import Session


@pytest.fixture
def session(loaded_engine):
    return Session(loaded_engine, branch="master")


class TestSessionPositioning:
    def test_starts_on_branch(self, session):
        assert session.branch == "master"
        assert session.is_writable
        assert session.commit_id is None

    def test_unknown_branch_rejected(self, loaded_engine):
        with pytest.raises(Exception):
            Session(loaded_engine, branch="missing")

    def test_checkout_moves_to_commit(self, session, loaded_engine):
        commit_id = loaded_engine.commit("master")
        session.checkout(commit_id)
        assert not session.is_writable
        assert session.commit_id == commit_id

    def test_use_branch_after_checkout(self, session, loaded_engine):
        commit_id = loaded_engine.commit("master")
        session.checkout(commit_id)
        session.use_branch("master")
        assert session.is_writable


class TestSessionReads:
    def test_scan_branch_head(self, session):
        assert len(session.records()) == 20

    def test_checkout_reverts_view_within_session(self, session, loaded_engine):
        commit_id = loaded_engine.commit("master", "before extra insert")
        session.insert(Record((100, 0, 0, 0)))
        session.commit("after insert")
        assert len(session.records()) == 21
        session.checkout(commit_id)
        assert len(session.records()) == 20

    def test_two_sessions_are_independent(self, loaded_engine):
        first = Session(loaded_engine, branch="master")
        commit_id = loaded_engine.commit("master")
        second = Session(loaded_engine, branch="master")
        second.checkout(commit_id)
        first.insert(Record((200, 0, 0, 0)))
        first.commit()
        assert len(first.records()) == 21
        assert len(second.records()) == 20

    def test_diff_against(self, session, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.insert("dev", Record((300, 0, 0, 0)))
        diff = session.diff_against("dev")
        assert {r.values[0] for r in diff.negative} == {300}


class TestSessionWrites:
    def test_insert_update_delete_commit(self, session, loaded_engine, schema):
        session.insert(Record((400, 0, 0, 0)))
        session.update(Record((400, 1, 1, 1)))
        session.delete(3)
        commit_id = session.commit("session changes")
        assert loaded_engine.graph.head("master") == commit_id
        values = {r.values[0]: r.values for r in loaded_engine.scan_branch("master")}
        assert values[400] == (400, 1, 1, 1)
        assert 3 not in values

    def test_writes_rejected_on_checkout(self, session, loaded_engine):
        commit_id = loaded_engine.commit("master")
        session.checkout(commit_id)
        with pytest.raises(VersionError):
            session.insert(Record((500, 0, 0, 0)))
        with pytest.raises(VersionError):
            session.commit()
        with pytest.raises(VersionError):
            session.delete(1)

    def test_create_branch_from_branch_position(self, session, loaded_engine):
        session.create_branch("from-session")
        assert loaded_engine.graph.has_branch("from-session")

    def test_create_branch_from_checkout_position(self, session, loaded_engine, schema):
        commit_id = loaded_engine.commit("master", "snapshot")
        loaded_engine.insert("master", Record((600, 0, 0, 0)))
        loaded_engine.commit("master")
        session.checkout(commit_id)
        session.create_branch("historical")
        keys = {r.key(schema) for r in loaded_engine.scan_branch("historical")}
        assert 600 not in keys and len(keys) == 20
