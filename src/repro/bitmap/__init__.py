"""Bitmaps and bitmap indexes.

The tuple-first and hybrid layouts track which branches each tuple is live in
using bitmap indexes (paper Section 3.1).  This subpackage provides:

* :class:`~repro.bitmap.bitmap.Bitmap` -- a growable bitset with the bulk
  logical operations (AND/OR/XOR/ANDNOT) the engines rely on.
* :mod:`~repro.bitmap.rle` -- the run-length codec used to compress commit
  deltas.
* :class:`~repro.bitmap.delta.CommitHistory` -- per-branch commit history
  files storing XOR deltas between commit snapshots, with a second composite
  layer for faster checkout (paper Section 3.2).
* Branch-oriented and tuple-oriented bitmap indexes
  (:mod:`~repro.bitmap.branch_bitmap`, :mod:`~repro.bitmap.tuple_bitmap`),
  the two organizations compared in the paper.
"""

from repro.bitmap.bitmap import Bitmap
from repro.bitmap.rle import rle_decode, rle_encode
from repro.bitmap.delta import CommitHistory
from repro.bitmap.base import BitmapIndex, BitmapOrientation
from repro.bitmap.branch_bitmap import BranchOrientedBitmapIndex
from repro.bitmap.tuple_bitmap import TupleOrientedBitmapIndex

__all__ = [
    "Bitmap",
    "rle_encode",
    "rle_decode",
    "CommitHistory",
    "BitmapIndex",
    "BitmapOrientation",
    "BranchOrientedBitmapIndex",
    "TupleOrientedBitmapIndex",
]


def make_bitmap_index(orientation: "BitmapOrientation | str") -> "BitmapIndex":
    """Create a bitmap index of the requested orientation.

    Accepts either a :class:`BitmapOrientation` or its string value
    (``"branch"`` / ``"tuple"``).
    """
    if isinstance(orientation, str):
        orientation = BitmapOrientation(orientation)
    if orientation is BitmapOrientation.BRANCH:
        return BranchOrientedBitmapIndex()
    return TupleOrientedBitmapIndex()
