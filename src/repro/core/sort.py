"""Memory-bounded sorting: sorted runs, disk spill, and k-way merge.

``OrderBy`` used to materialize its entire input and sort once, which made
result-shaping the one operator whose memory footprint was unbounded by the
batch pipeline.  This module supplies the machinery for the external-sort
replacement (MonetDB/X100-style run-based sorting):

* :func:`make_sort_key` compiles a ``(column, descending)`` key list into a
  single total-order key function usable both for sorting runs and for
  merging them, so every consumer agrees on one ordering.
* :class:`ExternalRunSorter` accumulates records into in-memory runs bounded
  by a byte budget; when the budget is exceeded the current run is sorted and
  spilled to a temporary file, and :meth:`ExternalRunSorter.merged` streams
  the globally sorted output through a k-way :func:`heapq.merge` over all
  runs.  Inputs that fit the budget take a zero-copy fast path (one in-memory
  sort, no merge, no key objects beyond the sort itself).

The merge is stable: runs are sealed in input order, each run is sorted with
Python's stable sort, and ``heapq.merge`` prefers earlier iterables on key
ties, so the merged output is bit-identical to a single stable sort of the
whole input.
"""

from __future__ import annotations

import heapq
import pickle
import sys
import tempfile
from typing import Callable, Iterator, Sequence

from repro.core.record import Record
from repro.core.schema import ColumnType, Schema

#: Default in-memory byte budget for one sort (records beyond it spill).
DEFAULT_SORT_BUDGET_BYTES = 32 * 1024 * 1024

#: Records per pickled chunk in a spilled run file.
_SPILL_CHUNK_RECORDS = 1024

#: Column types whose descending order can ride on value negation.
_NUMERIC_TYPES = (ColumnType.INT, ColumnType.INT32, ColumnType.FLOAT)


class Descending:
    """Inverts the ordering of a wrapped value (for non-numeric DESC keys).

    Numeric descending keys are negated instead (tuple comparison then stays
    in C); this wrapper covers strings and any other orderable type.
    """

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def __lt__(self, other: "Descending") -> bool:
        return other.value < self.value

    def __eq__(self, other) -> bool:
        return isinstance(other, Descending) and other.value == self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Descending({self.value!r})"


def _key_part(value, descending: bool, numeric: bool) -> tuple:
    """One column's contribution to a composite sort key.

    Each part is a ``(rank, value)`` pair so SQL NULLs (``None``, produced
    e.g. by empty-input aggregates) get a total order without ever being
    compared against real values: NULLs sort last ascending and first
    descending (the PostgreSQL defaults).  Descending numeric values are
    negated (tuple comparison stays in C); descending non-numeric values
    are wrapped in :class:`Descending`.
    """
    if value is None:
        return (1, 0) if not descending else (0, 0)
    if not descending:
        return (0, value)
    return (1, -value) if numeric else (1, Descending(value))


def make_sort_key(
    schema: Schema, keys: Sequence[tuple[str, bool]]
) -> Callable[[Record], object]:
    """Compile ``keys`` into one total-order key function over records.

    The same function drives run sorting, ``heapq.merge`` and the Top-N
    bounded heap, so all sort consumers share one ordering (see
    :func:`_key_part` for the per-column encoding and NULL placement).
    Unknown columns raise ``SchemaError`` (via :meth:`Schema.index_of`),
    matching the operators' constructor checks.
    """
    specs: list[tuple[int, bool, bool]] = []
    for column, descending in keys:
        index = schema.index_of(column)
        numeric = schema.column(column).type in _NUMERIC_TYPES
        specs.append((index, bool(descending), numeric))
    if len(specs) == 1:
        index, descending, numeric = specs[0]
        return lambda record: _key_part(
            record.values[index], descending, numeric
        )

    def key(record: Record, specs: tuple = tuple(specs)):
        values = record.values
        return tuple(
            _key_part(values[index], descending, numeric)
            for index, descending, numeric in specs
        )

    return key


def make_values_sort_key(
    schema: Schema, keys: Sequence[tuple[str, bool]]
) -> Callable[[tuple], object]:
    """Like :func:`make_sort_key`, but over bare value tuples.

    The columnar pipeline's sort consumers (Top-N over ``ColumnBatch``
    rows) order value tuples directly instead of :class:`Record` objects;
    the key encoding is identical, so row-mode and columnar orderings
    agree exactly.
    """
    specs: list[tuple[int, bool, bool]] = []
    for column, descending in keys:
        index = schema.index_of(column)
        numeric = schema.column(column).type in _NUMERIC_TYPES
        specs.append((index, bool(descending), numeric))
    if len(specs) == 1:
        index, descending, numeric = specs[0]
        return lambda values: _key_part(values[index], descending, numeric)

    def key(values: tuple, specs: tuple = tuple(specs)):
        return tuple(
            _key_part(values[index], descending, numeric)
            for index, descending, numeric in specs
        )

    return key


def estimate_record_bytes(record: Record) -> int:
    """Approximate in-memory footprint of one record, in bytes.

    Measured once per sort (from the first record) and multiplied by the
    record count: the pipelines this feeds carry fixed-width records, so a
    single sample is representative and the accounting stays O(1) per batch.
    """
    values = record.values
    return (
        sys.getsizeof(record)
        + sys.getsizeof(values)
        + sum(sys.getsizeof(value) for value in values)
    )


class ExternalRunSorter:
    """Accumulate records under a byte budget; spill sorted runs; merge.

    Usage: feed batches with :meth:`add_batch` (or single records with
    :meth:`add`), then consume :meth:`merged` exactly once.  ``spill_dir``
    optionally pins the temporary run files to a directory (default: the
    platform temp dir).  ``spilled_runs``/``spilled_records`` report how much
    of the input went to disk, so callers can assert the spill path was (or
    was not) exercised.
    """

    def __init__(
        self,
        key: Callable[[Record], object],
        budget_bytes: int | None = None,
        spill_dir: str | None = None,
    ):
        self.key = key
        self.budget_bytes = (
            DEFAULT_SORT_BUDGET_BYTES if budget_bytes is None else budget_bytes
        )
        self.spill_dir = spill_dir
        self.spilled_runs = 0
        self.spilled_records = 0
        self._current: list[Record] = []
        self._current_bytes = 0
        self._bytes_per_record: int | None = None
        self._run_files: list = []

    # -- input ----------------------------------------------------------------

    def add_batch(self, batch: Sequence[Record]) -> None:
        """Absorb one batch, spilling the current run if the budget is hit."""
        if not batch:
            return
        if self._bytes_per_record is None:
            self._bytes_per_record = max(estimate_record_bytes(batch[0]), 1)
        self._current.extend(batch)
        self._current_bytes += len(batch) * self._bytes_per_record
        if self._current_bytes > self.budget_bytes:
            self._spill_current()

    def add(self, record: Record) -> None:
        """Absorb one record (the tuple-at-a-time entry point)."""
        self.add_batch((record,))

    # -- spill ----------------------------------------------------------------

    def _spill_current(self) -> None:
        self._current.sort(key=self.key)
        handle = tempfile.TemporaryFile(
            prefix="repro-sort-run-", dir=self.spill_dir
        )
        for start in range(0, len(self._current), _SPILL_CHUNK_RECORDS):
            pickle.dump(
                self._current[start : start + _SPILL_CHUNK_RECORDS],
                handle,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        self._run_files.append(handle)
        self.spilled_runs += 1
        self.spilled_records += len(self._current)
        self._current = []
        self._current_bytes = 0

    @staticmethod
    def _read_run(handle) -> Iterator[Record]:
        handle.seek(0)
        while True:
            try:
                chunk = pickle.load(handle)
            except EOFError:
                return
            yield from chunk

    # -- output ---------------------------------------------------------------

    def merged(self) -> Iterator[Record]:
        """Stream the globally sorted output; closes spill files when done.

        Single-shot: the spilled run files are deleted once the iterator is
        exhausted (or closed), so the merge can only run once.
        """
        self._current.sort(key=self.key)
        if not self._run_files:
            # Fast path: the input fit the budget -- one stable sort, no merge.
            yield from self._current
            return
        try:
            runs = [self._read_run(handle) for handle in self._run_files]
            runs.append(iter(self._current))
            yield from heapq.merge(*runs, key=self.key)
        finally:
            self.close()

    def close(self) -> None:
        """Release the temporary run files (idempotent)."""
        for handle in self._run_files:
            handle.close()
        self._run_files = []
