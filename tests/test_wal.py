"""Tests for the write-ahead log."""

from repro.core.wal import LogRecord, LogRecordType, WriteAheadLog


class TestLogRecord:
    def test_json_roundtrip(self):
        record = LogRecord(LogRecordType.WRITE, 7, branch="dev", payload="insert")
        assert LogRecord.from_json(record.to_json()) == record

    def test_json_roundtrip_minimal(self):
        record = LogRecord(LogRecordType.BEGIN, 1)
        restored = LogRecord.from_json(record.to_json())
        assert restored.branch is None and restored.payload is None


class TestWriteAheadLog:
    def test_in_memory_append(self):
        wal = WriteAheadLog.in_memory()
        wal.append(LogRecord(LogRecordType.BEGIN, 1))
        assert len(wal) == 1

    def test_file_backed_persistence(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        wal.append(LogRecord(LogRecordType.BEGIN, 1))
        wal.append(LogRecord(LogRecordType.COMMIT, 1))
        reopened = WriteAheadLog(path)
        assert len(reopened) == 2
        assert reopened.records()[1].type is LogRecordType.COMMIT

    def test_replay_classifies_transactions(self):
        wal = WriteAheadLog.in_memory()
        wal.append(LogRecord(LogRecordType.BEGIN, 1))
        wal.append(LogRecord(LogRecordType.COMMIT, 1))
        wal.append(LogRecord(LogRecordType.BEGIN, 2))
        wal.append(LogRecord(LogRecordType.ABORT, 2))
        wal.append(LogRecord(LogRecordType.BEGIN, 3))  # crashed mid-flight
        report = wal.replay()
        assert report.committed == {1}
        assert report.aborted == {2}
        assert report.in_flight == {3}
        assert report.losers == {2, 3}

    def test_checkpoint_truncates(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WriteAheadLog(path)
        for i in range(5):
            wal.append(LogRecord(LogRecordType.BEGIN, i))
        wal.checkpoint()
        assert len(wal) == 1
        assert WriteAheadLog(path).records()[0].type is LogRecordType.CHECKPOINT

    def test_replay_empty_log(self):
        report = WriteAheadLog.in_memory().replay()
        assert not report.committed and not report.losers


class TestGroupCommit:
    """append_group: concurrent committers share one fsync (leader batches)."""

    def test_single_appender_still_syncs(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.append_group(LogRecord(LogRecordType.COMMIT, 1))
        assert wal.fsync_count >= 1
        assert wal.group_batches >= 1
        reopened = WriteAheadLog(str(tmp_path / "wal.log"))
        assert reopened.records()[-1].type is LogRecordType.COMMIT

    def test_concurrent_committers_share_fsyncs(self, tmp_path):
        import threading

        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        committers = 16
        barrier = threading.Barrier(committers)

        def commit(txn_id):
            barrier.wait(timeout=10)
            wal.append_group(LogRecord(LogRecordType.COMMIT, txn_id))

        threads = [
            threading.Thread(target=commit, args=(i,)) for i in range(committers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not any(t.is_alive() for t in threads)
        # Everyone is durable...
        reopened = WriteAheadLog(str(tmp_path / "wal.log"))
        assert len(reopened.records()) == committers
        # ...but the log fsynced fewer times than there were committers:
        # at least one batch covered multiple COMMIT records.
        assert wal.fsync_count < committers, (
            f"{wal.fsync_count} fsyncs for {committers} committers -- "
            "group commit never batched"
        )
        assert wal.group_batches == wal.fsync_count

    def test_unsynced_buffered_records_ride_the_group_fsync(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "wal.log"))
        wal.append(LogRecord(LogRecordType.BEGIN, 1), sync=False)
        wal.append(LogRecord(LogRecordType.WRITE, 1, branch="master"), sync=False)
        before = wal.fsync_count
        wal.append_group(LogRecord(LogRecordType.COMMIT, 1))
        assert wal.fsync_count == before + 1
        reopened = WriteAheadLog(str(tmp_path / "wal.log"))
        assert [r.type for r in reopened.records()] == [
            LogRecordType.BEGIN,
            LogRecordType.WRITE,
            LogRecordType.COMMIT,
        ]
