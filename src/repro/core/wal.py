"""A minimal write-ahead log.

The paper notes that by living inside a relational DBMS, Decibel can inherit
fault tolerance "by employing standard write-ahead logging techniques on
writes" (Section 2.1) and leaves a full treatment to future work.  This module
provides that standard mechanism in a small form: an append-only log of
typed records that can be persisted to disk, replayed after a crash, and
truncated at a checkpoint.  Transactions write BEGIN/WRITE/COMMIT/ABORT
records through it; recovery reports which transactions were committed so an
engine can discard the effects of any that were not.
"""

from __future__ import annotations

import enum
import json
import os
from dataclasses import dataclass, field


class LogRecordType(enum.Enum):
    """Kinds of log records."""

    BEGIN = "begin"
    WRITE = "write"
    COMMIT = "commit"
    ABORT = "abort"
    CHECKPOINT = "checkpoint"


@dataclass(frozen=True)
class LogRecord:
    """One entry in the write-ahead log."""

    type: LogRecordType
    transaction_id: int
    branch: str | None = None
    payload: str | None = None

    def to_json(self) -> str:
        """Serialize to a single JSON line."""
        return json.dumps(
            {
                "type": self.type.value,
                "txn": self.transaction_id,
                "branch": self.branch,
                "payload": self.payload,
            },
            separators=(",", ":"),
        )

    @classmethod
    def from_json(cls, line: str) -> "LogRecord":
        """Parse a record previously produced by :meth:`to_json`."""
        raw = json.loads(line)
        return cls(
            type=LogRecordType(raw["type"]),
            transaction_id=raw["txn"],
            branch=raw.get("branch"),
            payload=raw.get("payload"),
        )


@dataclass
class RecoveryReport:
    """Summary of a log replay: which transactions survive a crash."""

    committed: set[int] = field(default_factory=set)
    aborted: set[int] = field(default_factory=set)
    in_flight: set[int] = field(default_factory=set)

    @property
    def losers(self) -> set[int]:
        """Transactions whose effects must be discarded (aborted or in flight)."""
        return self.aborted | self.in_flight


class WriteAheadLog:
    """Append-only log, either purely in memory or backed by a file."""

    def __init__(self, path: str | None = None):
        self.path = path
        self._records: list[LogRecord] = []
        if path is not None and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line:
                        self._records.append(LogRecord.from_json(line))

    @classmethod
    def in_memory(cls) -> "WriteAheadLog":
        """A log that is never persisted (used by tests and benchmarks)."""
        return cls(path=None)

    def __len__(self) -> int:
        return len(self._records)

    # -- writing --------------------------------------------------------------

    def append(self, record: LogRecord) -> None:
        """Append a record, persisting it immediately when file-backed."""
        self._records.append(record)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(record.to_json() + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    def checkpoint(self) -> None:
        """Write a checkpoint record and drop everything before it."""
        checkpoint = LogRecord(LogRecordType.CHECKPOINT, transaction_id=0)
        self._records = [checkpoint]
        if self.path is not None:
            with open(self.path, "w", encoding="utf-8") as handle:
                handle.write(checkpoint.to_json() + "\n")

    # -- reading --------------------------------------------------------------

    def records(self) -> list[LogRecord]:
        """All records currently in the log, oldest first."""
        return list(self._records)

    def replay(self) -> RecoveryReport:
        """Classify every transaction seen in the log."""
        report = RecoveryReport()
        for record in self._records:
            txn = record.transaction_id
            if record.type is LogRecordType.BEGIN:
                report.in_flight.add(txn)
            elif record.type is LogRecordType.COMMIT:
                report.in_flight.discard(txn)
                report.committed.add(txn)
            elif record.type is LogRecordType.ABORT:
                report.in_flight.discard(txn)
                report.aborted.add(txn)
        return report
