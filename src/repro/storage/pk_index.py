"""Per-branch primary-key indexes.

To support efficient updates and deletes, the tuple-first layout keeps "a
primary-key index indicating the most recent version of each primary key in
each branch" (paper Section 3.2); the hybrid layout needs the same thing with
a (segment, position) location instead of a global tuple index.  The index is
a mapping from branch name to ``{primary key -> location}``, where the
location type is whatever the owning engine uses.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

from repro.errors import BranchNotFoundError

LocationT = TypeVar("LocationT")


class PrimaryKeyIndex(Generic[LocationT]):
    """Maps (branch, primary key) to the latest physical location of the key."""

    def __init__(self):
        self._branches: dict[str, dict[int, LocationT]] = {}

    # -- branch management ----------------------------------------------------

    def add_branch(self, branch: str, clone_from: str | None = None) -> None:
        """Register ``branch``, optionally cloning another branch's entries."""
        if clone_from is None:
            self._branches.setdefault(branch, {})
        else:
            self._branches[branch] = dict(self._branch(clone_from))

    def has_branch(self, branch: str) -> bool:
        """True if ``branch`` is registered."""
        return branch in self._branches

    def drop_branch(self, branch: str) -> None:
        """Forget all entries of ``branch``."""
        self._branch(branch)
        del self._branches[branch]

    def replace_branch(self, branch: str, entries: dict[int, LocationT]) -> None:
        """Overwrite the whole key map of ``branch`` (used by checkouts)."""
        self._branches[branch] = dict(entries)

    # -- key operations ---------------------------------------------------------

    def put(self, branch: str, key: int, location: LocationT) -> None:
        """Record that ``key``'s latest version in ``branch`` lives at ``location``."""
        self._branch(branch)[key] = location

    def get(self, branch: str, key: int) -> LocationT | None:
        """The latest location of ``key`` in ``branch``, or None if absent."""
        return self._branch(branch).get(key)

    def remove(self, branch: str, key: int) -> None:
        """Forget ``key`` in ``branch`` (after a delete)."""
        self._branch(branch).pop(key, None)

    def contains(self, branch: str, key: int) -> bool:
        """True if ``key`` currently exists in ``branch``."""
        return key in self._branch(branch)

    def keys(self, branch: str) -> Iterator[int]:
        """All live primary keys of ``branch``."""
        return iter(self._branch(branch))

    def entries(self, branch: str) -> dict[int, LocationT]:
        """A copy of the full key map of ``branch``."""
        return dict(self._branch(branch))

    def items(self, branch: str) -> Iterator[tuple[int, LocationT]]:
        """Live ``(key, location)`` pairs of ``branch`` without copying.

        Callers must not mutate the index while iterating.
        """
        return iter(self._branch(branch).items())

    def locations(self, branch: str) -> Iterator[LocationT]:
        """Live locations of ``branch`` without copying the key map.

        Callers must not mutate the index while iterating.
        """
        return iter(self._branch(branch).values())

    def live_count(self, branch: str) -> int:
        """Number of live keys in ``branch``."""
        return len(self._branch(branch))

    # -- internals --------------------------------------------------------------

    def _branch(self, branch: str) -> dict[int, LocationT]:
        try:
            return self._branches[branch]
        except KeyError:
            raise BranchNotFoundError(
                f"branch {branch!r} is not present in the primary-key index"
            ) from None
