"""Tests for the two-phase-locking lock manager."""

import threading

import pytest

from repro.core.locks import LockManager, LockMode
from repro.errors import TransactionError


@pytest.fixture
def locks():
    return LockManager(timeout=0.2)


class TestLockManager:
    def test_shared_locks_compatible(self, locks):
        locks.acquire(1, "branch:master", LockMode.SHARED)
        locks.acquire(2, "branch:master", LockMode.SHARED)
        assert locks.holds(1, "branch:master", LockMode.SHARED)
        assert locks.holds(2, "branch:master", LockMode.SHARED)

    def test_exclusive_blocks_shared(self, locks):
        locks.acquire(1, "branch:master", LockMode.EXCLUSIVE)
        with pytest.raises(TransactionError):
            locks.acquire(2, "branch:master", LockMode.SHARED)

    def test_shared_blocks_exclusive(self, locks):
        locks.acquire(1, "branch:master", LockMode.SHARED)
        with pytest.raises(TransactionError):
            locks.acquire(2, "branch:master", LockMode.EXCLUSIVE)

    def test_reentrant_acquire(self, locks):
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        locks.acquire(1, "r", LockMode.SHARED)
        assert locks.holds(1, "r", LockMode.EXCLUSIVE)

    def test_lock_upgrade_when_sole_holder(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        assert locks.holds(1, "r", LockMode.EXCLUSIVE)

    def test_upgrade_blocked_by_other_reader(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        locks.acquire(2, "r", LockMode.SHARED)
        with pytest.raises(TransactionError):
            locks.acquire(1, "r", LockMode.EXCLUSIVE)

    def test_release_all_frees_resources(self, locks):
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(1, "b", LockMode.SHARED)
        locks.release_all(1)
        assert not locks.holds(1, "a", LockMode.SHARED)
        locks.acquire(2, "a", LockMode.EXCLUSIVE)

    def test_release_unblocks_waiter(self, locks):
        locks.acquire(1, "r", LockMode.EXCLUSIVE)
        acquired = threading.Event()

        def waiter():
            locks.acquire(2, "r", LockMode.EXCLUSIVE)
            acquired.set()

        thread = threading.Thread(target=waiter)
        thread.start()
        locks.release_all(1)
        thread.join(timeout=2)
        assert acquired.is_set()

    def test_deadlock_detected(self, locks):
        locks.acquire(1, "a", LockMode.EXCLUSIVE)
        locks.acquire(2, "b", LockMode.EXCLUSIVE)

        errors = []

        def first_waits():
            try:
                locks.acquire(1, "b", LockMode.EXCLUSIVE)
            except TransactionError as exc:
                errors.append(exc)

        thread = threading.Thread(target=first_waits)
        thread.start()
        # Give transaction 1 a moment to start waiting on "b", then create the
        # cycle: transaction 2 requests "a", which 1 holds.
        import time

        time.sleep(0.05)
        with pytest.raises(TransactionError):
            locks.acquire(2, "a", LockMode.EXCLUSIVE)
        locks.release_all(2)
        thread.join(timeout=2)

    def test_locked_resources_listing(self, locks):
        locks.acquire(1, "a", LockMode.SHARED)
        locks.acquire(1, "b", LockMode.EXCLUSIVE)
        assert locks.locked_resources(1) == {"a", "b"}

    def test_holds_semantics(self, locks):
        locks.acquire(1, "r", LockMode.SHARED)
        assert locks.holds(1, "r", LockMode.SHARED)
        assert not locks.holds(1, "r", LockMode.EXCLUSIVE)
        assert not locks.holds(2, "r", LockMode.SHARED)
