"""Equivalence suite for the vectorized batch execution path.

Every test asserts the batched paths produce *identical* record sequences to
the tuple-at-a-time paths they shadow: engine ``scan_branch_batched`` versus
``scan_branch`` (all three engines, multi-branch datasets, post-merge
states), operator ``batches()`` versus ``__iter__``, and the query pipeline
with ``batched=True`` versus ``batched=False``.
"""

from __future__ import annotations

import pytest

from repro.core.operators import (
    Aggregate as AggregateOp,
    Distinct as DistinctOp,
    Filter,
    GroupAggregate,
    HashAntiJoin,
    HashJoin,
    Limit,
    OrderBy,
    Project,
    SeqScan,
)
from repro.core.predicates import And, ColumnPredicate, ModuloPredicate
from repro.core.record import Record
from repro.query.logical import (
    Aggregate,
    AntiJoin,
    Distinct,
    HeadScan,
    Join,
    Sort,
    VersionDiff,
    VersionScan,
)
from repro.query.optimizer import (
    execution_mode_labels,
    optimize,
    select_execution_mode,
)
from repro.query.parser import SelectItem
from repro.query.physical import build_physical, execute_plan

from tests.conftest import make_records


def flatten(batches):
    return [record for batch in batches for record in batch]


PREDICATES = [
    None,
    ColumnPredicate("c1", ">", 60),
    ModuloPredicate("c1", 3),
    And(ColumnPredicate("c1", ">=", 20), ColumnPredicate("c2", "<", 1500)),
]


@pytest.fixture
def branched_engine(engine):
    """A multi-branch dataset with updates, deletes, and a merge."""
    engine.init(make_records(30), message="seed")
    engine.create_branch("dev", from_branch="master")
    for key in range(30, 40):
        engine.insert("dev", Record((key, key * 10, key * 100, 1)))
    for key in (3, 7, 11):
        engine.update("dev", Record((key, key * 10 + 5, key * 100 + 5, 2)))
    engine.delete("dev", 5)
    engine.commit("dev", "dev work")
    engine.create_branch("feature", from_branch="dev")
    for key in range(40, 45):
        engine.insert("feature", Record((key, key * 10, key * 100, 3)))
    engine.update("master", Record((2, 25, 250, 4)))
    engine.delete("master", 9)
    engine.commit("master", "master work")
    engine.commit("feature", "feature work")
    engine.merge("master", "feature", message="merge feature")
    return engine


class TestEngineBatchedScans:
    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_batched_scan_matches_tuple_at_a_time(self, branched_engine, predicate):
        for branch in ("master", "dev", "feature"):
            expected = list(branched_engine.scan_branch(branch, predicate))
            got = flatten(branched_engine.scan_branch_batched(branch, predicate))
            assert got == expected

    @pytest.mark.parametrize("batch_size", [1, 3, 1000])
    def test_batch_size_only_changes_grouping(self, branched_engine, batch_size):
        # batch_size is a flush threshold, not an exact size: small sizes
        # produce at least as many (smaller) batches, and flattening always
        # reproduces the tuple-at-a-time scan.
        expected = list(branched_engine.scan_branch("master"))
        batches = list(
            branched_engine.scan_branch_batched("master", batch_size=batch_size)
        )
        assert flatten(batches) == expected
        # A huge threshold can still produce one batch per storage unit
        # (hybrid scans each segment independently), but never more batches
        # than a tiny threshold does.
        few_batches = list(
            branched_engine.scan_branch_batched("master", batch_size=10**9)
        )
        assert flatten(few_batches) == expected
        assert len(batches) >= len(few_batches) >= 1

    def test_scan_stats_match(self, engine_kind, schema, tmp_path):
        from tests.conftest import engine_factory

        plain = engine_factory(engine_kind, schema, str(tmp_path / "plain"))
        batched = engine_factory(engine_kind, schema, str(tmp_path / "batched"))
        for target in (plain, batched):
            target.init(make_records(25), message="seed")
            target.create_branch("dev", from_branch="master")
            target.delete("dev", 4)
            target.commit("dev", "work")
        predicate = ModuloPredicate("c1", 2)
        list(plain.scan_branch("dev", predicate))
        flatten(batched.scan_branch_batched("dev", predicate))
        if engine_kind == "version-first":
            # The index-driven batched scan touches only live records;
            # the chain walk also visits shadowed copies and tombstones.
            assert 0 < batched.stats.records_scanned <= plain.stats.records_scanned
        else:
            assert batched.stats.records_scanned == plain.stats.records_scanned

    def test_empty_branch_scans_clean(self, engine):
        engine.init([], message="empty")
        assert flatten(engine.scan_branch_batched("master")) == []

    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_scan_branches_batched_matches_tuple_at_a_time(
        self, branched_engine, predicate
    ):
        branches = ["master", "dev", "feature"]
        expected = list(branched_engine.scan_branches(branches, predicate))
        got = flatten(
            branched_engine.scan_branches_batched(
                branches, predicate, batch_size=7
            )
        )
        assert got == expected

    def test_scan_branches_annotations_match_membership(self, branched_engine):
        branches = ["master", "dev", "feature"]
        live = {
            branch: {record.values for record in branched_engine.scan_branch(branch)}
            for branch in branches
        }
        # A logical record may be yielded from more than one physical copy
        # (version-first locates each branch's copy independently), so
        # membership is checked content-level: the union of the annotations
        # of a values-tuple must equal the branches whose head contains it.
        annotated: dict[tuple, set[str]] = {}
        for record, members in branched_engine.scan_branches(branches):
            annotated.setdefault(record.values, set()).update(members)
        assert annotated
        for values, members in annotated.items():
            assert members == {
                branch for branch in branches if values in live[branch]
            }


class TestOperatorBatches:
    def test_default_batches_chunk_iteration(self):
        from repro.core.schema import Schema

        schema = Schema.of_ints(4)
        records = make_records(10)
        scan = SeqScan(iter(records), schema)
        assert flatten(scan.batches(batch_size=3)) == records

    def test_filter_project_limit_batches(self):
        from repro.core.schema import Schema

        schema = Schema.of_ints(4)
        records = make_records(50)
        predicate = ColumnPredicate("c1", ">=", 100)

        def pipeline():
            return Limit(
                Project(
                    Filter(SeqScan(iter(records), schema), predicate),
                    ["c2", "id", "id"],
                ),
                17,
            )

        assert flatten(pipeline().batches(batch_size=5)) == list(pipeline())

    def test_seqscan_batch_source_flattens_for_iter(self):
        from repro.core.schema import Schema

        schema = Schema.of_ints(4)
        records = make_records(7)
        batches = [records[:3], records[3:]]
        assert list(SeqScan(None, schema, batch_source=iter(batches))) == records
        assert list(
            SeqScan(None, schema, batch_source=iter(batches)).batches()
        ) == batches

    def _scan(self, records):
        from repro.core.schema import Schema

        return SeqScan(iter(records), Schema.of_ints(4))

    def test_hash_join_batches_match_iteration(self):
        records = make_records(40)
        right = [Record((r.values[0], r.values[1] + 1, 0, 0)) for r in records[5:]]

        def pipeline():
            return HashJoin(self._scan(records), self._scan(right), "id", "id")

        assert flatten(pipeline().batches(batch_size=7)) == list(pipeline())

    def test_hash_join_composite_key_batches(self):
        records = make_records(30)

        def pipeline():
            return HashJoin(
                self._scan(records),
                self._scan(records),
                ["id", "c1"],
                ["id", "c1"],
            )

        assert flatten(pipeline().batches(batch_size=4)) == list(pipeline())

    def test_hash_anti_join_batches_match_iteration(self):
        outer = make_records(25)
        inner = make_records(10, start=5)

        def pipeline():
            return HashAntiJoin(self._scan(outer), self._scan(inner), "id", "id")

        assert flatten(pipeline().batches(batch_size=6)) == list(pipeline())

    def test_order_by_batches_match_iteration(self):
        records = make_records(31)[::-1]

        def pipeline():
            return OrderBy(self._scan(records), [("c2", False), ("id", True)])

        assert flatten(pipeline().batches(batch_size=5)) == list(pipeline())

    def test_distinct_batches_match_iteration(self):
        records = make_records(12) + make_records(12) + make_records(3, start=6)

        def pipeline():
            return DistinctOp(self._scan(records))

        assert flatten(pipeline().batches(batch_size=5)) == list(pipeline())

    @pytest.mark.parametrize("function", ["count", "sum", "min", "max", "avg"])
    @pytest.mark.parametrize("group_by", [None, "c2"])
    def test_aggregate_batches_match_iteration(self, function, group_by):
        records = [
            Record((key, key * 3, key % 4, key % 2)) for key in range(37)
        ]

        def pipeline():
            return AggregateOp(
                self._scan(records), function, "c1", group_by=group_by
            )

        assert flatten(pipeline().batches(batch_size=8)) == list(pipeline())

    @pytest.mark.parametrize(
        "group_by, aggregates",
        [
            ([], [("n", "count", "*")]),
            (["c2"], [("n", "count", "*"), ("total", "sum", "c1")]),
            (["c2", "c3"], [("lo", "min", "c1"), ("hi", "max", "c1"),
                            ("mean", "avg", "c1")]),
            (["c2"], []),  # grouping with no aggregates (DISTINCT-like)
        ],
    )
    def test_group_aggregate_batches_match_iteration(self, group_by, aggregates):
        records = [
            Record((key, key * 7, key % 5, key % 3)) for key in range(53)
        ]

        def pipeline():
            return GroupAggregate(self._scan(records), group_by, aggregates)

        assert flatten(pipeline().batches(batch_size=9)) == list(pipeline())

    def test_group_aggregate_empty_input(self):
        for group_by in ([], ["c2"]):
            def pipeline(g=group_by):
                return GroupAggregate(self._scan([]), g, [("n", "count", "*")])

            assert flatten(pipeline().batches()) == list(pipeline())

    def test_count_matches_materialized_length(self):
        records = make_records(40)

        def pipeline():
            return OrderBy(
                Project(
                    Filter(self._scan(records), ColumnPredicate("c1", ">=", 100)),
                    ["id", "c2"],
                ),
                [("id", True)],
            )

        assert pipeline().count() == len(list(pipeline()))

    def test_seqscan_count_source_short_circuits(self):
        from repro.core.schema import Schema

        schema = Schema.of_ints(4)

        def poisoned_batches():
            raise AssertionError("batch source must not be consumed")
            yield  # pragma: no cover

        scan = SeqScan(
            None, schema, batch_source=poisoned_batches(), count_source=lambda: 123
        )
        assert scan.count() == 123


class TestQueryPipelineEquivalence:
    def _rows(self, plan, batched):
        operator = build_physical(optimize(plan), batched=batched)
        return [record.values for batch in operator.batches() for record in batch]

    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_version_scan(self, branched_engine, predicate):
        for branch in ("master", "dev"):
            plans = [
                VersionScan(branched_engine, "R", "R", "branch", branch, predicate)
                for _ in range(2)
            ]
            assert self._rows(plans[0], True) == self._rows(plans[1], False)

    def test_commit_scan(self, branched_engine):
        commit = branched_engine.graph.head("dev")
        plans = [
            VersionScan(branched_engine, "R", "R", "commit", commit, None)
            for _ in range(2)
        ]
        assert self._rows(plans[0], True) == self._rows(plans[1], False)

    def test_version_diff(self, branched_engine):
        key = branched_engine.schema.primary_key
        results = []
        for batched in (True, False):
            plan = VersionDiff(
                branched_engine,
                "R",
                ("branch", "dev"),
                ("branch", "master"),
                key,
                include_modified=True,
            )
            results.append(self._rows(plan, batched))
        assert results[0] == results[1]

    def test_join(self, branched_engine):
        key = branched_engine.schema.primary_key
        predicate = ModuloPredicate("c1", 4)
        results = []
        for batched in (True, False):
            plan = Join(
                VersionScan(branched_engine, "R", "a", "branch", "dev", predicate),
                VersionScan(branched_engine, "R", "b", "branch", "master", None),
                [(key, key)],
            )
            results.append(self._rows(plan, batched))
        assert results[0] == results[1]

    def test_head_scan_rows_and_annotations(self, branched_engine):
        results = []
        for batched in (True, False):
            plan = HeadScan(branched_engine, "R", "R", ModuloPredicate("c1", 5))
            results.append(execute_plan(plan, batched=batched))
        assert results[0].rows == results[1].rows
        assert results[0].branch_annotations == results[1].branch_annotations

    def _group_by_plan(self, engine, branch):
        return Aggregate(
            VersionScan(engine, "R", "R", "branch", branch, None),
            ["c3"],
            [
                SelectItem(column="c3"),
                SelectItem(function="count", argument="*"),
                SelectItem(function="sum", argument="c1"),
                SelectItem(function="min", argument="c2"),
                SelectItem(function="avg", argument="c1"),
            ],
        )

    def test_group_by(self, branched_engine):
        for branch in ("master", "dev"):
            plans = [
                self._group_by_plan(branched_engine, branch) for _ in range(2)
            ]
            assert self._rows(plans[0], True) == self._rows(plans[1], False)

    def test_order_by(self, branched_engine):
        results = []
        for batched in (True, False):
            plan = Sort(
                VersionScan(branched_engine, "R", "R", "branch", "dev", None),
                [("c3", True), ("id", False)],
            )
            results.append(self._rows(plan, batched))
        assert results[0] == results[1]

    def test_distinct(self, branched_engine):
        results = []
        for batched in (True, False):
            plan = Distinct(
                VersionScan(branched_engine, "R", "R", "branch", "master", None)
            )
            results.append(self._rows(plan, batched))
        assert results[0] == results[1]

    def test_anti_join(self, branched_engine):
        key = branched_engine.schema.primary_key
        results = []
        for batched in (True, False):
            # The inner-side predicate keeps the optimizer from rewriting
            # this shape to an engine diff, so HashAntiJoin itself runs.
            plan = AntiJoin(
                VersionScan(branched_engine, "R", "a", "branch", "dev", None),
                VersionScan(
                    branched_engine, "R", "b", "branch", "master",
                    ModuloPredicate("c1", 2),
                ),
                key,
                key,
            )
            results.append(self._rows(plan, batched))
        assert results[0] == results[1]

    @pytest.mark.parametrize("predicate", PREDICATES)
    def test_count_only_path_matches_row_counts(self, branched_engine, predicate):
        key = branched_engine.schema.primary_key
        plans = [
            lambda: VersionScan(
                branched_engine, "R", "R", "branch", "dev", predicate
            ),
            lambda: HeadScan(branched_engine, "R", "R", predicate),
            lambda: Join(
                VersionScan(branched_engine, "R", "a", "branch", "dev", predicate),
                VersionScan(branched_engine, "R", "b", "branch", "master", None),
                [(key, key)],
            ),
            lambda: self._group_by_plan(branched_engine, "master"),
        ]
        for make_plan in plans:
            operator = build_physical(optimize(make_plan()), batched=True)
            counted = operator.count()
            operator = build_physical(optimize(make_plan()), batched=True)
            materialized = sum(len(batch) for batch in operator.batches())
            assert counted == materialized

    def test_engine_count_branch_matches_scan(self, branched_engine):
        for branch in ("master", "dev", "feature"):
            for predicate in PREDICATES:
                expected = sum(
                    1 for _ in branched_engine.scan_branch(branch, predicate)
                )
                assert (
                    branched_engine.count_branch(branch, predicate) == expected
                )


class TestExecutionModeSelection:
    def test_whole_tree_is_batched(self, branched_engine):
        key = branched_engine.schema.primary_key
        plan = optimize(
            Sort(
                Aggregate(
                    Join(
                        VersionScan(
                            branched_engine, "R", "a", "branch", "dev",
                            ModuloPredicate("c1", 3),
                        ),
                        VersionScan(
                            branched_engine, "R", "b", "branch", "master", None
                        ),
                        [(key, key)],
                    ),
                    ["c3"],
                    [
                        SelectItem(column="c3"),
                        SelectItem(function="count", argument="*"),
                    ],
                ),
                [("c3", False)],
            )
        )
        assert select_execution_mode(plan) == "columnar"
        labels = execution_mode_labels(plan)
        assert labels and set(labels.values()) == {"columnar"}

    def test_explain_marks_every_node_batched(self, tmp_path):
        from repro.db.database import Decibel
        from repro.core.schema import Schema

        db = Decibel(str(tmp_path / "db"), engine="hybrid")
        relation = db.create_relation("R", Schema.of_ints(4))
        relation.init(make_records(20))
        for sql in (
            "SELECT c1, count(*) FROM R WHERE R.Version = 'master' "
            "GROUP BY c1 ORDER BY count(*) DESC LIMIT 3",
            "SELECT a.id, b.c2 FROM R a, R b WHERE a.id = b.id AND "
            "a.Version = 'master' AND b.Version = 'master'",
        ):
            explained = db.explain(sql)
            lines = explained.splitlines()
            assert lines and all("[columnar]" in line for line in lines)
            assert "[tuple]" not in explained
