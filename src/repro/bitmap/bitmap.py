"""A growable bitset.

Bitmaps are the indexing structure of the tuple-first and hybrid layouts: one
bit per (tuple, branch) pair records whether the tuple is live in the branch.
The backing store is a ``bytearray`` that grows by doubling, matching the
amortized growth strategy described for branch creation in the paper
(Section 3.2).  Bulk logical operations convert to Python integers, which
gives word-at-a-time AND/OR/XOR without a native extension; iteration over
set bits works 64-bit-word-at-a-time, stripping the lowest set bit with
``word & -word`` instead of probing bits one by one.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator, Mapping

#: Bits per iteration word used by :meth:`Bitmap.iter_words`.
WORD_BITS = 64
_WORD_BYTES = WORD_BITS // 8


class Bitmap:
    """A dynamically sized bitset with bulk logical operations."""

    __slots__ = ("_bytes", "_num_bits", "_count")

    def __init__(self, num_bits: int = 0):
        if num_bits < 0:
            raise ValueError("num_bits must be non-negative")
        self._num_bits = num_bits
        self._bytes = bytearray((num_bits + 7) // 8)
        #: Cached population count; ``None`` after any mutation.
        self._count: int | None = 0

    # -- constructors ---------------------------------------------------------

    @classmethod
    def from_indices(cls, indices: Iterable[int], num_bits: int = 0) -> "Bitmap":
        """A bitmap with exactly the given bit positions set."""
        bitmap = cls(num_bits)
        bitmap.set_many(indices)
        return bitmap

    @classmethod
    def from_bytes(cls, data: bytes, num_bits: int) -> "Bitmap":
        """Rebuild a bitmap from :meth:`to_bytes` output.

        ``num_bits`` must be covered by ``data``: accepting an oversized bit
        count would silently fabricate zero bits that were never serialized.
        """
        needed = (num_bits + 7) // 8
        if needed > len(data):
            raise ValueError(
                f"num_bits={num_bits} needs {needed} bytes, got {len(data)}"
            )
        bitmap = cls(num_bits)
        bitmap._bytes = bytearray(data[:needed])
        bitmap._count = None
        return bitmap

    def copy(self) -> "Bitmap":
        """An independent copy of this bitmap."""
        clone = Bitmap(self._num_bits)
        clone._bytes = bytearray(self._bytes)
        clone._count = self._count
        return clone

    # -- size -----------------------------------------------------------------

    def __len__(self) -> int:
        """The logical number of bits tracked (set or not)."""
        return self._num_bits

    @property
    def size_bytes(self) -> int:
        """Bytes used by the backing store."""
        return len(self._bytes)

    def _ensure(self, index: int) -> None:
        if index < 0:
            raise IndexError("bit index must be non-negative")
        if index >= self._num_bits:
            self._num_bits = index + 1
        needed = (self._num_bits + 7) // 8
        if needed > len(self._bytes):
            # Grow by doubling to amortize repeated appends.
            new_size = max(needed, 2 * len(self._bytes), 8)
            self._bytes.extend(b"\x00" * (new_size - len(self._bytes)))

    # -- single-bit operations ------------------------------------------------

    def set(self, index: int) -> None:
        """Set bit ``index`` to 1, growing the bitmap if needed."""
        self._ensure(index)
        self._bytes[index >> 3] |= 1 << (index & 7)
        self._count = None

    def clear(self, index: int) -> None:
        """Set bit ``index`` to 0, growing the bitmap if needed."""
        self._ensure(index)
        self._bytes[index >> 3] &= ~(1 << (index & 7)) & 0xFF
        self._count = None

    def get(self, index: int) -> bool:
        """True if bit ``index`` is set.  Out-of-range bits read as 0."""
        if index < 0:
            raise IndexError("bit index must be non-negative")
        if index >= self._num_bits:
            return False
        return bool(self._bytes[index >> 3] & (1 << (index & 7)))

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    # -- bulk mutation --------------------------------------------------------

    def set_many(self, indices: Iterable[int]) -> None:
        """Set every bit in ``indices``, growing once and writing in one pass."""
        if not isinstance(indices, (list, tuple)):
            indices = list(indices)
        if not indices:
            return
        if min(indices) < 0:
            raise IndexError("bit index must be non-negative")
        self._ensure(max(indices))
        buf = self._bytes
        for index in indices:
            buf[index >> 3] |= 1 << (index & 7)
        self._count = None

    # -- bulk operations ------------------------------------------------------

    def _as_int(self) -> int:
        return int.from_bytes(self._bytes, "little")

    @classmethod
    def _from_int(cls, value: int, num_bits: int) -> "Bitmap":
        bitmap = cls(num_bits)
        num_bytes = (num_bits + 7) // 8
        bitmap._bytes = bytearray(value.to_bytes(max(num_bytes, 1), "little")[:num_bytes])
        if len(bitmap._bytes) < num_bytes:
            bitmap._bytes.extend(b"\x00" * (num_bytes - len(bitmap._bytes)))
        bitmap._count = None
        return bitmap

    def _binary(self, other: "Bitmap", op) -> "Bitmap":
        num_bits = max(self._num_bits, other._num_bits)
        return Bitmap._from_int(op(self._as_int(), other._as_int()), num_bits)

    def __and__(self, other: "Bitmap") -> "Bitmap":
        return self._binary(other, lambda a, b: a & b)

    def __or__(self, other: "Bitmap") -> "Bitmap":
        return self._binary(other, lambda a, b: a | b)

    def __xor__(self, other: "Bitmap") -> "Bitmap":
        return self._binary(other, lambda a, b: a ^ b)

    def and_not(self, other: "Bitmap") -> "Bitmap":
        """Bits set in ``self`` but not in ``other`` (set difference)."""
        return self._binary(other, lambda a, b: a & ~b)

    # -- buffer-reusing variants ----------------------------------------------

    def _store_int(self, value: int, num_bits: int) -> "Bitmap":
        """Overwrite this bitmap's contents in place (buffer reuse)."""
        self._num_bits = num_bits
        needed = (num_bits + 7) // 8
        if len(self._bytes) < needed:
            self._bytes.extend(b"\x00" * (needed - len(self._bytes)))
        self._bytes[:needed] = value.to_bytes(max(needed, 1), "little")[:needed]
        if len(self._bytes) > needed:
            # Bits beyond num_bits must stay zero (iteration invariant).
            self._bytes[needed:] = b"\x00" * (len(self._bytes) - needed)
        self._count = None
        return self

    def union_update(self, other: "Bitmap") -> "Bitmap":
        """In-place ``self |= other``, reusing this bitmap's buffer."""
        return self._store_int(
            self._as_int() | other._as_int(), max(self._num_bits, other._num_bits)
        )

    def intersection_update(self, other: "Bitmap") -> "Bitmap":
        """In-place ``self &= other``, reusing this bitmap's buffer."""
        return self._store_int(
            self._as_int() & other._as_int(), max(self._num_bits, other._num_bits)
        )

    def difference_update(self, other: "Bitmap") -> "Bitmap":
        """In-place ``self &= ~other``, reusing this bitmap's buffer."""
        return self._store_int(
            self._as_int() & ~other._as_int(), max(self._num_bits, other._num_bits)
        )

    def and_not_into(self, other: "Bitmap", out: "Bitmap") -> "Bitmap":
        """Write ``self & ~other`` into ``out`` (reusing its buffer) and return it."""
        return out._store_int(
            self._as_int() & ~other._as_int(), max(self._num_bits, other._num_bits)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitmap):
            return NotImplemented
        return self._as_int() == other._as_int()

    def __hash__(self) -> int:  # pragma: no cover - bitmaps rarely hashed
        return hash(self._as_int())

    # -- queries --------------------------------------------------------------

    def count(self) -> int:
        """Number of set bits (population count), cached between mutations."""
        if self._count is None:
            self._count = self._as_int().bit_count()
        return self._count

    def any(self) -> bool:
        """True if at least one bit is set."""
        return any(self._bytes)

    def iter_words(self) -> Iterator[tuple[int, int]]:
        """Yield ``(word index, word)`` for every nonzero 64-bit word.

        Fully zero words -- dead stretches of the heap -- are skipped without
        per-bit work, which is what lets scans jump over dead pages.
        """
        data = self._bytes
        num_full = len(data) >> 3
        if num_full:
            words = struct.unpack_from(f"<{num_full}Q", data)
            for word_index, word in enumerate(words):
                if word:
                    yield word_index, word
        tail = len(data) & 7
        if tail:
            word = int.from_bytes(data[num_full << 3 :], "little")
            if word:
                yield num_full, word

    def _word_list(self) -> list[int]:
        """All 64-bit words (zeros included), low word first."""
        data = self._bytes
        num_full = len(data) >> 3
        words = list(struct.unpack_from(f"<{num_full}Q", data)) if num_full else []
        if len(data) & 7:
            words.append(int.from_bytes(data[num_full << 3 :], "little"))
        return words

    def iter_set_bits(self) -> Iterator[int]:
        """Yield the indices of set bits in ascending order, word-at-a-time.

        The word loop is inlined (rather than layered over
        :meth:`iter_words`) so dense bitmaps do not pay a nested generator
        resume per bit.
        """
        data = self._bytes
        num_full = len(data) >> 3
        if num_full:
            words = struct.unpack_from(f"<{num_full}Q", data)
            for word_index, word in enumerate(words):
                if word:
                    base = word_index << 6
                    while word:
                        low = word & -word
                        yield base + low.bit_length() - 1
                        word ^= low
        if len(data) & 7:
            word = int.from_bytes(data[num_full << 3 :], "little")
            base = num_full << 6
            while word:
                low = word & -word
                yield base + low.bit_length() - 1
                word ^= low

    def to_indices(self) -> list[int]:
        """The set bit positions as a list."""
        return list(self.iter_set_bits())

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """The backing bytes, trimmed to the logical bit length."""
        return bytes(self._bytes[: (self._num_bits + 7) // 8])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Bitmap(bits={self._num_bits}, set={self.count()})"


def union_member_pages(
    bitmaps: Mapping[str, Bitmap], per_page: int
) -> dict[int, list[tuple[int, frozenset]]]:
    """Group the union's set bits by page: ``{page: [(slot, members), ...]}``.

    This is the word-level membership pass used by multi-branch scans: for
    every 64-bit word of the union, each named bitmap's word is fetched once
    and individual bits are tested with shifts, instead of calling
    ``Bitmap.get`` once per (name, bit) pair.  Member sets are memoized per
    membership pattern, so each distinct branch combination allocates a single
    shared ``frozenset``.  Slot lists are in ascending order within each page.
    """
    names = list(bitmaps)
    pages: dict[int, list[tuple[int, frozenset]]] = {}
    if not names:
        return pages
    word_lists = [bitmaps[name]._word_list() for name in names]
    num_names = len(names)
    max_words = max(len(words) for words in word_lists)
    members_by_mask: dict[int, frozenset] = {}
    current_page = -1
    slots: list[tuple[int, frozenset]] = []

    def lookup(mask: int) -> frozenset:
        members = members_by_mask.get(mask)
        if members is None:
            members = frozenset(
                names[j] for j in range(num_names) if (mask >> j) & 1
            )
            members_by_mask[mask] = members
        return members

    for word_index in range(max_words):
        row = [
            words[word_index] if word_index < len(words) else 0
            for words in word_lists
        ]
        union = 0
        for word in row:
            union |= word
        if not union:
            continue
        base = word_index << 6
        # Fast path: when every named word is either empty or equal to the
        # union, all 64 bits of this word share one membership pattern, so
        # the per-bit branch probing collapses to one mask per word.  This
        # is the common case -- contiguous insert runs are live in the same
        # branch set.
        uniform_mask = 0
        for j in range(num_names):
            word = row[j]
            if word:
                if word == union:
                    uniform_mask |= 1 << j
                else:
                    uniform_mask = -1
                    break
        if uniform_mask >= 0:
            members = lookup(uniform_mask)
            while union:
                low = union & -union
                ordinal = base + low.bit_length() - 1
                union ^= low
                page_number = ordinal // per_page
                if page_number != current_page:
                    slots = pages.setdefault(page_number, [])
                    current_page = page_number
                slots.append((ordinal % per_page, members))
            continue
        while union:
            low = union & -union
            ordinal = base + low.bit_length() - 1
            union ^= low
            mask = 0
            for j in range(num_names):
                if row[j] & low:
                    mask |= 1 << j
            page_number = ordinal // per_page
            if page_number != current_page:
                slots = pages.setdefault(page_number, [])
                current_page = page_number
            slots.append((ordinal % per_page, lookup(mask)))
    return pages


def iter_union_members(
    bitmaps: Mapping[str, Bitmap]
) -> Iterator[tuple[int, frozenset]]:
    """Yield ``(bit index, names whose bitmap has that bit)`` in ascending order.

    A convenience wrapper over :func:`union_member_pages` with a single
    page covering every bit.
    """
    pages = union_member_pages(bitmaps, 1 << 62)
    for page_number in sorted(pages):
        base = page_number << 62
        for slot, members in pages[page_number]:
            yield base + slot, members
