"""Property-based tests: every engine behaves like a model versioned map.

A simple in-memory model (one ``{key -> values}`` dict per branch, snapshots
per commit) defines the expected semantics; hypothesis generates operation
sequences (inserts, updates, deletes, branches, commits) and the tests check
each engine against the model after replaying the sequence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.record import Record
from repro.core.schema import Schema

from tests.conftest import ENGINE_CLASSES


class _Model:
    """Reference semantics for a versioned relation."""

    def __init__(self):
        self.branches = {"master": {}}
        self.commits = {}

    def insert(self, branch, key, payload):
        self.branches[branch][key] = payload

    def update(self, branch, key, payload):
        self.branches[branch][key] = payload

    def delete(self, branch, key):
        self.branches[branch].pop(key, None)

    def create_branch(self, name, parent):
        self.branches[name] = dict(self.branches[parent])

    def commit(self, branch, commit_id):
        self.commits[commit_id] = dict(self.branches[branch])


operation_steps = st.lists(
    st.tuples(
        st.sampled_from(["insert", "update", "delete", "branch", "commit"]),
        st.integers(min_value=0, max_value=30),
        st.integers(min_value=0, max_value=999),
    ),
    min_size=1,
    max_size=60,
)


def replay(engine, model, steps, schema):
    branches = ["master"]
    for step_index, (action, key, payload_seed) in enumerate(steps):
        branch = branches[key % len(branches)]
        payload = (payload_seed, payload_seed * 2, payload_seed * 3)
        if action == "insert":
            if key in model.branches[branch]:
                continue
            model.insert(branch, key, payload)
            engine.insert(branch, Record((key,) + payload))
        elif action == "update":
            if key not in model.branches[branch]:
                continue
            model.update(branch, key, payload)
            engine.update(branch, Record((key,) + payload))
        elif action == "delete":
            if key not in model.branches[branch]:
                continue
            model.delete(branch, key)
            engine.delete(branch, key)
        elif action == "branch":
            if len(branches) >= 5:
                continue
            name = f"b{step_index}"
            model.create_branch(name, branch)
            engine.create_branch(name, from_branch=branch)
            branches.append(name)
        else:  # commit
            commit_id = engine.commit(branch)
            model.commit(branch, commit_id)
    return branches


def assert_engine_matches_model(engine, model, branches, schema):
    for branch in branches:
        engine_view = {
            record.values[0]: record.values[1:]
            for record in engine.scan_branch(branch)
        }
        assert engine_view == model.branches[branch], f"branch {branch} diverged"
    for commit_id, expected in model.commits.items():
        engine_view = {
            record.values[0]: record.values[1:]
            for record in engine.scan_commit(commit_id)
        }
        assert engine_view == expected, f"commit {commit_id} diverged"


@pytest.mark.parametrize("kind", sorted(ENGINE_CLASSES))
class TestEnginesAgainstModel:
    @given(steps=operation_steps)
    @settings(max_examples=20, deadline=None)
    def test_branches_and_commits_match_model(self, kind, steps, tmp_path_factory):
        schema = Schema.of_ints(4)
        directory = tmp_path_factory.mktemp(f"prop_{kind}")
        engine = ENGINE_CLASSES[kind](str(directory / "engine"), schema, page_size=4096)
        engine.init([])
        model = _Model()
        branches = replay(engine, model, steps, schema)
        assert_engine_matches_model(engine, model, branches, schema)
