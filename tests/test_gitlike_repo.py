"""Tests for the git-like repository and its Decibel-API adapter."""

import pytest

from repro.core.record import Record
from repro.core.schema import Schema
from repro.errors import StorageError, VersionError
from repro.gitlike.engine import GitRecordFormat, GitStorageLayout, GitVersionedStore
from repro.gitlike.repo import GitLikeRepo

from tests.conftest import make_records


@pytest.fixture
def repo(tmp_path):
    return GitLikeRepo(str(tmp_path / "repo"))


class TestGitLikeRepo:
    def test_commit_and_checkout(self, repo):
        commit_id = repo.commit("master", {"a.txt": b"hello", "b.txt": b"world"})
        assert repo.checkout(commit_id) == {"a.txt": b"hello", "b.txt": b"world"}
        assert repo.head_of("master") == commit_id

    def test_commit_chain_and_log(self, repo):
        first = repo.commit("master", {"a.txt": b"v1"})
        second = repo.commit("master", {"a.txt": b"v2"})
        assert repo.commit_info(second)["parents"] == [first]
        assert set(repo.log("master")) == {first, second}

    def test_branching(self, repo):
        base = repo.commit("master", {"a.txt": b"v1"})
        repo.create_branch("dev", "master")
        dev_commit = repo.commit("dev", {"a.txt": b"v1", "b.txt": b"dev"})
        assert repo.head_of("master") == base
        assert repo.head_of("dev") == dev_commit
        assert sorted(repo.branches()) == ["dev", "master"]

    def test_duplicate_branch_rejected(self, repo):
        repo.commit("master", {"a.txt": b"v1"})
        repo.create_branch("dev", "master")
        with pytest.raises(VersionError):
            repo.create_branch("dev", "master")

    def test_unknown_branch_rejected(self, repo):
        with pytest.raises(VersionError):
            repo.head_of("nope")

    def test_diff_reports_file_changes(self, repo):
        first = repo.commit("master", {"a.txt": b"v1", "b.txt": b"x"})
        second = repo.commit("master", {"a.txt": b"v2", "c.txt": b"new"})
        diff = repo.diff(first, second)
        assert diff["added"] == ["c.txt"]
        assert diff["removed"] == ["b.txt"]
        assert diff["modified"] == ["a.txt"]

    def test_identical_commits_share_blobs(self, repo):
        repo.commit("master", {"a.txt": b"same"})
        objects_before = len(repo.objects)
        repo.commit("master", {"a.txt": b"same"})
        # Only the commit object is new; blob and tree are content-addressed.
        assert len(repo.objects) == objects_before + 1

    def test_repack_preserves_history(self, repo):
        commits = [
            repo.commit("master", {"data.bin": bytes([i]) * 2000}) for i in range(5)
        ]
        report = repo.repack()
        assert report.objects_packed > 0
        assert report.pack_bytes_after > 0
        # All commits remain readable from the pack.
        for i, commit_id in enumerate(commits):
            assert repo.checkout(commit_id)["data.bin"] == bytes([i]) * 2000
        # Loose objects were removed.
        assert len(repo.objects) == 0
        assert repo.repo_size_bytes() > 0

    def test_missing_object_after_tamper(self, repo, tmp_path):
        commit_id = repo.commit("master", {"a.txt": b"data"})
        blob_id = repo.tree_of(commit_id)["a.txt"]
        repo.objects.remove(blob_id)
        with pytest.raises(StorageError):
            repo.checkout(commit_id)

    def test_refs_persist_across_reopen(self, tmp_path):
        directory = str(tmp_path / "repo")
        first = GitLikeRepo(directory)
        commit_id = first.commit("master", {"a": b"1"})
        second = GitLikeRepo(directory)
        assert second.head_of("master") == commit_id


@pytest.fixture(params=["single-file", "file-per-tuple"])
def layout(request):
    return GitStorageLayout(request.param)


@pytest.fixture(params=["csv", "binary"])
def record_format(request):
    return GitRecordFormat(request.param)


@pytest.fixture
def git_store(tmp_path, schema, layout, record_format):
    return GitVersionedStore(
        str(tmp_path / "store"), schema, layout=layout, record_format=record_format
    )


class TestGitVersionedStore:
    def test_init_and_scan(self, git_store):
        git_store.init(make_records(10))
        assert len(git_store.scan_branch("master")) == 10

    def test_double_init_rejected(self, git_store):
        git_store.init([])
        with pytest.raises(VersionError):
            git_store.init([])

    def test_commit_checkout_roundtrip(self, git_store, schema):
        git_store.init(make_records(5))
        git_store.insert("master", Record((100, 1, 2, 3)))
        commit_id = git_store.commit("master")
        git_store.delete("master", 100)
        git_store.commit("master")
        restored = {r.key(schema): r for r in git_store.checkout(commit_id)}
        assert 100 in restored
        assert restored[100].values == (100, 1, 2, 3)

    def test_update_and_delete(self, git_store, schema):
        git_store.init(make_records(5))
        git_store.update("master", Record((2, 9, 9, 9)))
        git_store.delete("master", 3)
        records = {r.key(schema): r.values for r in git_store.scan_branch("master")}
        assert records[2] == (2, 9, 9, 9)
        assert 3 not in records
        with pytest.raises(StorageError):
            git_store.delete("master", 3)

    def test_branch_isolation(self, git_store, schema):
        git_store.init(make_records(5))
        git_store.create_branch("dev", from_branch="master")
        git_store.insert("dev", Record((200, 0, 0, 0)))
        assert git_store.branch_contains_key("dev", 200)
        assert not git_store.branch_contains_key("master", 200)

    def test_duplicate_branch_rejected(self, git_store):
        git_store.init([])
        git_store.create_branch("dev")
        with pytest.raises(VersionError):
            git_store.create_branch("dev")

    def test_sizes_and_repack(self, git_store):
        git_store.init(make_records(50))
        for i in range(3):
            git_store.update("master", Record((i, 5, 5, 5)))
            git_store.commit("master")
        assert git_store.data_size_bytes() > 0
        before = git_store.repo_size_bytes()
        report = git_store.repack()
        assert report.objects_packed > 0
        assert report.loose_bytes_before == pytest.approx(before, rel=0.01)
        assert git_store.repo_size_bytes() > 0
        # Every loose object moved into the pack.
        assert len(git_store.repo.objects) == 0

    def test_commits_listing(self, git_store):
        git_store.init([])
        first = git_store.commit("master")
        second = git_store.commit("master")
        assert git_store.commits("master")[-2:] == [first, second]


class TestGitStoreFormats:
    def test_csv_and_binary_agree(self, tmp_path, schema):
        records = make_records(8)
        contents = {}
        for record_format in ("csv", "binary"):
            store = GitVersionedStore(
                str(tmp_path / record_format),
                schema,
                layout="single-file",
                record_format=record_format,
            )
            commit_id = store.init(records)
            contents[record_format] = {r.values for r in store.checkout(commit_id)}
        assert contents["csv"] == contents["binary"]

    def test_csv_is_larger_than_binary(self, tmp_path):
        schema = Schema.of_ints(6)
        records = [
            Record(tuple(10**9 + i for i in range(6))) for _ in range(20)
        ]
        sizes = {}
        for record_format in ("csv", "binary"):
            store = GitVersionedStore(
                str(tmp_path / f"fmt_{record_format}"),
                schema,
                layout="single-file",
                record_format=record_format,
            )
            store.init(records)
            sizes[record_format] = store.data_size_bytes()
        assert sizes["csv"] > sizes["binary"]

    def test_file_per_tuple_creates_many_blobs(self, tmp_path, schema):
        store = GitVersionedStore(
            str(tmp_path / "fpt"), schema, layout="file-per-tuple"
        )
        store.init(make_records(12))
        # Twelve blobs plus a tree plus a commit.
        assert len(store.repo.objects) >= 14
