"""Experiment runners: one function per table/figure of the paper's Section 5.

Every function loads the required datasets (at a configurable, scaled-down
size), measures the relevant operations, and returns a
:class:`~repro.bench.report.ResultTable` whose rows correspond to the series
the paper plots or tabulates.  The benchmark suite under ``benchmarks/`` calls
these functions and prints the tables; ``EXPERIMENTS.md`` records the
paper-reported versus measured shapes.

Dataset sizes default to roughly 1/1000 of the paper's 100 GB configuration
(the ``repro`` band for this paper notes a pure-Python prototype cannot drive
physical-layout benchmarks at full scale); all sizes are parameters so larger
runs are a matter of passing bigger numbers.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import time
from dataclasses import dataclass

from repro.bench.datagen import DataGenerator, GeneratorConfig
from repro.bench.driver import (
    BenchmarkConfig,
    LoadResult,
    apply_tablewise_update,
    load_dataset,
)
from repro.bench.queries import (
    BENCH_RELATION,
    query1_single_scan,
    query2_positive_diff,
    query3_join,
    query4_head_scan,
    query5_group_by,
    query6_order_by,
)
from repro.bench.report import ResultTable
from repro.bench.strategies import make_strategy
from repro.bitmap.base import BitmapOrientation
from repro.core.predicates import non_selective_predicate
from repro.errors import BenchmarkError
from repro.gitlike.engine import GitRecordFormat, GitStorageLayout, GitVersionedStore
from repro.storage.hybrid import HybridEngine
from repro.storage.tuple_first import TupleFirstEngine

#: Engine kinds in the order the paper's figures list them.
ENGINE_KINDS = ("version-first", "tuple-first", "hybrid")

#: Short labels matching the paper's VF / TF / HY abbreviations.
ENGINE_LABELS = {"version-first": "VF", "tuple-first": "TF", "hybrid": "HY"}


@dataclass
class ExperimentScale:
    """Knobs shared by most experiments."""

    total_operations: int = 4_000
    num_branches: int = 10
    commit_interval: int = 400
    num_columns: int = 10
    seed: int = 42
    #: Rows in the vectorized-scan microbenchmark (the acceptance run uses
    #: 100k; CI smoke runs pass something much smaller).
    scan_rows: int = 100_000


def _load(
    workdir: str,
    strategy: str,
    engine: str,
    scale: ExperimentScale,
    *,
    num_branches: int | None = None,
    total_operations: int | None = None,
    update_fraction: float = 0.2,
    clustered: bool = False,
    three_way_merges: bool = True,
    label: str = "",
) -> LoadResult:
    config = BenchmarkConfig(
        strategy=strategy,
        engine=engine,
        num_branches=num_branches if num_branches is not None else scale.num_branches,
        total_operations=(
            total_operations
            if total_operations is not None
            else scale.total_operations
        ),
        update_fraction=update_fraction,
        commit_interval=scale.commit_interval,
        num_columns=scale.num_columns,
        seed=scale.seed,
        three_way_merges=three_way_merges,
    )
    suffix = label or f"{strategy}_{engine}_{config.num_branches}"
    directory = os.path.join(workdir, suffix)
    return load_dataset(config, directory, clustered=clustered)


# ---------------------------------------------------------------------------
# Figure 6: scaling the number of branches (flat strategy, Q1 and Q4)
# ---------------------------------------------------------------------------


def figure6_scaling(
    workdir: str,
    branch_counts: tuple[int, ...] = (4, 8, 16),
    scale: ExperimentScale | None = None,
) -> tuple[ResultTable, ResultTable]:
    """Figure 6a/6b: Q1 and Q4 latency on the flat strategy as branches scale.

    The total dataset size is held fixed while the number of branches varies,
    as in the paper, so per-branch data shrinks as branches increase.
    """
    scale = scale or ExperimentScale()
    q1_table = ResultTable(
        "Figure 6a: Query 1 (single-branch scan), flat strategy",
        ["branches"] + [ENGINE_LABELS[e] + " (s)" for e in ENGINE_KINDS],
    )
    q4_table = ResultTable(
        "Figure 6b: Query 4 (scan all heads), flat strategy",
        ["branches"] + [ENGINE_LABELS[e] + " (s)" for e in ENGINE_KINDS],
    )
    for branches in branch_counts:
        q1_row: list = [branches]
        q4_row: list = [branches]
        for engine_kind in ENGINE_KINDS:
            result = _load(
                workdir,
                "flat",
                engine_kind,
                scale,
                num_branches=branches,
                label=f"fig6_{engine_kind}_{branches}",
            )
            target = result.strategy.single_scan_branch(random.Random(0))
            # Best-of-three keeps the figure's latency *shape* (what the
            # paper discusses) from being washed out by scheduler noise at
            # the small scales the test suite runs.
            q1 = min(
                query1_single_scan(result.engine, target).seconds
                for _ in range(3)
            )
            q4 = min(query4_head_scan(result.engine).seconds for _ in range(3))
            q1_row.append(q1)
            q4_row.append(q4)
        q1_table.add_row(*q1_row)
        q4_table.add_row(*q4_row)
    q1_table.add_note(
        "paper: VF and HY latencies fall as branches grow (fixed total size); "
        "TF stays flat or worsens"
    )
    q4_table.add_note(
        "paper: TF and HY answer Q4 via bitmaps; VF must scan the full structure"
    )
    return q1_table, q4_table


# ---------------------------------------------------------------------------
# Figure 7: Query 1 across strategies (including clustered tuple-first)
# ---------------------------------------------------------------------------


def figure7_query1(
    workdir: str, scale: ExperimentScale | None = None
) -> ResultTable:
    """Figure 7: single-branch scans per strategy and scan target."""
    scale = scale or ExperimentScale()
    table = ResultTable(
        "Figure 7: Query 1 latency (seconds) by strategy and scan target",
        ["target", "VF", "TF", "TF clustered", "HY"],
    )
    for strategy_name in ("deep", "flat", "science", "curation"):
        per_engine: dict[str, dict[str, float]] = {}
        targets: dict[str, str] = {}
        for engine_kind in ENGINE_KINDS:
            result = _load(
                workdir,
                strategy_name,
                engine_kind,
                scale,
                label=f"fig7_{strategy_name}_{engine_kind}",
            )
            targets = result.strategy.query1_targets()
            for label, branch in targets.items():
                # Best-of-three, as in figure 6: at test scales a single
                # cold run is easily washed out by scheduler noise.
                seconds = min(
                    query1_single_scan(result.engine, branch).seconds
                    for _ in range(3)
                )
                per_engine.setdefault(label, {})[engine_kind] = seconds
        clustered_result = _load(
            workdir,
            strategy_name,
            "tuple-first",
            scale,
            clustered=True,
            label=f"fig7_{strategy_name}_tf_clustered",
        )
        clustered_targets = clustered_result.strategy.query1_targets()
        for label, branch in clustered_targets.items():
            seconds = min(
                query1_single_scan(clustered_result.engine, branch).seconds
                for _ in range(3)
            )
            per_engine.setdefault(label, {})["tf-clustered"] = seconds
        for label in per_engine:
            row = per_engine[label]
            table.add_row(
                label,
                row.get("version-first", 0.0),
                row.get("tuple-first", 0.0),
                row.get("tf-clustered", 0.0),
                row.get("hybrid", 0.0),
            )
    table.add_note(
        "paper: TF reads the whole interleaved heap for every target; clustering "
        "helps TF most on flat; VF/HY degrade with merge-heavy curation targets"
    )
    return table


# ---------------------------------------------------------------------------
# Figures 8-10: Queries 2, 3 and 4 across strategies
# ---------------------------------------------------------------------------


def _per_strategy_query(
    workdir: str,
    scale: ExperimentScale,
    query_name: str,
    runner,
    label_prefix: str,
) -> ResultTable:
    table = ResultTable(
        f"{label_prefix}: {query_name} latency (seconds) by strategy",
        ["strategy"] + [ENGINE_LABELS[e] for e in ENGINE_KINDS],
    )
    for strategy_name in ("deep", "flat", "science", "curation"):
        row: list = [strategy_name]
        for engine_kind in ENGINE_KINDS:
            result = _load(
                workdir,
                strategy_name,
                engine_kind,
                scale,
                label=f"{label_prefix.lower().replace(' ', '_')}_{strategy_name}_{engine_kind}",
            )
            # Best-of-five keeps the per-strategy latency *shape* from being
            # washed out by scheduler noise at test scales, where a single
            # query runs only a few milliseconds.
            row.append(min(runner(result) for _ in range(5)))
        table.add_row(*row)
    return table


def figure8_query2(
    workdir: str, scale: ExperimentScale | None = None
) -> ResultTable:
    """Figure 8: positive diff between the strategy's designated branch pair."""
    scale = scale or ExperimentScale()

    def run(result: LoadResult) -> float:
        branch_a, branch_b = result.strategy.multi_scan_pair(random.Random(1))
        return query2_positive_diff(result.engine, branch_a, branch_b).seconds

    table = _per_strategy_query(workdir, scale, "Query 2 (diff)", run, "Figure 8")
    table.add_note(
        "paper: VF is uniformly worst (multiple passes); HY beats TF as "
        "interleaving grows"
    )
    return table


def figure9_query3(
    workdir: str, scale: ExperimentScale | None = None
) -> ResultTable:
    """Figure 9: primary-key join of two branches under a predicate."""
    scale = scale or ExperimentScale()

    def run(result: LoadResult) -> float:
        branch_a, branch_b = result.strategy.multi_scan_pair(random.Random(2))
        return query3_join(result.engine, branch_a, branch_b).seconds

    table = _per_strategy_query(workdir, scale, "Query 3 (join)", run, "Figure 9")
    table.add_note(
        "paper: trends mirror Q2; VF is competitive without merges but needs "
        "extra passes under curation"
    )
    return table


def figure10_query4(
    workdir: str, scale: ExperimentScale | None = None
) -> ResultTable:
    """Figure 10: full head scan with a non-selective predicate."""
    scale = scale or ExperimentScale()

    def run(result: LoadResult) -> float:
        return query4_head_scan(result.engine).seconds

    table = _per_strategy_query(workdir, scale, "Query 4 (all heads)", run, "Figure 10")
    table.add_note(
        "paper: TF and HY scan each record once via bitmaps; VF needs multiple "
        "passes, worst under curation"
    )
    return table


# ---------------------------------------------------------------------------
# Figure 11 + Table 4: table-wise updates
# ---------------------------------------------------------------------------


def figure11_tablewise_updates(
    workdir: str, scale: ExperimentScale | None = None
) -> tuple[ResultTable, ResultTable]:
    """Figure 11 and Table 4: Query 1 before/after a table-wise update."""
    scale = scale or ExperimentScale()
    fig11 = ResultTable(
        "Figure 11: Query 1 before/after a table-wise update (seconds)",
        ["strategy", "engine", "before", "after"],
    )
    table4 = ResultTable(
        "Table 4: storage impact of table-wise updates (MB)",
        ["strategy", "engine", "pre-size", "post-size"],
    )
    for strategy_name in ("deep", "flat", "science", "curation"):
        for engine_kind in ENGINE_KINDS:
            result = _load(
                workdir,
                strategy_name,
                engine_kind,
                scale,
                label=f"fig11_{strategy_name}_{engine_kind}",
            )
            target = result.strategy.single_scan_branch(random.Random(3))
            # Best-of-three on each side keeps the before/after comparison
            # from being decided by scheduler noise at test scales.
            before = min(
                query1_single_scan(result.engine, target).seconds
                for _ in range(3)
            )
            pre_size = result.data_size_mb
            apply_tablewise_update(result, target)
            result.engine.flush()
            after = min(
                query1_single_scan(result.engine, target).seconds
                for _ in range(3)
            )
            post_size = result.data_size_mb
            fig11.add_row(
                strategy_name,
                ENGINE_LABELS[engine_kind],
                before,
                after,
            )
            table4.add_row(
                strategy_name, ENGINE_LABELS[engine_kind], pre_size, post_size
            )
    fig11.add_note(
        "paper: VF degrades in proportion to the new data; TF benefits from the "
        "clustering effect of rewriting every record"
    )
    table4.add_note("paper: dataset grows by roughly the size of the updated branch")
    return fig11, table4


# ---------------------------------------------------------------------------
# Table 2: bitmap commit data
# ---------------------------------------------------------------------------


def table2_commit_metadata(
    workdir: str,
    scale: ExperimentScale | None = None,
    checkout_samples: int = 50,
) -> ResultTable:
    """Table 2: commit-history size, commit time and (bitmap) checkout time."""
    scale = scale or ExperimentScale()
    table = ResultTable(
        "Table 2: bitmap commit data (TF vs HY)",
        [
            "strategy",
            "engine",
            "agg. history size (KB)",
            "avg commit (ms)",
            "avg checkout (ms)",
        ],
    )
    for strategy_name in ("deep", "flat", "science", "curation"):
        for engine_kind in ("tuple-first", "hybrid"):
            result = _load(
                workdir,
                strategy_name,
                engine_kind,
                scale,
                label=f"table2_{strategy_name}_{engine_kind}",
            )
            engine = result.engine
            history_kb = engine.commit_metadata_bytes() / 1024
            avg_commit_ms = (
                1000 * statistics.mean(result.commit_seconds)
                if result.commit_seconds
                else 0.0
            )
            rng = random.Random(scale.seed)
            commits = [
                c for c in result.commit_ids if engine.graph.has_commit(c)
            ]
            sample = commits if len(commits) <= checkout_samples else rng.sample(
                commits, checkout_samples
            )
            durations = []
            for commit_id in sample:
                start = time.perf_counter()
                try:
                    if isinstance(engine, TupleFirstEngine):
                        engine.checkout_commit_bitmap(commit_id)
                    elif isinstance(engine, HybridEngine):
                        engine.checkout_commit_bitmaps(commit_id)
                except Exception:  # pragma: no cover - defensive: skip bad samples
                    continue
                durations.append(time.perf_counter() - start)
            avg_checkout_ms = 1000 * statistics.mean(durations) if durations else 0.0
            table.add_row(
                strategy_name,
                ENGINE_LABELS[engine_kind],
                history_kb,
                avg_commit_ms,
                avg_checkout_ms,
            )
    table.add_note(
        "paper: hybrid's split histories are smaller and faster to check out; "
        "overall overhead stays under 1% of data size"
    )
    return table


# ---------------------------------------------------------------------------
# Table 3: merge throughput
# ---------------------------------------------------------------------------


def table3_merge_throughput(
    workdir: str, scale: ExperimentScale | None = None
) -> ResultTable:
    """Table 3: two-way versus three-way merge throughput on curation."""
    scale = scale or ExperimentScale()
    table = ResultTable(
        "Table 3: merge throughput (MB of diff per second)",
        ["engine", "two-way MB/s", "three-way MB/s", "merges"],
    )
    for engine_kind in ENGINE_KINDS:
        throughput = {}
        merge_count = 0
        for mode_label, three_way in (("two-way", False), ("three-way", True)):
            # Best-of-three loads: merge timings at test scale are only a few
            # milliseconds each, so a single load's throughput is dominated
            # by scheduler noise rather than the engines' merge I/O shape.
            best = 0.0
            for attempt in range(3):
                result = _load(
                    workdir,
                    "curation",
                    engine_kind,
                    scale,
                    three_way_merges=three_way,
                    label=f"table3_{engine_kind}_{mode_label}_{attempt}",
                )
                total_bytes = sum(m.diff_bytes for m in result.merge_timings)
                total_seconds = sum(m.seconds for m in result.merge_timings)
                merge_count = len(result.merge_timings)
                if total_seconds > 0:
                    best = max(best, (total_bytes / (1024 * 1024)) / total_seconds)
            throughput[mode_label] = best
        table.add_row(
            ENGINE_LABELS[engine_kind],
            throughput["two-way"],
            throughput["three-way"],
            merge_count,
        )
    table.add_note(
        "paper: VF 14.2/9.6, TF 15.8/15.1, HY 26.5/33.2 MB/s -- hybrid fastest, "
        "version-first hit hardest by the three-way LCA scan"
    )
    return table


# ---------------------------------------------------------------------------
# Table 5: build (load) times
# ---------------------------------------------------------------------------


def table5_build_times(
    workdir: str,
    scale: ExperimentScale | None = None,
    branch_counts: tuple[int, ...] = (5, 10),
) -> ResultTable:
    """Table 5: load time per strategy, branch count and engine."""
    scale = scale or ExperimentScale()
    table = ResultTable(
        "Table 5: build times (seconds)",
        ["strategy", "branches", "VF", "TF", "HY", "data MB"],
    )
    for strategy_name in ("deep", "flat", "science", "curation"):
        for branches in branch_counts:
            row: list = [strategy_name, branches]
            data_mb = 0.0
            for engine_kind in ENGINE_KINDS:
                result = _load(
                    workdir,
                    strategy_name,
                    engine_kind,
                    scale,
                    num_branches=branches,
                    label=f"table5_{strategy_name}_{engine_kind}_{branches}",
                )
                row.append(result.load_seconds)
                data_mb = result.data_size_mb
            row.append(data_mb)
            table.add_row(*row)
    table.add_note(
        "paper: VF loads fastest (no index maintenance) except under curation; "
        "HY tracks VF closely; TF is slowest"
    )
    return table


# ---------------------------------------------------------------------------
# Tables 6 and 7: git comparison
# ---------------------------------------------------------------------------


def _git_configurations() -> list[tuple[str, GitStorageLayout, GitRecordFormat]]:
    return [
        ("git 1 file (bin)", GitStorageLayout.SINGLE_FILE, GitRecordFormat.BINARY),
        ("git 1 file (csv)", GitStorageLayout.SINGLE_FILE, GitRecordFormat.CSV),
        ("git file/tup (bin)", GitStorageLayout.FILE_PER_TUPLE, GitRecordFormat.BINARY),
        ("git file/tup (csv)", GitStorageLayout.FILE_PER_TUPLE, GitRecordFormat.CSV),
    ]


def git_comparison(
    workdir: str,
    update_fraction: float = 0.0,
    scale: ExperimentScale | None = None,
    num_branches: int = 10,
    commits: int = 40,
    checkout_samples: int = 20,
) -> ResultTable:
    """Tables 6/7: git-backed storage versus Decibel (hybrid), deep strategy.

    ``update_fraction=0`` reproduces Table 6 (100% inserts);
    ``update_fraction=0.5`` reproduces Table 7 (50% updates).
    """
    scale = scale or ExperimentScale()
    title = (
        "Table 6: git vs Decibel (hybrid), deep strategy, 100% inserts"
        if update_fraction == 0.0
        else "Table 7: git vs Decibel (hybrid), deep strategy, 50% updates"
    )
    table = ResultTable(
        title,
        [
            "system",
            "data size (MB)",
            "repo size (MB)",
            "repack (s)",
            "commit mean (ms)",
            "commit sd",
            "checkout mean (ms)",
            "checkout sd",
        ],
    )
    generator_config = GeneratorConfig(
        num_columns=scale.num_columns, seed=scale.seed
    )
    total_ops = scale.total_operations
    ops_per_commit = max(total_ops // commits, 1)
    strategy = make_strategy(
        "deep",
        None,
        num_branches=num_branches,
        total_operations=total_ops,
        update_fraction=update_fraction,
        seed=scale.seed,
    )
    plan = strategy.plan()
    rng = random.Random(scale.seed)
    for label, layout, record_format in _git_configurations():
        generator = DataGenerator(generator_config)
        store = GitVersionedStore(
            os.path.join(workdir, f"git_{layout.value}_{record_format.value}_{update_fraction}"),
            generator.schema,
            layout=layout,
            record_format=record_format,
        )
        stats = _run_git_plan(
            store, plan, generator, rng, ops_per_commit, checkout_samples
        )
        table.add_row(label, *stats)
    # Decibel (hybrid) under the same plan and commit cadence.
    generator = DataGenerator(generator_config)
    decibel_config = BenchmarkConfig(
        strategy="deep",
        engine="hybrid",
        num_branches=num_branches,
        total_operations=total_ops,
        update_fraction=update_fraction,
        commit_interval=ops_per_commit,
        num_columns=scale.num_columns,
        seed=scale.seed,
    )
    result = load_dataset(
        decibel_config,
        os.path.join(workdir, f"decibel_hybrid_{update_fraction}"),
    )
    engine = result.engine
    commit_times = [1000 * s for s in result.commit_seconds]
    rng2 = random.Random(scale.seed + 5)
    commits_list = [c for c in result.commit_ids if engine.graph.has_commit(c)]
    sample = (
        commits_list
        if len(commits_list) <= checkout_samples
        else rng2.sample(commits_list, checkout_samples)
    )
    checkout_times = []
    for commit_id in sample:
        start = time.perf_counter()
        engine.checkout_commit_bitmaps(commit_id)
        checkout_times.append(1000 * (time.perf_counter() - start))
    table.add_row(
        "Decibel (hybrid)",
        result.data_size_mb,
        (engine.data_size_bytes() + engine.commit_metadata_bytes()) / (1024 * 1024),
        0.0,
        statistics.mean(commit_times) if commit_times else 0.0,
        statistics.pstdev(commit_times) if len(commit_times) > 1 else 0.0,
        statistics.mean(checkout_times) if checkout_times else 0.0,
        statistics.pstdev(checkout_times) if len(checkout_times) > 1 else 0.0,
    )
    table.add_note(
        "paper: Decibel commits/checkouts are up to three orders of magnitude "
        "faster than git's, at <1% metadata overhead; git needs long repacks"
    )
    return table


def _run_git_plan(
    store: GitVersionedStore,
    plan,
    generator: DataGenerator,
    rng: random.Random,
    ops_per_commit: int,
    checkout_samples: int,
) -> list:
    """Replay a deep-strategy plan against a git-backed store and measure it."""
    from repro.bench.strategies import OperationKind

    store.init([], message="init")
    live_keys: dict[str, list[int]] = {"master": []}
    ops_since_commit: dict[str, int] = {"master": 0}
    commit_times: list[float] = []
    all_commits: list[str] = []
    for operation in plan:
        if operation.kind is OperationKind.CREATE_BRANCH:
            store.create_branch(operation.branch, from_branch=operation.parent)
            live_keys[operation.branch] = list(live_keys.get(operation.parent, []))
            ops_since_commit[operation.branch] = 0
            continue
        if operation.kind in (OperationKind.MERGE, OperationKind.RETIRE):
            continue  # the deep strategy has neither
        branch = operation.branch
        keys = live_keys.setdefault(branch, [])
        if operation.kind is OperationKind.UPDATE and keys:
            key = keys[rng.randrange(len(keys))]
            store.update(branch, generator.updated_record(key))
        else:
            record = generator.new_record()
            store.insert(branch, record)
            keys.append(record.key(generator.schema))
        ops_since_commit[branch] = ops_since_commit.get(branch, 0) + 1
        if ops_since_commit[branch] >= ops_per_commit:
            start = time.perf_counter()
            all_commits.append(store.commit(branch, message="interval"))
            commit_times.append(1000 * (time.perf_counter() - start))
            ops_since_commit[branch] = 0
    for branch, pending in sorted(ops_since_commit.items()):
        if pending:
            start = time.perf_counter()
            all_commits.append(store.commit(branch, message="final"))
            commit_times.append(1000 * (time.perf_counter() - start))
    data_mb = store.data_size_bytes() / (1024 * 1024)
    repack_report = store.repack()
    repo_mb = store.repo_size_bytes() / (1024 * 1024)
    sample = (
        all_commits
        if len(all_commits) <= checkout_samples
        else rng.sample(all_commits, checkout_samples)
    )
    checkout_times = []
    for commit_id in sample:
        start = time.perf_counter()
        store.checkout(commit_id)
        checkout_times.append(1000 * (time.perf_counter() - start))
    return [
        data_mb,
        repo_mb,
        repack_report.seconds,
        statistics.mean(commit_times) if commit_times else 0.0,
        statistics.pstdev(commit_times) if len(commit_times) > 1 else 0.0,
        statistics.mean(checkout_times) if checkout_times else 0.0,
        statistics.pstdev(checkout_times) if len(checkout_times) > 1 else 0.0,
    ]


# ---------------------------------------------------------------------------
# Ablations called out in DESIGN.md
# ---------------------------------------------------------------------------


def ablation_bitmap_orientation(
    workdir: str, scale: ExperimentScale | None = None
) -> ResultTable:
    """Branch- versus tuple-oriented bitmaps in the tuple-first engine."""
    scale = scale or ExperimentScale()
    table = ResultTable(
        "Ablation: tuple-first bitmap orientation (flat strategy)",
        ["orientation", "Q1 (s)", "Q4 (s)", "load (s)", "index KB"],
    )
    for orientation in (BitmapOrientation.BRANCH, BitmapOrientation.TUPLE):
        generator = DataGenerator(
            GeneratorConfig(num_columns=scale.num_columns, seed=scale.seed)
        )
        engine = TupleFirstEngine(
            os.path.join(workdir, f"ablation_orientation_{orientation.value}"),
            generator.schema,
            bitmap_orientation=orientation,
        )
        config = BenchmarkConfig(
            strategy="flat",
            engine="tuple-first",
            num_branches=scale.num_branches,
            total_operations=scale.total_operations,
            commit_interval=scale.commit_interval,
            num_columns=scale.num_columns,
            seed=scale.seed,
        )
        result = load_dataset(
            config,
            os.path.join(workdir, f"ablation_orientation_{orientation.value}_data"),
            engine=engine,
        )
        target = result.strategy.single_scan_branch(random.Random(0))
        # Best-of-three, as in figures 6/7: a single cold run at test scale
        # is easily washed out by scheduler and writeback noise.
        q1 = min(query1_single_scan(result.engine, target).seconds for _ in range(3))
        q4 = min(query4_head_scan(result.engine).seconds for _ in range(3))
        table.add_row(
            orientation.value,
            q1,
            q4,
            result.load_seconds,
            engine.bitmap_index_bytes() / 1024,
        )
    table.add_note(
        "paper Section 3.1: branch-oriented favours single-branch scans; "
        "tuple-oriented favours tuple-major multi-branch passes"
    )
    return table


def _median_query_seconds(runner, repetitions: int) -> float:
    runner()  # warm the buffer pool and compile caches once
    return statistics.median(runner() for _ in range(repetitions))


def vectorized_batching(
    workdir: str,
    scale: ExperimentScale | None = None,
    json_path: str | None = None,
) -> ResultTable:
    """Batched versus tuple-at-a-time execution (the PR 3 vectorized path).

    Part 1 is the acceptance microbenchmark: a single-branch
    scan-with-predicate over ``scale.scan_rows`` tuples in the tuple-first
    engine (built through the driver's flat strategy with one branch), run
    through the full plan/optimize/execute pipeline with the batched path on
    and off.  Part 2 runs the paper's Q1-Q4 per engine at benchmark scale in
    both modes.  All runs are warm-cache (the comparison targets interpreter
    overhead, not disk).  The microbench asserts the two modes return
    identical record sequences and Q1-Q4 assert equal row counts
    (record-level equivalence across modes is enforced by
    ``tests/test_batched_scans.py``); the medians are written to
    ``json_path``.
    """
    scale = scale or ExperimentScale()
    if json_path is None:
        # Default into the workdir so small-scale (smoke) runs cannot
        # clobber a checked-in acceptance artifact in the CWD; the
        # acceptance run passes an explicit path.
        json_path = os.path.join(workdir, "BENCH_pr3.json")
    table = ResultTable(
        "Vectorized batch execution: tuple-at-a-time vs batched (seconds)",
        ["workload", "engine", "tuple-at-a-time", "batched", "speedup"],
    )
    payload: dict = {
        "benchmark": "vectorized batch execution (PR 3)",
        "warm_cache": True,
        "notes": [
            "speedup = tuple-at-a-time vs batched mode on this code; "
            "speedup_vs_baseline (added by scripts/bench_pr3_baseline.py) = "
            "pre-PR code vs batched mode",
            "Q4 'speedup' below 1.0 reflects the row-counting harness: "
            "batch materialization buys nothing when downstream work is a "
            "count; Q4's engine-level wins appear in speedup_vs_baseline",
        ],
        "scale": {
            "scan_rows": scale.scan_rows,
            "total_operations": scale.total_operations,
            "num_branches": scale.num_branches,
            "commit_interval": scale.commit_interval,
            "num_columns": scale.num_columns,
            "seed": scale.seed,
        },
    }

    # -- part 1: the single-branch scan-with-predicate microbenchmark --------
    micro_config = BenchmarkConfig(
        strategy="flat",
        engine="tuple-first",
        num_branches=1,
        total_operations=scale.scan_rows,
        update_fraction=0.0,
        commit_interval=max(scale.scan_rows // 4, 1),
        num_columns=scale.num_columns,
        seed=scale.seed,
        # 64 KiB pages keep the 100k-row heap inside the default buffer
        # pool, so the warm comparison times the execution paths rather
        # than page eviction churn.
        page_size=64 * 1024,
    )
    micro = load_dataset(micro_config, os.path.join(workdir, "vectorized_micro"))
    engine = micro.engine
    branch = micro.strategy.single_scan_branch(random.Random(0))
    predicate = non_selective_predicate("c1", modulus=4)
    unbatched_records = list(engine.scan_branch(branch, predicate))
    batched_records = [
        record
        for batch in engine.scan_branch_batched(branch, predicate)
        for record in batch
    ]
    if unbatched_records != batched_records:
        raise BenchmarkError(
            "batched scan does not reproduce the tuple-at-a-time scan"
        )
    repetitions = 9
    slow = _median_query_seconds(
        lambda: query1_single_scan(
            engine, branch, predicate, cold=False, batched=False
        ).seconds,
        repetitions,
    )
    fast = _median_query_seconds(
        lambda: query1_single_scan(
            engine, branch, predicate, cold=False, batched=True
        ).seconds,
        repetitions,
    )
    speedup = slow / fast if fast > 0 else 0.0
    table.add_row(
        f"scan+predicate ({scale.scan_rows} rows)", "TF", slow, fast, speedup
    )
    payload["microbench"] = {
        "workload": "single-branch scan with predicate (Query 1 pipeline)",
        "engine": "tuple-first",
        "rows": scale.scan_rows,
        "rows_out": len(batched_records),
        "predicate": "c1 % 4 != 0",
        "repetitions": repetitions,
        "tuple_at_a_time_s": slow,
        "batched_s": fast,
        "speedup": round(speedup, 2),
        "identical_results": True,
    }

    # -- part 2: the four paper queries per engine ---------------------------
    payload["queries"] = {}
    for engine_kind in ENGINE_KINDS:
        result = _load(
            workdir,
            "flat",
            engine_kind,
            scale,
            label=f"vectorized_{engine_kind}",
        )
        loaded = result.engine
        q1_target = result.strategy.single_scan_branch(random.Random(0))
        pair_a, pair_b = result.strategy.multi_scan_pair(random.Random(1))
        runners = {
            "Q1": lambda batched: query1_single_scan(
                loaded, q1_target, cold=False, batched=batched
            ),
            "Q2": lambda batched: query2_positive_diff(
                loaded, pair_a, pair_b, cold=False, batched=batched
            ),
            "Q3": lambda batched: query3_join(
                loaded, pair_a, pair_b, cold=False, batched=batched
            ),
            "Q4": lambda batched: query4_head_scan(
                loaded, cold=False, batched=batched
            ),
        }
        per_engine: dict[str, dict] = {}
        for query_name, runner in runners.items():
            rows_slow = runner(False).rows
            rows_fast = runner(True).rows
            if rows_slow != rows_fast:
                raise BenchmarkError(
                    f"{query_name} row counts differ between modes: "
                    f"{rows_slow} vs {rows_fast}"
                )
            slow = _median_query_seconds(lambda: runner(False).seconds, 5)
            fast = _median_query_seconds(lambda: runner(True).seconds, 5)
            speedup = slow / fast if fast > 0 else 0.0
            table.add_row(
                query_name, ENGINE_LABELS[engine_kind], slow, fast, speedup
            )
            per_engine[query_name] = {
                "rows": rows_fast,
                "tuple_at_a_time_s": slow,
                "batched_s": fast,
                "speedup": round(speedup, 2),
            }
        payload["queries"][engine_kind] = per_engine
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    table.add_note(
        "the microbench asserts identical record sequences and Q1-Q4 assert "
        "equal row counts across modes (record-level equivalence is covered "
        f"by tests/test_batched_scans.py); medians written to {json_path}"
    )
    return table


def operators_batching(
    workdir: str,
    scale: ExperimentScale | None = None,
    json_path: str | None = None,
) -> ResultTable:
    """Whole-tree batch execution (PR 4): streaming vs batched medians.

    Part 1 measures the two operator-heavy workloads the batch pipeline now
    covers end to end, on ``scale.scan_rows`` rows in the tuple-first engine:
    a GROUP BY (grouped column extraction through ``GroupAggregate``) and a
    primary-key join of two branches (batch build/probe ``HashJoin``).
    Part 2 runs the paper's Q1-Q4 per engine at benchmark scale in both
    modes; Q4's batched mode rides the count-only path.  All runs are
    warm-cache.  Row counts are asserted equal across modes (record-level
    equivalence is enforced by ``tests/test_batched_scans.py``); the medians
    are written to ``json_path`` (``BENCH_pr4.json``).
    """
    scale = scale or ExperimentScale()
    if json_path is None:
        # Default into the workdir so small-scale (smoke) runs cannot
        # clobber the checked-in acceptance artifact in the CWD.
        json_path = os.path.join(workdir, "BENCH_pr4.json")
    table = ResultTable(
        "Whole-tree batch execution: streaming vs batched (seconds)",
        ["workload", "engine", "streaming", "batched", "speedup"],
    )
    payload: dict = {
        "benchmark": "whole-tree batch execution (PR 4)",
        "warm_cache": True,
        "notes": [
            "speedup = streaming (tuple-at-a-time) vs batched mode on this "
            "code; both modes run the same plan through the full "
            "plan/optimize/execute pipeline",
            "Q4 batched uses the count-only path (batch lengths off the "
            "annotated page scans), fixing the batched-count regression "
            "recorded in BENCH_pr3.json",
        ],
        "scale": {
            "scan_rows": scale.scan_rows,
            "total_operations": scale.total_operations,
            "num_branches": scale.num_branches,
            "commit_interval": scale.commit_interval,
            "num_columns": scale.num_columns,
            "seed": scale.seed,
        },
        "workloads": {},
        "queries": {},
    }
    repetitions = 7

    def measure(label, engine_label, runner, reps=repetitions) -> dict:
        rows_slow = runner(False).rows
        rows_fast = runner(True).rows
        if rows_slow != rows_fast:
            raise BenchmarkError(
                f"{label} row counts differ between modes: "
                f"{rows_slow} vs {rows_fast}"
            )
        slow = _median_query_seconds(lambda: runner(False).seconds, reps)
        fast = _median_query_seconds(lambda: runner(True).seconds, reps)
        speedup = slow / fast if fast > 0 else 0.0
        table.add_row(label, engine_label, slow, fast, speedup)
        return {
            "rows": rows_fast,
            "streaming_s": slow,
            "batched_s": fast,
            "speedup": round(speedup, 2),
        }

    # -- part 1: GROUP BY and join on scan_rows rows (tuple-first) -----------
    workload_config = BenchmarkConfig(
        strategy="flat",
        engine="tuple-first",
        num_branches=2,
        total_operations=scale.scan_rows,
        update_fraction=0.0,
        commit_interval=max(scale.scan_rows // 4, 1),
        num_columns=scale.num_columns,
        seed=scale.seed,
        # 64 KiB pages, as in the PR 3 microbench: the comparison targets
        # execution-path overhead, not page eviction churn.
        page_size=64 * 1024,
    )
    loaded = load_dataset(workload_config, os.path.join(workdir, "operators_data"))
    engine = loaded.engine
    branch_a, branch_b = loaded.strategy.multi_scan_pair(random.Random(1))
    group_branch = loaded.strategy.single_scan_branch(random.Random(0))
    payload["workloads"]["group_by"] = dict(
        measure(
            f"GROUP BY ({scale.scan_rows} ops)",
            "TF",
            lambda batched: query5_group_by(
                engine, group_branch, cold=False, batched=batched
            ),
            reps=5,
        ),
        engine="tuple-first",
        query="SELECT c1, count(*), sum(c2) FROM R GROUP BY c1",
    )
    payload["workloads"]["join"] = dict(
        measure(
            f"join ({scale.scan_rows} ops)",
            "TF",
            lambda batched: query3_join(
                engine, branch_a, branch_b, cold=False, batched=batched
            ),
            reps=5,
        ),
        engine="tuple-first",
        query="primary-key hash join of two branch heads, predicate on one side",
    )

    # -- part 2: the four paper queries per engine ---------------------------
    for engine_kind in ENGINE_KINDS:
        result = _load(
            workdir,
            "flat",
            engine_kind,
            scale,
            label=f"operators_{engine_kind}",
        )
        per_engine_db = result.engine
        q1_target = result.strategy.single_scan_branch(random.Random(0))
        pair_a, pair_b = result.strategy.multi_scan_pair(random.Random(1))
        runners = {
            "Q1": lambda batched: query1_single_scan(
                per_engine_db, q1_target, cold=False, batched=batched
            ),
            "Q2": lambda batched: query2_positive_diff(
                per_engine_db, pair_a, pair_b, cold=False, batched=batched
            ),
            "Q3": lambda batched: query3_join(
                per_engine_db, pair_a, pair_b, cold=False, batched=batched
            ),
            "Q4": lambda batched: query4_head_scan(
                per_engine_db, cold=False, batched=batched
            ),
        }
        payload["queries"][engine_kind] = {
            query_name: measure(query_name, ENGINE_LABELS[engine_kind], runner, reps=5)
            for query_name, runner in runners.items()
        }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    table.add_note(
        "row counts asserted equal across modes (record-level equivalence is "
        f"covered by tests/test_batched_scans.py); medians written to {json_path}"
    )
    return table


def sort_topn(
    workdir: str,
    scale: ExperimentScale | None = None,
    json_path: str | None = None,
) -> ResultTable:
    """Memory-bounded sort and Top-N (PR 5): full sort vs bounded heap.

    Part 1 measures, on ``scale.scan_rows`` rows in the tuple-first engine:

    * the full ``ORDER BY`` (run-based sort) in both execution modes;
    * ``ORDER BY ... LIMIT k`` -- the optimizer's Top-N rewrite -- against
      the full sort it replaces, asserting the Top-N rows equal the full
      sort's prefix and that EXPLAIN-style plan rendering carries the
      ``[top-n k=...]`` tag;
    * the spill path: the same sort under a byte budget far smaller than the
      input, asserting byte-identical rows to the in-memory sort.

    Part 2 runs the full-sort-vs-Top-N comparison per storage engine at
    benchmark scale.  All runs are warm-cache; medians are written to
    ``json_path`` (``BENCH_pr5.json``).
    """
    from repro.query.logical import Limit, Sort, VersionScan, render_plan
    from repro.query.optimizer import optimize, rewrite_labels
    from repro.query.physical import build_physical, execute_plan

    scale = scale or ExperimentScale()
    if json_path is None:
        # Default into the workdir so small-scale (smoke) runs cannot
        # clobber the checked-in acceptance artifact in the CWD.
        json_path = os.path.join(workdir, "BENCH_pr5.json")
    table = ResultTable(
        "Memory-bounded sort and Top-N: full sort vs bounded alternatives "
        "(seconds)",
        ["workload", "engine", "baseline", "measured", "speedup"],
    )
    top_k = 10
    payload: dict = {
        "benchmark": "memory-bounded sort and Top-N (PR 5)",
        "warm_cache": True,
        "notes": [
            "top_n speedup = full ORDER BY vs ORDER BY ... LIMIT k through "
            "the optimizer's bounded-heap TopN rewrite, batched mode",
            "order_by_spill is informational: the byte budget is set far "
            "below the input so the run-merge spill path is exercised; "
            "rows are asserted byte-identical to the in-memory sort",
        ],
        "scale": {
            "scan_rows": scale.scan_rows,
            "total_operations": scale.total_operations,
            "num_branches": scale.num_branches,
            "commit_interval": scale.commit_interval,
            "num_columns": scale.num_columns,
            "seed": scale.seed,
        },
        "top_k": top_k,
        "workloads": {},
        "queries": {},
    }

    # -- part 1: ORDER BY / Top-N / spill on scan_rows rows (tuple-first) ----
    micro_config = BenchmarkConfig(
        strategy="flat",
        engine="tuple-first",
        num_branches=1,
        total_operations=scale.scan_rows,
        update_fraction=0.0,
        commit_interval=max(scale.scan_rows // 4, 1),
        num_columns=scale.num_columns,
        seed=scale.seed,
        # 64 KiB pages, as in the PR 3/4 microbenches: the comparison targets
        # execution-path overhead, not page eviction churn.
        page_size=64 * 1024,
    )
    micro = load_dataset(micro_config, os.path.join(workdir, "sort_topn_data"))
    engine = micro.engine
    branch = micro.strategy.single_scan_branch(random.Random(0))
    repetitions = 5

    def order_plan(limit=None, budget_bytes=None):
        plan = Sort(
            VersionScan(engine, BENCH_RELATION, BENCH_RELATION, "branch", branch, None),
            [("c2", True), (engine.schema.primary_key, False)],
            budget_bytes=budget_bytes,
        )
        return Limit(plan, limit) if limit is not None else plan

    # The Top-N rewrite must be visible in plan output, never silent.
    limited = optimize(order_plan(limit=top_k))
    explained = render_plan(limited, rewrite_labels(limited))
    if f"top-n k={top_k}" not in explained:
        raise BenchmarkError(
            f"Limit-over-Sort did not rewrite to TopN:\n{explained}"
        )
    payload["explain"] = explained

    full_rows = execute_plan(optimize(order_plan())).rows
    topn_rows = execute_plan(optimize(order_plan(limit=top_k))).rows
    if topn_rows != full_rows[:top_k]:
        raise BenchmarkError("TopN rows differ from the full sort's prefix")

    full_streaming = _median_query_seconds(
        lambda: query6_order_by(engine, branch, cold=False, batched=False).seconds,
        repetitions,
    )
    full_batched = _median_query_seconds(
        lambda: query6_order_by(engine, branch, cold=False, batched=True).seconds,
        repetitions,
    )
    speedup = full_streaming / full_batched if full_batched > 0 else 0.0
    table.add_row(
        f"ORDER BY ({scale.scan_rows} rows), streaming vs batched",
        "TF",
        full_streaming,
        full_batched,
        speedup,
    )
    payload["workloads"]["order_by_full"] = {
        "rows": len(full_rows),
        "streaming_s": full_streaming,
        "batched_s": full_batched,
        "speedup": round(speedup, 2),
    }

    topn_seconds = _median_query_seconds(
        lambda: query6_order_by(
            engine, branch, limit=top_k, cold=False, batched=True
        ).seconds,
        repetitions,
    )
    speedup = full_batched / topn_seconds if topn_seconds > 0 else 0.0
    table.add_row(
        f"ORDER BY LIMIT {top_k} (Top-N rewrite)",
        "TF",
        full_batched,
        topn_seconds,
        speedup,
    )
    payload["workloads"]["top_n"] = {
        "k": top_k,
        "rows": len(topn_rows),
        "full_sort_s": full_batched,
        "topn_s": topn_seconds,
        "speedup": round(speedup, 2),
    }

    # Spill path: budget far below the input, rows byte-identical.
    spill_budget = 256 * 1024
    spill_operator = build_physical(optimize(order_plan(budget_bytes=spill_budget)))
    spilled_rows = [
        record.values
        for batch in spill_operator.batches()
        for record in batch
    ]
    if spilled_rows != full_rows:
        raise BenchmarkError(
            "spilled sort does not reproduce the in-memory sort"
        )
    spilled_runs = spill_operator.spilled_runs
    spill_seconds = _median_query_seconds(
        lambda: query6_order_by(
            engine, branch, budget_bytes=spill_budget, cold=False, batched=True
        ).seconds,
        repetitions,
    )
    table.add_row(
        f"ORDER BY with {spill_budget // 1024} KiB budget "
        f"({spilled_runs} spilled runs)",
        "TF",
        full_batched,
        spill_seconds,
        full_batched / spill_seconds if spill_seconds > 0 else 0.0,
    )
    payload["workloads"]["order_by_spill"] = {
        "budget_bytes": spill_budget,
        "spilled_runs": spilled_runs,
        "in_memory_s": full_batched,
        "spill_s": spill_seconds,
        "identical_rows": True,
    }

    # -- part 2: full sort vs Top-N per engine at benchmark scale ------------
    for engine_kind in ENGINE_KINDS:
        result = _load(
            workdir,
            "flat",
            engine_kind,
            scale,
            label=f"sort_topn_{engine_kind}",
        )
        loaded = result.engine
        target = result.strategy.single_scan_branch(random.Random(0))
        full = _median_query_seconds(
            lambda: query6_order_by(
                loaded, target, cold=False, batched=True
            ).seconds,
            repetitions,
        )
        topn = _median_query_seconds(
            lambda: query6_order_by(
                loaded, target, limit=top_k, cold=False, batched=True
            ).seconds,
            repetitions,
        )
        speedup = full / topn if topn > 0 else 0.0
        table.add_row("Q6 full vs Top-N", ENGINE_LABELS[engine_kind], full, topn, speedup)
        payload["queries"][engine_kind] = {
            "topn": {
                "k": top_k,
                "full_sort_s": full,
                "topn_s": topn,
                "speedup": round(speedup, 2),
            }
        }
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    table.add_note(
        "Top-N rows asserted equal to the full sort's prefix and spilled "
        "sorts asserted byte-identical to in-memory sorts; medians written "
        f"to {json_path}"
    )
    return table


def columnar_execution(
    workdir: str,
    scale: ExperimentScale | None = None,
    json_path: str | None = None,
) -> ResultTable:
    """Columnar batch execution (PR 7): typed column arrays end to end.

    Runs four representative workloads -- a predicate scan, a GROUP BY, a
    primary-key join and a Top-N -- over ``scale.scan_rows`` rows on each of
    the three storage engines, in all three execution modes: streaming
    (tuple iterators), row-batched and columnar.  All runs are **cold-cache**
    (``drop_caches`` before every execution): the columnar win is skipping
    per-row :class:`~repro.core.record.Record` construction at page decode,
    which only shows when pages are actually decoded.  Row counts are
    asserted equal across the three modes (full result equivalence is
    enforced by ``tests/test_columnar_pipeline.py``); best-of-three
    latencies are written to ``json_path`` (``BENCH_pr7.json``) with
    ``speedup`` = batched / columnar.
    """
    scale = scale or ExperimentScale()
    if json_path is None:
        # Default into the workdir so small-scale (smoke) runs cannot
        # clobber the checked-in acceptance artifact in the CWD.
        json_path = os.path.join(workdir, "BENCH_pr7.json")
    table = ResultTable(
        "Columnar execution: streaming vs row-batched vs columnar (seconds)",
        ["workload", "engine", "streaming", "batched", "columnar", "speedup"],
    )
    top_k = 10
    modes = ("streaming", "batched", "columnar")
    payload: dict = {
        "benchmark": "columnar batch execution (PR 7)",
        "cold_cache": True,
        "notes": [
            "speedup = row-batched vs columnar mode on this code; all three "
            "modes run the same plan through the full "
            "plan/optimize/execute pipeline",
            "runs are cold-cache (drop_caches before every execution): the "
            "columnar path decodes pages straight into typed column arrays, "
            "so its win is largest when page decode is actually on the path",
        ],
        "scale": {
            "scan_rows": scale.scan_rows,
            "total_operations": scale.total_operations,
            "num_branches": scale.num_branches,
            "commit_interval": scale.commit_interval,
            "num_columns": scale.num_columns,
            "seed": scale.seed,
        },
        "top_k": top_k,
        "queries": {},
    }
    repetitions = 3
    predicate = non_selective_predicate("c1", modulus=4)
    for engine_kind in ENGINE_KINDS:
        config = BenchmarkConfig(
            strategy="flat",
            engine=engine_kind,
            num_branches=2,
            total_operations=scale.scan_rows,
            update_fraction=0.0,
            commit_interval=max(scale.scan_rows // 4, 1),
            num_columns=scale.num_columns,
            seed=scale.seed,
            # 64 KiB pages, as in the PR 3/4/5 microbenches: fewer, larger
            # batch decodes per scan, the shape the paper's 4 MB pages imply.
            page_size=64 * 1024,
        )
        result = load_dataset(
            config, os.path.join(workdir, f"columnar_{engine_kind}")
        )
        loaded = result.engine
        branch = result.strategy.single_scan_branch(random.Random(0))
        pair_a, pair_b = result.strategy.multi_scan_pair(random.Random(1))
        runners = {
            "predicate_scan": lambda mode: query1_single_scan(
                loaded, branch, predicate, cold=True, mode=mode
            ),
            "group_by": lambda mode: query5_group_by(
                loaded, branch, cold=True, mode=mode
            ),
            "join": lambda mode: query3_join(
                loaded, pair_a, pair_b, cold=True, mode=mode
            ),
            "top_n": lambda mode: query6_order_by(
                loaded, branch, limit=top_k, cold=True, mode=mode
            ),
        }
        per_engine: dict[str, dict] = {}
        for workload, runner in runners.items():
            row_counts = {mode: runner(mode).rows for mode in modes}
            if len(set(row_counts.values())) != 1:
                raise BenchmarkError(
                    f"{engine_kind}/{workload} row counts differ across "
                    f"modes: {row_counts}"
                )
            # Best-of-three cold runs, as in figures 6/7: a single cold run
            # is easily washed out by scheduler and writeback noise.
            seconds = {
                mode: min(runner(mode).seconds for _ in range(repetitions))
                for mode in modes
            }
            speedup = (
                seconds["batched"] / seconds["columnar"]
                if seconds["columnar"] > 0
                else 0.0
            )
            table.add_row(
                workload,
                ENGINE_LABELS[engine_kind],
                seconds["streaming"],
                seconds["batched"],
                seconds["columnar"],
                speedup,
            )
            per_engine[workload] = {
                "rows": row_counts["columnar"],
                "streaming_s": seconds["streaming"],
                "batched_s": seconds["batched"],
                "columnar_s": seconds["columnar"],
                "speedup": round(speedup, 2),
            }
        payload["queries"][engine_kind] = per_engine
    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    table.add_note(
        "row counts asserted equal across the three modes (full result "
        "equivalence is covered by tests/test_columnar_pipeline.py); "
        f"best-of-{repetitions} cold latencies written to {json_path}"
    )
    return table


def ablation_commit_layers(
    workdir: str,
    scale: ExperimentScale | None = None,
    checkout_samples: int = 30,
) -> ResultTable:
    """Two-layer composite commit deltas versus a flat delta chain."""
    scale = scale or ExperimentScale()
    table = ResultTable(
        "Ablation: commit-history composite layer (deep strategy, tuple-first)",
        ["layer interval", "avg checkout (ms)", "history KB"],
    )
    for layer_interval in (0, 4, 8, 16):
        generator = DataGenerator(
            GeneratorConfig(num_columns=scale.num_columns, seed=scale.seed)
        )
        engine = TupleFirstEngine(
            os.path.join(workdir, f"ablation_layers_{layer_interval}"),
            generator.schema,
            commit_layer_interval=layer_interval,
        )
        config = BenchmarkConfig(
            strategy="deep",
            engine="tuple-first",
            num_branches=scale.num_branches,
            total_operations=scale.total_operations,
            commit_interval=max(scale.commit_interval // 4, 50),
            num_columns=scale.num_columns,
            seed=scale.seed,
        )
        result = load_dataset(
            config,
            os.path.join(workdir, f"ablation_layers_{layer_interval}_data"),
            engine=engine,
        )
        rng = random.Random(scale.seed)
        commits = [c for c in result.commit_ids if engine.graph.has_commit(c)]
        sample = commits if len(commits) <= checkout_samples else rng.sample(
            commits, checkout_samples
        )
        durations = []
        for commit_id in sample:
            start = time.perf_counter()
            engine.checkout_commit_bitmap(commit_id)
            durations.append(1000 * (time.perf_counter() - start))
        table.add_row(
            layer_interval,
            statistics.mean(durations) if durations else 0.0,
            engine.commit_metadata_bytes() / 1024,
        )
    table.add_note(
        "paper Section 3.2: composite deltas trade a little space for shorter "
        "delta chains at checkout"
    )
    return table


# ---------------------------------------------------------------------------
# Recovery (PR 8): open-to-first-query-result, clean open vs crash recovery
# ---------------------------------------------------------------------------


def recovery_open(
    workdir: str,
    scale: ExperimentScale | None = None,
    json_path: str | None = None,
) -> ResultTable:
    """Time ``Decibel.open`` to first query result, clean vs after a crash.

    For each engine a dataset of ``scale.scan_rows`` rows is committed and
    the database closed cleanly.  The *clean* measurement times a fresh
    :meth:`Decibel.open` plus one ``COUNT(*)`` query.  The *recovery*
    measurement first kills a transaction mid-commit with the
    fault-injection harness (after its WAL commit point but before the
    version graph persisted, so reopen must redo it), then times the same
    open-plus-query.  The ratio records how much a crash inflates time to
    first result; ``scripts/check_bench_regression.py`` gates it as a
    ceiling so the recovery path cannot silently become disproportionately
    expensive.
    """
    from repro.core.record import Record
    from repro.core.schema import Schema
    from repro.db.database import Decibel
    from repro.testing.faults import FaultSchedule, InjectedCrash, inject

    scale = scale or ExperimentScale()
    json_path = json_path or os.path.join(workdir, "BENCH_pr8.json")
    rows = scale.scan_rows
    columns = max(scale.num_columns, 2)
    schema = Schema.of_ints(columns)
    repetitions = 3
    count_sql = "SELECT COUNT(*) FROM r WHERE r.Version = 'master'"
    table = ResultTable(
        title=(
            f"Recovery: open to first query result on {rows} rows "
            f"(medians of {repetitions})"
        ),
        columns=["engine", "clean open (s)", "recovery open (s)", "ratio"],
    )
    payload: dict = {"experiment": "recovery", "rows": rows, "workloads": {}}

    def record_for(key: int) -> Record:
        return Record(tuple([key] + [key % 97] * (columns - 1)))

    for engine_kind in ("tuple-first", "version-first", "hybrid"):
        directory = os.path.join(workdir, f"recovery_{engine_kind}")
        db = Decibel(directory, engine=engine_kind)
        relation = db.create_relation("r", schema)
        relation.init(record_for(key) for key in range(rows))
        db.close()

        def timed_open(expected_count: int) -> float:
            start = time.perf_counter()
            opened = Decibel.open(directory, engine=engine_kind)
            count = opened.query(count_sql).rows[0][0]
            elapsed = time.perf_counter() - start
            if count != expected_count:
                raise BenchmarkError(
                    f"{engine_kind}: expected {expected_count} rows after "
                    f"open, got {count}"
                )
            opened.close()
            return elapsed

        clean_times = [timed_open(rows) for _ in range(repetitions)]

        def crash_once(key: int) -> None:
            opened = Decibel.open(directory, engine=engine_kind)
            txn = opened.transactions("r").begin()
            txn.insert("master", record_for(key))
            try:
                with inject(FaultSchedule("graph-persist-mid-write")):
                    txn.commit("bench crash victim")
            except InjectedCrash:
                return
            raise BenchmarkError(
                f"{engine_kind}: graph-persist-mid-write never fired"
            )

        recovery_times = []
        for repetition in range(repetitions):
            crash_once(rows + repetition)
            # The crashed transaction passed its commit point, so recovery
            # redoes it: each repetition adds exactly one row.
            recovery_times.append(timed_open(rows + repetition + 1))

        clean_median = statistics.median(clean_times)
        recovery_median = statistics.median(recovery_times)
        ratio = recovery_median / clean_median if clean_median > 0 else 0.0
        table.add_row(engine_kind, clean_median, recovery_median, ratio)
        payload["workloads"][engine_kind] = {
            "rows": rows,
            "clean_open_s": clean_median,
            "recovery_open_s": recovery_median,
            "ratio": round(ratio, 2),
        }

    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    table.add_note(
        "recovery opens replay the WAL, redo one committed-but-unapplied "
        f"transaction, and re-verify consistency; medians written to {json_path}"
    )
    return table


def serving_concurrency(
    workdir: str,
    scale: ExperimentScale | None = None,
    json_path: str | None = None,
) -> ResultTable:
    """Serving-layer latency and throughput at 1 / 4 / 16 concurrent clients.

    A hybrid-engine dataset of ``scale.scan_rows`` rows is served by a
    :class:`~repro.server.server.DecibelServer` on a background thread; each
    client session runs a read-heavy mix (80% snapshot ``COUNT(*)`` queries,
    20% insert+group-commit batches on its own branch) and records a
    latency per request via ``time.perf_counter``.  Reported per client
    count: p50/p90/p99 latency, aggregate throughput, and the tail ratio
    ``p99 / p50`` -- the number admission control and group commit exist
    to keep flat as concurrency grows.  The ratio is gated as a *ceiling*
    by ``scripts/check_bench_regression.py``: a serving-layer change that
    makes tails blow up under concurrency fails CI even if medians look
    fine.
    """
    from repro.core.record import Record
    from repro.core.schema import Schema
    from repro.db.database import Decibel
    from repro.server import DecibelClient, ServerConfig, ServerThread

    scale = scale or ExperimentScale()
    json_path = json_path or os.path.join(workdir, "BENCH_pr9.json")
    rows = scale.scan_rows
    requests_per_client = 40
    client_counts = (1, 4, 16)
    count_sql = "SELECT COUNT(*) FROM r WHERE r.Version = 'master'"
    schema = Schema.of_ints(max(scale.num_columns, 2))
    columns = max(scale.num_columns, 2)

    table = ResultTable(
        title=(
            f"Serving layer: {requests_per_client} requests/client over "
            f"{rows} rows (hybrid engine, read-heavy mix)"
        ),
        columns=[
            "clients",
            "p50 (s)",
            "p90 (s)",
            "p99 (s)",
            "throughput (req/s)",
            "ratio",
        ],
    )
    payload: dict = {
        "experiment": "serving-concurrency",
        "rows": rows,
        "requests_per_client": requests_per_client,
        "workloads": {},
    }

    def percentile(sorted_values: list[float], q: float) -> float:
        index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
        return sorted_values[index]

    for clients in client_counts:
        directory = os.path.join(workdir, f"serving_{clients}")
        db = Decibel(directory, engine="hybrid")
        relation = db.create_relation("r", schema)
        relation.init(
            Record(tuple([key] + [key % 97] * (columns - 1)))
            for key in range(rows)
        )
        config = ServerConfig(
            max_sessions=clients + 4,
            max_queue_depth=4 * clients + 8,
            worker_threads=min(8, clients + 2),
            default_deadline_s=60.0,
            max_deadline_s=120.0,
        )
        server = ServerThread(db, config, own_db=True)
        host, port = server.start()
        with DecibelClient(host, port) as admin:
            admin.connect()
            for worker in range(clients):
                admin.create_branch("r", f"w{worker}", from_branch="master")

        latencies_per_client: list[list[float]] = [[] for _ in range(clients)]
        failures: list[BaseException] = []
        import threading

        def run_client(worker: int) -> None:
            try:
                with DecibelClient(
                    host, port, default_deadline_s=60.0
                ) as client:
                    client.connect()
                    client.use_branch(f"w{worker}")
                    key_base = 10_000_000 + worker * requests_per_client
                    recorded = latencies_per_client[worker]
                    for request in range(requests_per_client):
                        start = time.perf_counter()
                        if request % 5 == 4:
                            client.insert(
                                "r",
                                [key_base + request]
                                + [request % 97] * (columns - 1),
                            )
                            client.commit("bench batch")
                        else:
                            result = client.query(count_sql)
                            if result.rows[0][0] < rows:
                                raise BenchmarkError(
                                    f"snapshot count shrank: {result.rows}"
                                )
                        recorded.append(time.perf_counter() - start)
            except BaseException as exc:  # noqa: BLE001 - reported below
                failures.append(exc)

        wall_start = time.perf_counter()
        threads = [
            threading.Thread(target=run_client, args=(worker,))
            for worker in range(clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - wall_start
        server.stop()
        if failures:
            raise BenchmarkError(
                f"{clients}-client run failed: {failures[0]!r}"
            )
        latencies = sorted(
            value for recorded in latencies_per_client for value in recorded
        )
        total_requests = len(latencies)
        p50 = percentile(latencies, 0.50)
        p90 = percentile(latencies, 0.90)
        p99 = percentile(latencies, 0.99)
        throughput = total_requests / wall if wall > 0 else 0.0
        ratio = p99 / p50 if p50 > 0 else 0.0
        table.add_row(str(clients), p50, p90, p99, throughput, ratio)
        payload["workloads"][f"clients_{clients}"] = {
            "clients": clients,
            "requests": total_requests,
            "p50_s": p50,
            "p90_s": p90,
            "p99_s": p99,
            "throughput_rps": round(throughput, 1),
            "ratio": round(ratio, 2),
        }

    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    table.add_note(
        "each session: 80% snapshot COUNT(*) reads, 20% insert+commit on a "
        "private branch (group commit); the gated ratio is p99/p50 tail "
        f"amplification; percentiles written to {json_path}"
    )
    return table


def index_subsystem(
    workdir: str,
    scale: ExperimentScale | None = None,
    json_path: str | None = None,
) -> ResultTable:
    """Versioned index subsystem (PR 10): persisted pk index + index scans.

    Part 1 times cold open-to-first-result -- ``Decibel.open`` plus one
    primary-key point query -- on ``scale.scan_rows`` rows with the
    persisted pk index present versus removed (forcing the lazy full-scan
    rebuild the pre-index code always paid).  Part 2 compares a selective
    (<=1%) secondary-index point query and a range query against the
    columnar full scan the optimizer would otherwise run, toggled via
    ``set_index_selection`` so both arms execute the same SQL through the
    same pipeline.  Results are asserted identical between arms; medians
    are written to ``json_path`` (``BENCH_pr10.json``) and gated as ratio
    floors by ``scripts/check_bench_regression.py``.
    """
    import shutil

    from repro.core.record import Record
    from repro.core.schema import Schema
    from repro.db.database import Decibel
    from repro.query.executor import explain_query
    from repro.query.optimizer import set_index_selection

    scale = scale or ExperimentScale()
    json_path = json_path or os.path.join(workdir, "BENCH_pr10.json")
    rows = scale.scan_rows
    columns = max(scale.num_columns, 3)
    schema = Schema.of_ints(columns)
    #: Distinct c1 values: a point predicate matches ~rows/distinct rows
    #: (0.1% at the 100k acceptance scale), well under the optimizer's
    #: selectivity threshold.
    distinct = max(2, min(1000, rows // 100))
    repetitions = 5
    point_key = rows // 2
    pk_sql = (
        f"SELECT * FROM r WHERE r.Version = 'master' AND r.id = {point_key}"
    )
    point_sql = "SELECT * FROM r WHERE r.Version = 'master' AND r.c1 = 7"
    range_sql = "SELECT * FROM r WHERE r.Version = 'master' AND r.c1 < 2"

    table = ResultTable(
        title=f"Index subsystem: persisted pk index and index scans ({rows} rows)",
        columns=["workload", "baseline (s)", "indexed (s)", "speedup"],
    )
    payload: dict = {
        "experiment": "index-subsystem",
        "rows": rows,
        "distinct_c1": distinct,
        "notes": [
            "cold_open speedup = lazy full-scan pk rebuild vs loading the "
            "persisted snapshot chain, each timed as open + one pk point "
            "query (time to first result)",
            "point/range speedups toggle set_index_selection so both arms "
            "run the same SQL through the same plan/optimize/execute "
            "pipeline; results asserted identical",
        ],
        "workloads": {},
    }

    def record_for(key: int) -> Record:
        return Record(
            tuple([key, key % distinct] + [key % 97] * (columns - 2))
        )

    directory = os.path.join(workdir, "index_subsystem")
    db = Decibel(directory, engine="hybrid")
    relation = db.create_relation("r", schema, indexes=("c1",))
    relation.init(record_for(key) for key in range(rows))
    db.close()  # clean close persists the pk snapshot for master

    # -- part 1: cold open to first result, persisted index vs rebuild -------
    def timed_cold_open() -> float:
        start = time.perf_counter()
        opened = Decibel.open(directory, engine="hybrid")
        result = opened.query(pk_sql)
        elapsed = time.perf_counter() - start
        if len(result.rows) != 1 or result.rows[0][0] != point_key:
            raise BenchmarkError(
                f"pk point query returned {result.rows!r}, "
                f"expected one row with id {point_key}"
            )
        opened.close()
        return elapsed

    indexed_open = statistics.median(
        timed_cold_open() for _ in range(repetitions)
    )
    index_dir = os.path.join(directory, "r", "index")
    rebuild_times = []
    for _ in range(repetitions):
        if os.path.isdir(index_dir):
            shutil.rmtree(index_dir)
        rebuild_times.append(timed_cold_open())
    rebuild_open = statistics.median(rebuild_times)
    speedup = rebuild_open / indexed_open if indexed_open > 0 else 0.0
    table.add_row("cold open + pk point query", rebuild_open, indexed_open, speedup)
    payload["workloads"]["cold_open"] = {
        "rows": rows,
        "rebuild_open_s": rebuild_open,
        "indexed_open_s": indexed_open,
        "speedup": round(speedup, 2),
    }

    # -- part 2: selective point + range queries vs columnar full scan -------
    db = Decibel.open(directory, engine="hybrid")
    explained = explain_query(db, point_sql)
    if "[index]" not in explained:
        raise BenchmarkError(
            f"selective point query did not plan an index scan:\n{explained}"
        )

    def measured_arm(sql: str, indexed: bool) -> tuple[float, list]:
        set_index_selection(indexed)
        try:
            rows_out = sorted(db.query(sql).rows)  # warm caches + build index
            seconds = statistics.median(
                _timed_query(db, sql) for _ in range(repetitions)
            )
        finally:
            set_index_selection(True)
        return seconds, rows_out

    def _timed_query(database, sql: str) -> float:
        start = time.perf_counter()
        database.query(sql)
        return time.perf_counter() - start

    for name, label, sql in (
        ("point_query", "point c1 = 7 (<=1% selective)", point_sql),
        ("range_query", "range c1 < 2", range_sql),
    ):
        full_seconds, full_rows = measured_arm(sql, indexed=False)
        index_seconds, index_rows = measured_arm(sql, indexed=True)
        if full_rows != index_rows:
            raise BenchmarkError(
                f"{name}: index scan rows differ from the full scan "
                f"({len(index_rows)} vs {len(full_rows)})"
            )
        speedup = full_seconds / index_seconds if index_seconds > 0 else 0.0
        table.add_row(label, full_seconds, index_seconds, speedup)
        payload["workloads"][name] = {
            "rows": rows,
            "matching": len(index_rows),
            "full_scan_s": full_seconds,
            "index_scan_s": index_seconds,
            "speedup": round(speedup, 2),
        }
    db.close()

    with open(json_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    table.add_note(
        "cold_open compares loading the persisted pk snapshot against the "
        "lazy full-scan rebuild; point/range results asserted identical "
        f"between arms; medians written to {json_path}"
    )
    return table
