"""The static-analysis gate: the real source tree passes its own checks.

The per-rule tests (`test_lint_rules.py`) prove each rule *can* fire; this
module proves the tree is *currently* clean, which is what lets CI fail on
any new violation with no warning-only mode.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"


class TestLintGate:
    def test_source_tree_is_lint_clean(self):
        from repro.analysis.lint import run_lint

        violations = run_lint(SRC)
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_cli_exits_zero_on_clean_tree(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "lint.py")],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_cli_exits_nonzero_on_violation(self, tmp_path):
        # A scratch tree with one seeded violation must fail the CLI.
        package = tmp_path / "repro"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "bad.py").write_text("def f(acc=[]):\n    return acc\n")
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "lint.py"),
                "--root",
                str(tmp_path),
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 1
        assert "REPRO003" in proc.stdout

    def test_cli_disable_flag(self, tmp_path):
        package = tmp_path / "repro"
        package.mkdir()
        (package / "__init__.py").write_text("")
        (package / "bad.py").write_text("def f(acc=[]):\n    return acc\n")
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "lint.py"),
                "--root",
                str(tmp_path),
                "--disable",
                "REPRO003",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0

    def test_cli_lists_rules(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "lint.py"),
                "--list",
            ],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        for rule_id in (
            "REPRO001",
            "REPRO002",
            "REPRO003",
            "REPRO004",
            "REPRO005",
            "REPRO006",
            "REPRO007",
        ):
            assert rule_id in proc.stdout


class TestTypedPackaging:
    def test_py_typed_marker_ships(self):
        assert (SRC / "repro" / "py.typed").is_file()

    def test_pyproject_declares_tool_config(self):
        text = (REPO_ROOT / "pyproject.toml").read_text()
        assert "[tool.repro-lint]" in text
        assert "[tool.mypy]" in text
        assert 'repro = ["py.typed"]' in text


class TestMypyGate:
    """Typing gate; runs only where mypy is installed (CI installs it)."""

    def test_mypy_clean_on_strict_packages(self):
        pytest.importorskip("mypy")
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "mypy",
                "--config-file",
                str(REPO_ROOT / "pyproject.toml"),
                "-p",
                "repro",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
