"""Figure 6: the impact of scaling the number of branches (flat strategy).

Paper shape: for Query 1, version-first and hybrid latencies *fall* as the
branch count grows (total data is fixed, so each branch shrinks) while
tuple-first stays flat or worsens because it always reads the whole
interleaved heap.  For Query 4, version-first must scan the entire structure
and is the slowest; tuple-first and hybrid answer it via their bitmap indexes.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import figure6_scaling


def test_fig6_scaling_q1_and_q4(benchmark, workdir, scale):
    q1_table, q4_table = run_once(
        benchmark, figure6_scaling, workdir, branch_counts=(4, 8, 16), scale=scale
    )
    q1_table.print()
    q4_table.print()
    assert len(q1_table.rows) == 3
    assert len(q4_table.rows) == 3

    # Figure 6a shape: VF and HY get cheaper (or no worse) as branches grow,
    # because the scanned branch holds a shrinking share of the fixed dataset.
    vf_q1 = [row[1] for row in q1_table.rows]
    hy_q1 = [row[3] for row in q1_table.rows]
    assert vf_q1[-1] <= vf_q1[0] * 1.5
    assert hy_q1[-1] <= hy_q1[0] * 1.5

    # Tuple-first reads the whole heap regardless of the branch count, so it
    # is the slowest single-branch scan at the largest branch count.
    tf_q1 = [row[2] for row in q1_table.rows]
    assert tf_q1[-1] >= max(vf_q1[-1], hy_q1[-1])

    # Figure 6b shape: version-first is the slowest engine for the all-heads
    # scan at every branch count.  Head scans at test scale finish in single
    # milliseconds, where one scheduler stall on a competitor's best-of-three
    # still shifts the ratio by 2-3x, so the bound is deliberately loose
    # (the paper-scale gap is asserted by the real benchmark runs, not here).
    for row in q4_table.rows:
        _, vf, tf, hy = row
        assert vf >= tf * 0.35 and vf >= hy * 0.35
