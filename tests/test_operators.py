"""Tests for the iterator-style query operators."""

import pytest

from repro.core.operators import (
    Aggregate,
    Distinct,
    Filter,
    GroupAggregate,
    HashAntiJoin,
    HashJoin,
    Limit,
    OrderBy,
    Project,
    SeqScan,
    materialize,
)
from repro.core.predicates import ColumnPredicate
from repro.core.record import Record
from repro.core.schema import ColumnType, Schema
from repro.errors import QueryError

from tests.conftest import make_records


@pytest.fixture
def scan(schema):
    return SeqScan(make_records(10), schema)


class TestSeqScanAndFilter:
    def test_seq_scan_yields_all(self, scan):
        assert len(materialize(scan)) == 10

    def test_filter_applies_predicate(self, scan):
        filtered = Filter(scan, ColumnPredicate("id", ">=", 5))
        assert [r.values[0] for r in filtered] == [5, 6, 7, 8, 9]

    def test_filter_preserves_schema(self, scan):
        assert Filter(scan, ColumnPredicate("id", ">", 0)).schema is scan.schema


class TestProject:
    def test_projects_columns(self, scan):
        projected = Project(scan, ["c1", "id"])
        rows = materialize(projected)
        assert rows[3].values == (30, 3)
        assert projected.schema.column_names == ("c1", "id")

    def test_rejects_unknown_column(self, scan):
        with pytest.raises(Exception):
            Project(scan, ["nope"])


class TestLimit:
    def test_limits_output(self, scan):
        assert len(materialize(Limit(scan, 3))) == 3

    def test_zero_limit(self, scan):
        assert materialize(Limit(scan, 0)) == []

    def test_negative_limit_rejected(self, scan):
        with pytest.raises(QueryError):
            Limit(scan, -1)

    def test_limit_larger_than_input(self, scan):
        assert len(materialize(Limit(scan, 100))) == 10

    def test_count_caps_at_limit(self, schema):
        assert Limit(SeqScan(make_records(10), schema), 3).count() == 3

    def test_count_caps_at_child_cardinality(self, schema):
        assert Limit(SeqScan(make_records(10), schema), 100).count() == 10

    def test_count_uses_child_shortcut_without_scanning(self, schema):
        def poisoned():
            raise AssertionError("a limited count must not run the scan")
            yield  # pragma: no cover

        scan = SeqScan(
            None, schema, batch_source=poisoned(), count_source=lambda: 50
        )
        assert Limit(scan, 7).count() == 7


class TestHashJoin:
    def test_self_join_on_key(self, schema):
        left = SeqScan(make_records(10), schema)
        right = SeqScan(make_records(5), schema)
        joined = HashJoin(left, right, "id", "id")
        rows = materialize(joined)
        assert len(rows) == 5
        assert all(row.values[0] == row.values[4] for row in rows)

    def test_join_renames_duplicate_columns(self, schema):
        joined = HashJoin(
            SeqScan([], schema), SeqScan([], schema), "id", "id"
        )
        names = joined.schema.column_names
        assert "id" in names and "id_r" in names
        assert len(names) == 8

    def test_join_with_no_matches(self, schema):
        left = SeqScan(make_records(3), schema)
        right = SeqScan(make_records(3, start=100), schema)
        assert materialize(HashJoin(left, right, "id", "id")) == []

    def test_join_duplicate_build_keys(self, schema):
        left = SeqScan([Record((1, 0, 0, 0)), Record((1, 9, 9, 9))], schema)
        right = SeqScan([Record((1, 5, 5, 5))], schema)
        assert len(materialize(HashJoin(left, right, "id", "id"))) == 2

    def test_composite_key_join(self, schema):
        left = SeqScan(
            [Record((1, 10, 0, 0)), Record((2, 20, 0, 0)), Record((3, 30, 0, 0))],
            schema,
        )
        right = SeqScan(
            [Record((1, 10, 5, 5)), Record((2, 99, 5, 5))], schema
        )
        rows = materialize(
            HashJoin(left, right, ["id", "c1"], ["id", "c1"])
        )
        # Only key 1 matches on both columns; key 2 differs on c1.
        assert [row.values[0] for row in rows] == [1]

    def test_mismatched_key_counts_rejected(self, schema):
        with pytest.raises(QueryError):
            HashJoin(SeqScan([], schema), SeqScan([], schema), ["id", "c1"], ["id"])


class TestHashAntiJoin:
    def test_filters_matching_keys(self, schema):
        outer = SeqScan(make_records(5), schema)
        inner = SeqScan(make_records(3), schema)
        rows = materialize(HashAntiJoin(outer, inner, "id", "id"))
        assert [row.values[0] for row in rows] == [3, 4]

    def test_schema_is_outer_schema(self, schema):
        anti = HashAntiJoin(SeqScan([], schema), SeqScan([], schema), "id", "id")
        assert anti.schema is schema


class TestOrderBy:
    def test_sorts_ascending(self, schema):
        records = [Record((i, (7 - i) % 5, 0, 0)) for i in range(5)]
        rows = materialize(OrderBy(SeqScan(records, schema), [("c1", False)]))
        assert [r.value(schema, "c1") for r in rows] == sorted(
            r.value(schema, "c1") for r in records
        )

    def test_sorts_descending(self, scan):
        rows = materialize(OrderBy(scan, [("id", True)]))
        assert [r.values[0] for r in rows] == list(range(9, -1, -1))

    def test_secondary_key_breaks_ties(self, schema):
        records = [
            Record((1, 5, 9, 0)),
            Record((2, 5, 3, 0)),
            Record((3, 1, 7, 0)),
        ]
        rows = materialize(
            OrderBy(SeqScan(records, schema), [("c1", False), ("c2", False)])
        )
        assert [r.values[0] for r in rows] == [3, 2, 1]

    def test_empty_keys_rejected(self, scan):
        with pytest.raises(QueryError):
            OrderBy(scan, [])

    def test_unknown_key_rejected(self, scan):
        with pytest.raises(Exception):
            OrderBy(scan, [("nope", False)])


class TestDistinct:
    def test_drops_duplicates_keeping_first(self, schema):
        records = [
            Record((1, 1, 1, 1)),
            Record((1, 1, 1, 1)),
            Record((2, 2, 2, 2)),
            Record((1, 1, 1, 1)),
        ]
        rows = materialize(Distinct(SeqScan(records, schema)))
        assert [r.values[0] for r in rows] == [1, 2]

    def test_distinct_of_empty(self, schema):
        assert materialize(Distinct(SeqScan([], schema))) == []


class TestGroupAggregate:
    def test_multiple_aggregates_one_pass(self, schema):
        records = [Record((i, i % 2, i * 10, 0)) for i in range(6)]
        op = GroupAggregate(
            SeqScan(records, schema),
            ["c1"],
            [("count_id", "count", "id"), ("sum_c2", "sum", "c2")],
        )
        rows = materialize(op)
        assert [r.values for r in rows] == [(0, 3, 60), (1, 3, 90)]
        assert op.schema.column_names == ("c1", "count_id", "sum_c2")

    def test_count_star(self, schema):
        op = GroupAggregate(
            SeqScan(make_records(4), schema), [], [("n", "count", "*")]
        )
        assert materialize(op) == [Record((4,))]

    def test_ungrouped_empty_input_follows_sql_semantics(self, schema):
        # SQL: count of nothing is 0, but sum/min/max/avg of nothing is NULL.
        op = GroupAggregate(
            SeqScan([], schema),
            [],
            [
                ("n", "count", "id"),
                ("s", "sum", "c1"),
                ("lo", "min", "c1"),
                ("hi", "max", "c1"),
                ("mean", "avg", "c1"),
            ],
        )
        assert materialize(op) == [Record((0, None, None, None, None))]

    def test_grouped_empty_input_yields_nothing(self, schema):
        op = GroupAggregate(
            SeqScan([], schema), ["c1"], [("n", "count", "id")]
        )
        assert materialize(op) == []

    def test_avg_is_not_truncated(self, schema):
        records = [Record((0, 0, 0, 0)), Record((1, 1, 0, 0))]
        op = GroupAggregate(
            SeqScan(records, schema), [], [("a", "avg", "c1")]
        )
        assert materialize(op)[0].values[0] == 0.5

    def test_string_group_key_keeps_type(self, wide_schema):
        records = [
            Record((1, 4, "ada")),
            Record((2, 2, "ada")),
            Record((3, 9, "bob")),
        ]
        op = GroupAggregate(
            SeqScan(records, wide_schema), ["name"], [("n", "count", "id")]
        )
        assert [r.values for r in op] == [("ada", 2), ("bob", 1)]
        assert op.schema.column("name").type is ColumnType.STRING

    def test_star_only_valid_for_count(self, schema):
        with pytest.raises(QueryError):
            GroupAggregate(SeqScan([], schema), [], [("s", "sum", "*")])

    def test_unknown_function_rejected(self, schema):
        with pytest.raises(QueryError):
            GroupAggregate(SeqScan([], schema), [], [("m", "median", "c1")])


class TestAggregate:
    def test_count_all(self, scan):
        rows = materialize(Aggregate(scan, "count", "id"))
        assert rows == [Record((10,))]

    def test_sum(self, schema):
        rows = materialize(Aggregate(SeqScan(make_records(4), schema), "sum", "c1"))
        assert rows[0].values[0] == 0 + 10 + 20 + 30

    def test_min_max(self, schema):
        source = make_records(5)
        assert materialize(Aggregate(SeqScan(source, schema), "min", "c1"))[0].values[0] == 0
        assert materialize(Aggregate(SeqScan(source, schema), "max", "c1"))[0].values[0] == 40

    def test_avg(self, schema):
        rows = materialize(Aggregate(SeqScan(make_records(4), schema), "avg", "c1"))
        assert rows[0].values[0] == 15

    def test_avg_keeps_fractions(self, schema):
        records = [Record((0, 0, 0, 0)), Record((1, 1, 0, 0))]
        rows = materialize(Aggregate(SeqScan(records, schema), "avg", "c1"))
        assert rows[0].values[0] == 0.5

    def test_grouped_avg_keeps_fractions(self, schema):
        records = [Record((0, 0, 0, 0)), Record((1, 0, 1, 0))]
        rows = materialize(
            Aggregate(SeqScan(records, schema), "avg", "c2", group_by="c1")
        )
        assert rows == [Record((0, 0.5))]

    def test_group_key_schema_inherits_type(self, wide_schema):
        records = [Record((1, 2, "ada")), Record((2, 3, "ada"))]
        agg = Aggregate(
            SeqScan(records, wide_schema), "count", "id", group_by="name"
        )
        assert agg.schema.column("group_key").type is ColumnType.STRING
        assert materialize(agg) == [Record(("ada", 2))]

    def test_group_by(self, schema):
        records = [Record((i, i % 2, i, 0)) for i in range(6)]
        rows = materialize(
            Aggregate(SeqScan(records, schema), "count", "id", group_by="c1")
        )
        assert [(r.values[0], r.values[1]) for r in rows] == [(0, 3), (1, 3)]

    def test_count_empty_input(self, schema):
        rows = materialize(Aggregate(SeqScan([], schema), "count", "id"))
        assert rows[0].values[0] == 0

    @pytest.mark.parametrize("function", ["sum", "min", "max", "avg"])
    def test_non_count_empty_input_is_null(self, schema, function):
        # Both consumption modes must agree on SQL NULL for empty input.
        assert materialize(Aggregate(SeqScan([], schema), function, "c1")) == [
            Record((None,))
        ]
        assert list(Aggregate(SeqScan([], schema), function, "c1")) == [
            Record((None,))
        ]

    def test_avg_output_column_is_float(self, schema):
        agg = Aggregate(SeqScan([], schema), "avg", "c1")
        assert agg.schema.column("agg_value").type is ColumnType.FLOAT

    def test_min_output_column_inherits_source_type(self, wide_schema):
        agg = Aggregate(SeqScan([], wide_schema), "min", "name")
        assert agg.schema.column("agg_value").type is ColumnType.STRING

    def test_count_output_column_is_int(self, schema):
        agg = Aggregate(SeqScan([], schema), "count", "c1")
        assert agg.schema.column("agg_value").type is ColumnType.INT

    def test_unknown_function_rejected(self, scan):
        with pytest.raises(QueryError):
            Aggregate(scan, "median", "c1")
