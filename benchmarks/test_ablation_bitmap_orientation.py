"""Ablation: branch-oriented versus tuple-oriented bitmaps in tuple-first.

Paper Section 3.1/5: the evaluation uses branch-oriented bitmaps because
resolving a single branch's tuples is much faster when the branch's bits are
contiguous; with tuple-oriented bitmaps the whole index must be scanned for a
single-branch scan, while multi-branch (tuple-major) passes are where that
orientation pays off.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import ablation_bitmap_orientation


def test_ablation_bitmap_orientation(benchmark, workdir, scale):
    table = run_once(benchmark, ablation_bitmap_orientation, workdir, scale=scale)
    table.print()
    rows = {row[0]: row[1:] for row in table.rows}
    assert set(rows) == {"branch", "tuple"}
    branch_q1, branch_q4, branch_load, branch_kb = rows["branch"]
    tuple_q1, tuple_q4, tuple_load, tuple_kb = rows["tuple"]
    assert branch_q1 > 0 and tuple_q1 > 0
    # Single-branch scans are not meaningfully slower with the branch-oriented
    # layout (the orientation the paper's evaluation settles on); the
    # tuple-oriented index must scan its whole block just to assemble one
    # branch's bitmap, so it should never be clearly ahead.
    assert branch_q1 <= tuple_q1 * 1.6
    # Both layouts load successfully and carry a real memory footprint.
    assert branch_load > 0 and tuple_load > 0
    assert branch_kb > 0 and tuple_kb > 0
