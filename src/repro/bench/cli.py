"""Command-line entry point for the versioning benchmark.

Runs any subset of the paper's experiments without pytest::

    python -m repro.bench --list
    python -m repro.bench fig7 table3 --operations 3000 --branches 8
    python -m repro.bench all --workdir /tmp/decibel-bench

Each experiment prints the result table corresponding to its paper artefact
(see DESIGN.md for the experiment index).
"""

from __future__ import annotations

import argparse
import inspect
import sys
import tempfile

from repro.bench import experiments
from repro.bench.experiments import ExperimentScale
from repro.bench.report import ResultTable

#: Experiment name -> (description, runner).  Runners take (workdir, scale)
#: and return one ResultTable or a tuple of them.
EXPERIMENTS = {
    "fig6": (
        "Figure 6a/6b: Q1 and Q4 while scaling the branch count (flat)",
        lambda workdir, scale: experiments.figure6_scaling(workdir, scale=scale),
    ),
    "fig7": (
        "Figure 7: Query 1 across strategies (incl. clustered tuple-first)",
        lambda workdir, scale: experiments.figure7_query1(workdir, scale=scale),
    ),
    "fig8": (
        "Figure 8: Query 2 (positive diff) across strategies",
        lambda workdir, scale: experiments.figure8_query2(workdir, scale=scale),
    ),
    "fig9": (
        "Figure 9: Query 3 (multi-version join) across strategies",
        lambda workdir, scale: experiments.figure9_query3(workdir, scale=scale),
    ),
    "fig10": (
        "Figure 10: Query 4 (scan all heads) across strategies",
        lambda workdir, scale: experiments.figure10_query4(workdir, scale=scale),
    ),
    "fig11": (
        "Figure 11 + Table 4: table-wise updates",
        lambda workdir, scale: experiments.figure11_tablewise_updates(
            workdir, scale=scale
        ),
    ),
    "table2": (
        "Table 2: commit-history size, commit and checkout time",
        lambda workdir, scale: experiments.table2_commit_metadata(workdir, scale=scale),
    ),
    "table3": (
        "Table 3: two-way vs three-way merge throughput (curation)",
        lambda workdir, scale: experiments.table3_merge_throughput(workdir, scale=scale),
    ),
    "table5": (
        "Table 5: build (load) times per strategy and engine",
        lambda workdir, scale: experiments.table5_build_times(workdir, scale=scale),
    ),
    "table6": (
        "Table 6: git-backed storage vs Decibel (hybrid), 100% inserts",
        lambda workdir, scale: experiments.git_comparison(
            workdir, update_fraction=0.0, scale=scale
        ),
    ),
    "table7": (
        "Table 7: git-backed storage vs Decibel (hybrid), 50% updates",
        lambda workdir, scale: experiments.git_comparison(
            workdir, update_fraction=0.5, scale=scale
        ),
    ),
    "vectorized": (
        "Batched vs tuple-at-a-time execution (writes BENCH_pr3.json)",
        lambda workdir, scale, json_path=None: experiments.vectorized_batching(
            workdir, scale=scale, json_path=json_path
        ),
    ),
    "operators": (
        "Whole-tree batch pipeline: GROUP BY/join + Q1-Q4 (writes BENCH_pr4.json)",
        lambda workdir, scale, json_path=None: experiments.operators_batching(
            workdir, scale=scale, json_path=json_path
        ),
    ),
    "sort-topn": (
        "Memory-bounded sort + Top-N rewrite (writes BENCH_pr5.json)",
        lambda workdir, scale, json_path=None: experiments.sort_topn(
            workdir, scale=scale, json_path=json_path
        ),
    ),
    "columnar": (
        "Columnar vs row-batched vs streaming execution (writes BENCH_pr7.json)",
        lambda workdir, scale, json_path=None: experiments.columnar_execution(
            workdir, scale=scale, json_path=json_path
        ),
    ),
    "recovery": (
        "Crash recovery: open-to-first-query, clean vs after-crash "
        "(writes BENCH_pr8.json)",
        lambda workdir, scale, json_path=None: experiments.recovery_open(
            workdir, scale=scale, json_path=json_path
        ),
    ),
    "concurrency": (
        "Serving layer: latency percentiles at 1/4/16 clients "
        "(writes BENCH_pr9.json)",
        lambda workdir, scale, json_path=None: experiments.serving_concurrency(
            workdir, scale=scale, json_path=json_path
        ),
    ),
    "index": (
        "Index subsystem: persisted pk cold opens + index vs full scans "
        "(writes BENCH_pr10.json)",
        lambda workdir, scale, json_path=None: experiments.index_subsystem(
            workdir, scale=scale, json_path=json_path
        ),
    ),
    "ablation-orientation": (
        "Ablation: branch- vs tuple-oriented bitmaps (tuple-first)",
        lambda workdir, scale: experiments.ablation_bitmap_orientation(
            workdir, scale=scale
        ),
    ),
    "ablation-layers": (
        "Ablation: composite commit-delta layer interval sweep",
        lambda workdir, scale: experiments.ablation_commit_layers(workdir, scale=scale),
    ),
}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser for ``python -m repro.bench``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the Decibel versioning benchmark experiments.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="EXPERIMENT",
        help="experiment names (see --list), or 'all'",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiments and exit"
    )
    parser.add_argument(
        "--workdir",
        default=None,
        help="directory for generated datasets (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--operations",
        type=int,
        default=3000,
        help="total insert/update operations per dataset (default: 3000)",
    )
    parser.add_argument(
        "--branches", type=int, default=8, help="number of branches (default: 8)"
    )
    parser.add_argument(
        "--commit-interval",
        type=int,
        default=300,
        help="operations between commits per branch (default: 300)",
    )
    parser.add_argument(
        "--columns", type=int, default=10, help="columns per record (default: 10)"
    )
    parser.add_argument(
        "--scan-rows",
        type=int,
        default=100_000,
        help="rows in the vectorized-scan microbenchmark (default: 100000)",
    )
    parser.add_argument(
        "--bench-json",
        default=None,
        help=(
            "where the vectorized/operators/sort-topn/columnar/recovery/"
            "concurrency/index experiments write their JSON record (default: "
            "BENCH_pr3.json / BENCH_pr4.json / BENCH_pr5.json / "
            "BENCH_pr7.json / BENCH_pr8.json / BENCH_pr9.json / "
            "BENCH_pr10.json inside the workdir)"
        ),
    )
    parser.add_argument(
        "--markdown",
        action="store_true",
        help="print tables as markdown instead of fixed-width text",
    )
    return parser


def _print_tables(result, markdown: bool) -> None:
    tables = result if isinstance(result, tuple) else (result,)
    for table in tables:
        if not isinstance(table, ResultTable):  # pragma: no cover - defensive
            continue
        if markdown:
            print()
            print(table.to_markdown())
            print()
        else:
            table.print()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list or not args.experiments:
        print("available experiments:")
        for name, (description, _) in EXPERIMENTS.items():
            print(f"  {name:22s} {description}")
        print("  all                    run every experiment")
        return 0
    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiment(s): {', '.join(unknown)}")
    scale = ExperimentScale(
        total_operations=args.operations,
        num_branches=args.branches,
        commit_interval=args.commit_interval,
        num_columns=args.columns,
        scan_rows=args.scan_rows,
    )
    workdir = args.workdir or tempfile.mkdtemp(prefix="decibel-bench-")
    print(f"datasets under {workdir}")
    # Options forwarded to any runner whose signature declares them, so the
    # dispatch loop stays uniform as option-taking experiments come and go.
    options = {"json_path": args.bench_json}
    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"\n== {name}: {description}")
        supported = inspect.signature(runner).parameters
        kwargs = {
            option: value
            for option, value in options.items()
            if option in supported
        }
        _print_tables(runner(workdir, scale, **kwargs), markdown=args.markdown)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
