#!/usr/bin/env python
"""Run the engine lint (`repro.analysis.lint`) over the source tree.

Usage::

    PYTHONPATH=src python scripts/lint.py            # lint src/repro
    PYTHONPATH=src python scripts/lint.py --list     # show the rules
    PYTHONPATH=src python scripts/lint.py --disable REPRO006

Configuration is read from ``[tool.repro-lint]`` in ``pyproject.toml``
(``disable`` — a list of rule ids to skip); command-line ``--disable``
flags are additive on top of it.  ``tomllib`` only ships with Python 3.11+,
so on older interpreters the config file is skipped and the defaults apply.

Exits non-zero when any violation is found — there is no warning-only mode;
a rule either holds or CI fails.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.lint import ALL_RULES, run_lint  # noqa: E402


def load_config(pyproject: Path) -> dict:
    """The ``[tool.repro-lint]`` table, or ``{}`` when unavailable."""
    try:
        import tomllib
    except ImportError:  # Python < 3.11: run with defaults
        return {}
    if not pyproject.is_file():
        return {}
    with pyproject.open("rb") as handle:
        data = tomllib.load(handle)
    return data.get("tool", {}).get("repro-lint", {})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root",
        default=str(REPO_ROOT / "src"),
        help="source directory containing the package (default: src)",
    )
    parser.add_argument(
        "--disable",
        action="append",
        default=[],
        metavar="RULE_ID",
        help="skip a rule id (repeatable; adds to pyproject config)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for rule in ALL_RULES:
            print(f"{rule.id}  {type(rule).__name__}")
            print(f"    why: {rule.rationale}")
            print(f"    fix: {rule.fix_hint}")
        return 0

    config = load_config(REPO_ROOT / "pyproject.toml")
    disable = set(config.get("disable", [])) | set(args.disable)

    violations = run_lint(args.root, disable=disable)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    enabled = sum(1 for rule in ALL_RULES if rule.id not in disable)
    print(f"lint: clean ({enabled} rule(s) over {args.root})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
