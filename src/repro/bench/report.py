"""Result tables for the benchmark harness.

Every experiment produces a :class:`ResultTable`: named columns plus rows of
values, printable in a fixed-width layout so the benchmark output can be read
next to the corresponding table or figure in the paper.  ``EXPERIMENTS.md``
is written from these tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ResultTable:
    """A small formatted table of experiment results."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append a row; the number of values must match the columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def add_note(self, note: str) -> None:
        """Attach a free-form note shown under the table."""
        self.notes.append(note)

    # -- formatting -------------------------------------------------------------

    @staticmethod
    def _format_value(value) -> str:
        if isinstance(value, float):
            if value >= 100:
                return f"{value:.1f}"
            if value >= 1:
                return f"{value:.2f}"
            return f"{value:.4f}"
        return str(value)

    def to_text(self) -> str:
        """Render the table as fixed-width text."""
        formatted = [[self._format_value(v) for v in row] for row in self.rows]
        widths = [len(name) for name in self.columns]
        for row in formatted:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(name.ljust(widths[i]) for i, name in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in formatted:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(self._format_value(v) for v in row) + " |"
            )
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def print(self) -> None:
        """Print the text rendering (used by the benchmark harness)."""
        print()
        print(self.to_text())
        print()
