"""The hybrid storage engine.

Hybrid combines the other two layouts (paper Section 3.4): records are stored
in segments as in version-first, giving data locality per branch lineage, and
each segment carries a *local* bitmap index recording which branches each of
its records is live in, as in tuple-first.  A *branch-segment* index maps each
branch to the segments containing at least one record live in it, letting
scans skip irrelevant segments and multi-branch operations work per segment.

Segments come in two classes: *head* segments receive fresh modifications of
one branch; on a branch operation the parent's head is frozen into an
*internal* segment (only its bitmaps may change afterwards) and two new head
segments are created, one for the parent and one for the child.

Commits snapshot each (branch, segment) local bitmap into its own
delta-compressed history file, which is why hybrid's commit metadata is split
across many small files (paper Section 5.3).
"""

from __future__ import annotations

import json
import os
from typing import Iterator

from repro.bitmap import CommitHistory
from repro.bitmap.bitmap import Bitmap, union_member_pages
from repro.bitmap.branch_bitmap import BranchOrientedBitmapIndex
from repro.core.buffer_pool import BufferPool
from repro.core.columns import ColumnBatch
from repro.core.page import DEFAULT_PAGE_SIZE
from repro.core.predicates import Predicate, compile_predicate
from repro.core.durable import add_recovery_note, append_framed, read_framed
from repro.core.record import Record
from repro.core.schema import Schema
from repro.errors import CommitNotFoundError, CorruptionError, StorageError
from repro.storage.base import (
    ChangeMap,
    DEFAULT_SCAN_BATCH_SIZE,
    StorageEngineKind,
    VersionedStorageEngine,
    fetch_bitmap_ordinals,
    regroup_chunks,
    scan_heap_bitmap_batched,
    scan_heap_bitmap_columns,
)
from repro.storage.pk_index import PrimaryKeyIndex
from repro.storage.segments import ParentPointer, Segment, SegmentSet
from repro.versioning.diff import DiffResult
from repro.versioning.version_graph import MASTER_BRANCH


class HybridEngine(VersionedStorageEngine):
    """Version-first segments with tuple-first style per-segment bitmaps."""

    kind = StorageEngineKind.HYBRID

    def __init__(
        self,
        directory: str,
        schema: Schema,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pool: BufferPool | None = None,
        commit_layer_interval: int = 8,
    ):
        super().__init__(
            directory, schema, page_size=page_size, buffer_pool=buffer_pool
        )
        self.segments = SegmentSet(
            os.path.join(directory, "segments"),
            schema,
            self.buffer_pool,
            page_size=page_size,
        )
        self.commit_layer_interval = commit_layer_interval
        #: Per-segment local bitmap indexes: segment id -> (branch -> bitmap).
        self._local_bitmaps: dict[str, BranchOrientedBitmapIndex] = {}
        #: The branch-segment index: branch -> set of segment ids with records
        #: live in that branch.
        self._branch_segments: dict[str, set[str]] = {}
        #: branch -> id of its current head segment.
        self._head_segment: dict[str, str] = {}
        #: (branch, segment id) -> commit history of that local bitmap column.
        self._histories: dict[tuple[str, str], CommitHistory] = {}
        #: commit id -> segment ids whose bitmaps were snapshotted at that commit.
        self._commit_segments: dict[str, list[str]] = {}
        #: (branch, primary key) -> (segment id, ordinal) of the latest copy.
        #: Owned by the index subsystem facade, which persists it per branch
        #: and hydrates branches lazily on first touch.
        self.pk_index: PrimaryKeyIndex[tuple[str, int]] = self.index_hook.pk
        self.index_hook.bind(
            self._pk_entries_for_branch,
            self.scan_branch,
            lambda branch: self.graph.head(branch),
            decode=tuple,
        )

    # -- engine hooks --------------------------------------------------------------

    def _prepare_master(self) -> None:
        segment = self._new_head_segment(MASTER_BRANCH, parents=())
        self._head_segment[MASTER_BRANCH] = segment.segment_id
        self._branch_segments[MASTER_BRANCH] = set()
        self.index_hook.branch_created(MASTER_BRANCH)

    def _new_head_segment(
        self, branch: str, parents: tuple[ParentPointer, ...]
    ) -> Segment:
        segment = self.segments.create(owner_branch=branch, parents=parents)
        self._local_bitmaps[segment.segment_id] = BranchOrientedBitmapIndex()
        self._local_bitmaps[segment.segment_id].add_branch(branch)
        return segment

    def _materialize_branch(
        self, name: str, parent_branch: str, from_commit: str, at_head: bool
    ) -> None:
        if at_head:
            self._branch_from_head(name, parent_branch)
            self.index_hook.branch_created(name, clone_from=parent_branch)
        else:
            entries = self._branch_from_commit(name, parent_branch, from_commit)
            self.index_hook.branch_rebuilt(name, entries)

    def _branch_from_head(self, name: str, parent_branch: str) -> None:
        """The paper's branch operation: freeze the parent head, fork bitmaps."""
        old_head_id = self._head_segment[parent_branch]
        old_head = self.segments.get(old_head_id)
        old_head.freeze()
        # Fork the parent's liveness bits into a new column for the child in
        # every segment that holds records live in the parent's ancestry.
        self._branch_segments.setdefault(name, set())
        for segment_id in self._branch_segments[parent_branch]:
            local = self._local_bitmaps[segment_id]
            if local.has_branch(name):
                continue
            local.add_branch(name, clone_from=parent_branch)
            if local.branch_bitmap(name).any():
                self._branch_segments[name].add(segment_id)
        # Two fresh head segments: one for the parent to continue on, one for
        # the child branch.
        offset = old_head.record_count
        parent_new_head = self._new_head_segment(
            parent_branch, parents=(ParentPointer(old_head_id, offset),)
        )
        child_head = self._new_head_segment(
            name, parents=(ParentPointer(old_head_id, offset),)
        )
        self._head_segment[parent_branch] = parent_new_head.segment_id
        self._head_segment[name] = child_head.segment_id

    def _branch_from_commit(
        self, name: str, parent_branch: str, from_commit: str
    ) -> dict[int, tuple[str, int]]:
        """Branch from a historical commit by restoring its bitmap snapshots."""
        segment_ids = self._commit_segments.get(from_commit)
        if segment_ids is None:
            raise CommitNotFoundError(
                f"commit {from_commit!r} has no recorded bitmap snapshots"
            )
        self._branch_segments[name] = set()
        entries: dict[int, tuple[str, int]] = {}
        pk_position = self.schema.primary_key_index
        for segment_id in segment_ids:
            history = self._histories.get((parent_branch, segment_id))
            if history is None or from_commit not in history:
                continue
            snapshot = history.checkout(from_commit)
            local = self._local_bitmaps[segment_id]
            if not local.has_branch(name):
                local.add_branch(name)
            local.restore_branch(name, snapshot)
            if snapshot.any():
                self._branch_segments[name].add(segment_id)
            segment = self.segments.get(segment_id)
            for ordinal in snapshot.iter_set_bits():
                record = segment.record_at(ordinal)
                entries[record.values[pk_position]] = (segment_id, ordinal)
        child_head = self._new_head_segment(name, parents=())
        self._head_segment[name] = child_head.segment_id
        return entries

    def _record_commit_state(self, branch: str, commit_id: str) -> None:
        segment_ids = sorted(
            self._branch_segments[branch] | {self._head_segment[branch]}
        )
        for segment_id in segment_ids:
            history = self._history(branch, segment_id)
            local = self._local_bitmaps[segment_id]
            snapshot = (
                local.branch_bitmap(branch)
                if local.has_branch(branch)
                else Bitmap()
            )
            history.record_commit(commit_id, snapshot)
        self._commit_segments[commit_id] = segment_ids
        # Persist the commit -> segments entry before the caller persists the
        # graph: a crash in between leaves an orphan entry that reload skips.
        append_framed(
            self._hybrid_meta_path(),
            json.dumps(
                {"commit": commit_id, "segments": segment_ids},
                separators=(",", ":"),
            ).encode("utf-8"),
            label="hybrid-meta",
        )

    def _hybrid_meta_path(self) -> str:
        return os.path.join(self.directory, "hybrid_meta.log")

    def _load_hybrid_meta(self) -> None:
        """Rebuild the commit -> segments map from its append-only log.

        Commit ids are sequential, so after a crash an orphan entry's id can
        be reused by the next commit; entries are applied in log order and
        the latest one for an id wins, which is always the live one (the
        entry is appended before the graph learns the commit).
        """
        path = self._hybrid_meta_path()
        if not os.path.exists(path):
            return
        for payload in read_framed(path, description="hybrid commit metadata"):
            try:
                entry = json.loads(payload.decode("utf-8"))
            except ValueError as exc:
                raise CorruptionError(
                    path, f"hybrid metadata entry is not valid JSON: {exc}"
                ) from exc
            self._commit_segments[entry["commit"]] = [
                str(s) for s in entry["segments"]
            ]

    def _load_storage(self) -> None:
        """Reload segments, local bitmaps, histories, and indexes from disk.

        Visibility in hybrid is bitmap-governed, so head segments are *not*
        truncated on recovery: records appended by an uncommitted transaction
        may survive as dead bytes in the head segment, but no restored bitmap
        references them, making them invisible to every scan.
        """
        self.segments.load_metadata()
        self._load_hybrid_meta()
        orphans = [
            commit_id
            for commit_id in self._commit_segments
            if not self.graph.has_commit(commit_id)
        ]
        for commit_id in orphans:
            del self._commit_segments[commit_id]
        if orphans:
            add_recovery_note(
                f"discarded {len(orphans)} orphan commit snapshot entr"
                f"{'y' if len(orphans) == 1 else 'ies'} from hybrid metadata"
            )
        # Every segment gets an (initially empty) local bitmap index; head
        # segments are the non-frozen segment owned by each branch.
        for segment in self.segments.all():
            self._local_bitmaps[segment.segment_id] = BranchOrientedBitmapIndex()
            if not segment.frozen and segment.owner_branch is not None:
                self._head_segment[segment.owner_branch] = segment.segment_id
        branches = list(self.graph.branch_names())
        for branch in branches:
            self._branch_segments.setdefault(branch, set())
            if branch not in self._head_segment:
                raise CorruptionError(
                    os.path.join(self.segments.directory, "segments.json"),
                    f"branch {branch!r} has no head segment",
                )
            head_local = self._local_bitmaps[self._head_segment[branch]]
            if not head_local.has_branch(branch):
                head_local.add_branch(branch)
        # Rebind every (branch, segment) history to the graph's committed
        # prefix: entries past the graph's knowledge (from a crash between a
        # history append and the graph persist) are discarded.
        segment_ids = [segment.segment_id for segment in self.segments.all()]
        for branch in branches:
            branch_commits = [
                commit.commit_id for commit in self.graph.commits_on_branch(branch)
            ]
            for segment_id in segment_ids:
                path = os.path.join(
                    self.directory, f"commits_{branch}_{segment_id}.hist"
                )
                if not os.path.exists(path):
                    continue
                history = self._history(branch, segment_id)
                history.rebind_commit_ids(
                    [
                        commit_id
                        for commit_id in branch_commits
                        if segment_id in self._commit_segments.get(commit_id, ())
                    ]
                )
        # Restore each branch's local bitmaps at its head commit.  The head
        # commit may live on an ancestor branch (for a branch with no commits
        # of its own), so the snapshots come from the owning branch's
        # histories.
        for branch in branches:
            head_commit = self.graph.head(branch)
            if head_commit is None:
                continue
            owning = self.graph.get_commit(head_commit).branch
            for segment_id in self._commit_segments.get(head_commit, ()):
                history = self._histories.get((owning, segment_id))
                if history is None or head_commit not in history:
                    continue
                snapshot = history.checkout(head_commit)
                local = self._local_bitmaps[segment_id]
                if not local.has_branch(branch):
                    local.add_branch(branch)
                local.restore_branch(branch, snapshot)
                if snapshot.any():
                    self._branch_segments[branch].add(segment_id)
        # Branch pk maps hydrate lazily on first touch, from the persisted
        # index chain when current, otherwise via _pk_entries_for_branch.
        self.index_hook.attach_lazy(self.graph.branch_names())

    def _pk_entries_for_branch(self, branch: str) -> dict[int, tuple[str, int]]:
        """Derive a branch's pk -> (segment, ordinal) map from its bitmaps."""
        pk_position = self.schema.primary_key_index
        entries: dict[int, tuple[str, int]] = {}
        for segment_id in sorted(self._branch_segments.get(branch, ())):
            local = self._local_bitmaps[segment_id]
            segment = self.segments.get(segment_id)
            for ordinal in local.branch_bitmap(branch).iter_set_bits():
                record = segment.record_at(ordinal)
                entries[record.values[pk_position]] = (segment_id, ordinal)
        return entries

    def record_for_key(self, branch: str, key: int) -> Record | None:
        location = self.pk_index.get(branch, key)
        if location is None:
            return None
        segment_id, ordinal = location
        return self.segments.get(segment_id).record_at(ordinal)

    def records_for_keys(self, branch: str, keys) -> list[Record]:
        """Index-scan fetch: each touched page is fetched once, in key order."""
        out: list[Record] = []
        heaps: dict[str, object] = {}
        pages: dict[tuple[str, int], object] = {}
        for key in keys:
            location = self.pk_index.get(branch, key)
            if location is None:
                continue
            segment_id, ordinal = location
            heap = heaps.get(segment_id)
            if heap is None:
                heap = heaps[segment_id] = self.segments.get(segment_id).heap
            page_number, slot = divmod(ordinal, heap.records_per_page)
            page = pages.get((segment_id, page_number))
            if page is None:
                if len(pages) > 64:
                    pages.clear()  # bound decoded-page references per fetch
                page = pages[(segment_id, page_number)] = heap.page(page_number)
            out.append(page.record_at(slot))
        return out

    def _history(self, branch: str, segment_id: str) -> CommitHistory:
        key = (branch, segment_id)
        history = self._histories.get(key)
        if history is None:
            history = CommitHistory(
                path=os.path.join(
                    self.directory, f"commits_{branch}_{segment_id}.hist"
                ),
                layer_interval=self.commit_layer_interval,
            )
            self._histories[key] = history
        return history

    def _flush_storage(self) -> None:
        self.segments.flush()
        self.segments.save_metadata()

    # -- data operations ----------------------------------------------------------------

    def insert(self, branch: str, record: Record) -> None:
        segment_id = self._head_segment[branch]
        segment = self.segments.get(segment_id)
        ordinal = segment.append(record)
        local = self._local_bitmaps[segment_id]
        if not local.has_branch(branch):
            local.add_branch(branch)
        local.set(ordinal, branch)
        self._branch_segments[branch].add(segment_id)
        self.index_hook.applied(
            branch, record.key(self.schema), (segment_id, ordinal), record
        )
        self._dirty_writes = True
        self.stats.records_inserted += 1

    def update(self, branch: str, record: Record) -> None:
        key = record.key(self.schema)
        previous = self.pk_index.get(branch, key)
        if previous is not None:
            old_segment_id, old_ordinal = previous
            self._local_bitmaps[old_segment_id].clear(old_ordinal, branch)
        self.insert(branch, record)
        self.stats.records_inserted -= 1
        self.stats.records_updated += 1

    def delete(self, branch: str, key: int) -> None:
        previous = self.pk_index.get(branch, key)
        if previous is None:
            raise StorageError(f"key {key} is not live in branch {branch!r}")
        segment_id, ordinal = previous
        self._local_bitmaps[segment_id].clear(ordinal, branch)
        self.index_hook.removed(branch, key)
        self._dirty_writes = True
        self.stats.records_deleted += 1

    def branch_contains_key(self, branch: str, key: int) -> bool:
        return self.pk_index.contains(branch, key)

    # -- scans ---------------------------------------------------------------------------

    def _branch_segment_bitmaps(self, branch: str) -> dict[str, Bitmap]:
        """Live bitmaps of ``branch`` per segment it touches."""
        result = {}
        for segment_id in sorted(self._branch_segments.get(branch, ())):
            local = self._local_bitmaps[segment_id]
            if local.has_branch(branch):
                bitmap = local.branch_bitmap(branch)
                if bitmap.any():
                    result[segment_id] = bitmap
        return result

    def scan_branch(
        self, branch: str, predicate: Predicate | None = None
    ) -> Iterator[Record]:
        for segment_id, bitmap in self._branch_segment_bitmaps(branch).items():
            yield from self._scan_segment_bitmap(segment_id, bitmap, predicate)

    def scan_branch_batched(
        self,
        branch: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[Record]]:
        """Vectorized :meth:`scan_branch`: per-segment page-batch reads."""
        for segment_id, bitmap in self._branch_segment_bitmaps(branch).items():
            segment = self.segments.get(segment_id)
            yield from scan_heap_bitmap_batched(
                segment.heap, bitmap, self.schema, predicate, batch_size, self.stats
            )

    def scan_branch_columns(
        self,
        branch: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
        columns: tuple[str, ...] | None = None,
    ) -> Iterator[ColumnBatch]:
        """Columnar :meth:`scan_branch`: per-segment page-decode column
        scans, in the same segment order as the row scan."""
        for segment_id, bitmap in self._branch_segment_bitmaps(branch).items():
            segment = self.segments.get(segment_id)
            yield from scan_heap_bitmap_columns(
                segment.heap,
                bitmap,
                self.schema,
                predicate,
                batch_size,
                self.stats,
                columns=columns,
            )

    def count_branch(self, branch: str, predicate: Predicate | None = None) -> int:
        if predicate is None:
            # Sum of per-segment local bitmap popcounts; no segment I/O.
            return sum(
                bitmap.count()
                for bitmap in self._branch_segment_bitmaps(branch).values()
            )
        return super().count_branch(branch, predicate)

    def _commit_segment_bitmaps(self, commit_id: str) -> Iterator[tuple[str, Bitmap]]:
        """Yield ``(segment_id, recorded bitmap)`` for a historical commit."""
        branch = self.graph.get_commit(commit_id).branch
        segment_ids = self._commit_segments.get(commit_id)
        if segment_ids is None:
            raise CommitNotFoundError(
                f"commit {commit_id!r} has no recorded bitmap snapshots"
            )
        for segment_id in segment_ids:
            history = self._histories.get((branch, segment_id))
            if history is None or commit_id not in history:
                continue
            yield segment_id, history.checkout(commit_id)

    def scan_commit(
        self, commit_id: str, predicate: Predicate | None = None
    ) -> Iterator[Record]:
        for segment_id, bitmap in self._commit_segment_bitmaps(commit_id):
            yield from self._scan_segment_bitmap(segment_id, bitmap, predicate)

    def scan_commit_batched(
        self,
        commit_id: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[Record]]:
        """Vectorized :meth:`scan_commit`: per-segment page-batch reads over
        the commit's recorded bitmaps."""
        for segment_id, bitmap in self._commit_segment_bitmaps(commit_id):
            segment = self.segments.get(segment_id)
            yield from scan_heap_bitmap_batched(
                segment.heap, bitmap, self.schema, predicate, batch_size, self.stats
            )

    def scan_commit_columns(
        self,
        commit_id: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[ColumnBatch]:
        """Columnar :meth:`scan_commit` over the commit's recorded bitmaps."""
        for segment_id, bitmap in self._commit_segment_bitmaps(commit_id):
            segment = self.segments.get(segment_id)
            yield from scan_heap_bitmap_columns(
                segment.heap, bitmap, self.schema, predicate, batch_size, self.stats
            )

    def count_commit(self, commit_id: str, predicate: Predicate | None = None) -> int:
        if predicate is None:
            return sum(
                bitmap.count()
                for _, bitmap in self._commit_segment_bitmaps(commit_id)
            )
        return super().count_commit(commit_id, predicate)

    def _scan_segment_bitmap(
        self, segment_id: str, bitmap: Bitmap, predicate: Predicate | None
    ) -> Iterator[Record]:
        segment = self.segments.get(segment_id)
        schema = self.schema
        per_page = segment.heap.records_per_page
        live_pages: dict[int, list[int]] = {}
        for ordinal in bitmap.iter_set_bits():
            live_pages.setdefault(ordinal // per_page, []).append(ordinal % per_page)
        for page_number in sorted(live_pages):
            page = segment.heap.page(page_number)
            for slot in live_pages[page_number]:
                record = page.record_at(slot)
                self.stats.records_scanned += 1
                if predicate is None or predicate.evaluate(record, schema):
                    yield record

    def scan_branches(
        self, branches: list[str], predicate: Predicate | None = None
    ) -> Iterator[tuple[Record, frozenset[str]]]:
        """One pass per relevant segment, annotating records with branches.

        The branch-segment index narrows the scan to segments containing any
        requested branch's records; within each segment the per-branch local
        bitmaps are consulted directly (paper Section 3.4).
        """
        matches = compile_predicate(predicate, self.schema)
        for segment_id, per_branch in self._relevant_segment_bitmaps(branches):
            segment = self.segments.get(segment_id)
            # Word-level membership over the local bitmaps: one shared
            # frozenset per branch combination, no per-(branch, tuple) probes.
            live_pages = union_member_pages(
                per_branch, segment.heap.records_per_page
            )
            for page_number in sorted(live_pages):
                records = segment.heap.page(page_number).records_view()
                for slot, members in live_pages[page_number]:
                    record = records[slot]
                    self.stats.records_scanned += 1
                    if matches is not None and not matches(record.values):
                        continue
                    yield record, members

    def _relevant_segment_bitmaps(
        self, branches: list[str]
    ) -> Iterator[tuple[str, dict[str, Bitmap]]]:
        """Per relevant segment, the local bitmaps of the requested branches."""
        relevant: set[str] = set()
        for branch in branches:
            relevant |= self._branch_segments.get(branch, set())
        for segment_id in sorted(relevant):
            local = self._local_bitmaps[segment_id]
            yield segment_id, {
                branch: local.branch_bitmap(branch)
                for branch in branches
                if local.has_branch(branch)
            }

    def scan_branches_batched(
        self,
        branches: list[str],
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[tuple[Record, frozenset[str]]]]:
        """Batched :meth:`scan_branches`: per-segment annotated page reads."""

        def page_hits() -> Iterator[list[tuple[Record, frozenset[str]]]]:
            matches = compile_predicate(predicate, self.schema)
            for segment_id, per_branch in self._relevant_segment_bitmaps(branches):
                segment = self.segments.get(segment_id)
                live_pages = union_member_pages(
                    per_branch, segment.heap.records_per_page
                )
                for page_number in sorted(live_pages):
                    records = segment.heap.page(page_number).records_view()
                    slots = live_pages[page_number]
                    self.stats.records_scanned += len(slots)
                    if matches is None:
                        yield [
                            (records[slot], members) for slot, members in slots
                        ]
                    else:
                        yield [
                            (record, members)
                            for slot, members in slots
                            if matches((record := records[slot]).values)
                        ]

        yield from regroup_chunks(page_hits(), batch_size)

    # -- diff -----------------------------------------------------------------------------

    def diff(self, branch_a: str, branch_b: str) -> DiffResult:
        """Per-segment bitmap differences (paper Section 3.4)."""
        self.stats.diffs += 1
        bitmaps_a = self._branch_segment_bitmaps(branch_a)
        bitmaps_b = self._branch_segment_bitmaps(branch_b)
        result = DiffResult(version_a=branch_a, version_b=branch_b)
        empty = Bitmap()
        scratch = Bitmap()  # one buffer reused across every per-segment diff
        for segment_id in sorted(set(bitmaps_a) | set(bitmaps_b)):
            bitmap_a = bitmaps_a.get(segment_id, empty)
            bitmap_b = bitmaps_b.get(segment_id, empty)
            segment = self.segments.get(segment_id)
            fetch_bitmap_ordinals(
                segment.heap, bitmap_a.and_not_into(bitmap_b, scratch),
                result.positive, self.stats,
            )
            fetch_bitmap_ordinals(
                segment.heap, bitmap_b.and_not_into(bitmap_a, scratch),
                result.negative, self.stats,
            )
        return result

    # -- merge inputs ------------------------------------------------------------------------

    def _collect_merge_inputs(
        self, target_branch: str, source_branch: str, lca_commit: str, three_way: bool
    ) -> tuple[ChangeMap, ChangeMap, dict[int, Record]]:
        """Per-segment bitmap comparisons against the LCA snapshots.

        Only the segments the branch-segment index marks as relevant are
        touched, and within them only the tuples whose liveness changed since
        the LCA are fetched -- the reason hybrid posts the best merge
        throughput in Table 3.
        """
        pk_position = self.schema.primary_key_index
        if not three_way:
            changed_target, changed_source = self._two_way_changes(
                self.branch_record_map(target_branch),
                self.branch_record_map(source_branch),
            )
            return changed_target, changed_source, {}
        lca_branch = self.graph.get_commit(lca_commit).branch
        lca_segments = self._commit_segments.get(lca_commit, [])
        lca_bitmaps: dict[str, Bitmap] = {}
        for segment_id in lca_segments:
            history = self._histories.get((lca_branch, segment_id))
            if history is not None and lca_commit in history:
                lca_bitmaps[segment_id] = history.checkout(lca_commit)

        def changes_vs_lca(branch: str) -> ChangeMap:
            changes: ChangeMap = {}
            branch_bitmaps = self._branch_segment_bitmaps(branch)
            for segment_id in sorted(set(branch_bitmaps) | set(lca_bitmaps)):
                bitmap = branch_bitmaps.get(segment_id, Bitmap())
                lca_bitmap = lca_bitmaps.get(segment_id, Bitmap())
                segment = self.segments.get(segment_id)
                for ordinal in bitmap.and_not(lca_bitmap).iter_set_bits():
                    record = segment.record_at(ordinal)
                    changes[record.values[pk_position]] = record
                for ordinal in lca_bitmap.and_not(bitmap).iter_set_bits():
                    record = segment.record_at(ordinal)
                    key = record.values[pk_position]
                    if key not in changes and not self.pk_index.contains(branch, key):
                        changes[key] = None
            return changes

        changed_target = changes_vs_lca(target_branch)
        changed_source = changes_vs_lca(source_branch)
        wanted = set(changed_target) | set(changed_source)
        ancestors: dict[int, Record] = {}
        target_bitmaps = self._branch_segment_bitmaps(target_branch)
        source_bitmaps = self._branch_segment_bitmaps(source_branch)
        for segment_id, lca_bitmap in lca_bitmaps.items():
            # Only the LCA tuples whose liveness changed in either branch need
            # to be read (paper Section 3.4: the segment bitmaps reduce the
            # component of the LCA that is scanned).
            touched = lca_bitmap.and_not(
                target_bitmaps.get(segment_id, Bitmap())
            ) | lca_bitmap.and_not(source_bitmaps.get(segment_id, Bitmap()))
            segment = self.segments.get(segment_id)
            for ordinal in touched.iter_set_bits():
                record = segment.record_at(ordinal)
                key = record.values[pk_position]
                if key in wanted:
                    ancestors[key] = record
        return changed_target, changed_source, ancestors

    # -- merge application -----------------------------------------------------------------------

    def _apply_merge_change(
        self, target_branch: str, source_branch: str, key: int, record: Record | None
    ) -> None:
        """Share the source branch's (segment, ordinal) instead of copying.

        When the resolved record is exactly the source branch's current copy,
        the target branch simply gains a live bit in the source copy's segment
        (creating a bitmap column for the target in that segment if needed)
        and the branch-segment index is updated.  Only genuinely merged
        records are appended to the target's head segment.
        """
        if record is None:
            if self.branch_contains_key(target_branch, key):
                self.delete(target_branch, key)
            return
        target_location = self.pk_index.get(target_branch, key)
        if target_location is not None:
            segment_id, ordinal = target_location
            current = self.segments.get(segment_id).record_at(ordinal)
            if current.values == record.values:
                return  # the target already holds the resolved record
        source_location = self.pk_index.get(source_branch, key)
        if source_location is not None:
            segment_id, ordinal = source_location
            source_record = self.segments.get(segment_id).record_at(ordinal)
            if source_record.values == record.values:
                if target_location is not None:
                    old_segment, old_ordinal = target_location
                    self._local_bitmaps[old_segment].clear(old_ordinal, target_branch)
                local = self._local_bitmaps[segment_id]
                if not local.has_branch(target_branch):
                    local.add_branch(target_branch)
                local.set(ordinal, target_branch)
                self._branch_segments[target_branch].add(segment_id)
                self.index_hook.applied(
                    target_branch, key, (segment_id, ordinal), record
                )
                return
        super()._apply_merge_change(target_branch, source_branch, key, record)

    # -- sizes ----------------------------------------------------------------------------------

    def data_size_bytes(self) -> int:
        return self.segments.total_size_bytes()

    def commit_metadata_bytes(self) -> int:
        return sum(history.size_bytes() for history in self._histories.values())

    def bitmap_index_bytes(self) -> int:
        """Combined footprint of all local bitmap indexes."""
        return sum(index.size_bytes() for index in self._local_bitmaps.values())

    def segment_count(self) -> int:
        """Number of segment files (exposed for tests and benchmarks)."""
        return len(self.segments)

    def commit_history_count(self) -> int:
        """Number of (branch, segment) commit history files."""
        return len(self._histories)

    def checkout_commit_bitmaps(self, commit_id: str) -> dict[str, Bitmap]:
        """Reconstruct only the per-segment bitmap snapshots of a commit.

        This is the operation the paper's Table 2 times as "checkout": each
        relevant (branch, segment) history replays its delta chain up to the
        commit, without touching any segment heap file.
        """
        branch = self.graph.get_commit(commit_id).branch
        segment_ids = self._commit_segments.get(commit_id)
        if segment_ids is None:
            raise CommitNotFoundError(
                f"commit {commit_id!r} has no recorded bitmap snapshots"
            )
        snapshots: dict[str, Bitmap] = {}
        for segment_id in segment_ids:
            history = self._histories.get((branch, segment_id))
            if history is not None and commit_id in history:
                snapshots[segment_id] = history.checkout(commit_id)
        return snapshots
