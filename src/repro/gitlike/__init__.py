"""A from-scratch git-like version control baseline.

Section 5.7 of the paper compares Decibel against an implementation of the
Decibel API on top of git, storing the dataset either as one file ("git 1
file") or as one file per tuple ("git file/tup"), in CSV or binary record
formats.  Since this reproduction builds every substrate itself, this package
implements the relevant git mechanics from scratch:

* a content-addressed object store of zlib-compressed loose objects
  (:mod:`~repro.gitlike.object_store`);
* packfiles with delta encoding and a sliding-window ``repack`` that searches
  for good delta bases (:mod:`~repro.gitlike.packfile`) -- the operation whose
  cost the paper highlights;
* a repository layer with trees, commits, branches and checkouts
  (:mod:`~repro.gitlike.repo`);
* an adapter exposing the Decibel storage-engine API on top of the repository
  in the four configurations the paper benchmarks
  (:mod:`~repro.gitlike.engine`).
"""

from repro.gitlike.object_store import ObjectStore
from repro.gitlike.packfile import PackFile, delta_decode, delta_encode
from repro.gitlike.repo import GitLikeRepo
from repro.gitlike.engine import GitRecordFormat, GitStorageLayout, GitVersionedStore

__all__ = [
    "ObjectStore",
    "PackFile",
    "delta_encode",
    "delta_decode",
    "GitLikeRepo",
    "GitVersionedStore",
    "GitStorageLayout",
    "GitRecordFormat",
]
