"""Logical query plans: stage one of the query pipeline.

:func:`lower_query` binds a parsed :class:`~repro.query.parser.SelectQuery`
to the relations of a :class:`~repro.db.database.Decibel` instance and
produces a tree of logical nodes.  The tree says *what* to compute --
version-bound scans, diffs, joins, filters, aggregation, ordering -- without
fixing *how*; :mod:`repro.query.optimizer` rewrites it (predicate pushdown,
``NOT IN`` -> engine ``diff``) and :mod:`repro.query.physical` maps the
optimized tree onto the iterator operators of :mod:`repro.core.operators`.

Plans can also be built directly against a storage engine (no SQL, no
facade), which is how :mod:`repro.bench.queries` routes the paper's four
benchmark queries through the same pipeline users exercise via SQL.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.operators import (
    aggregate_output_column,
    join_schema,
    project_schema,
)
from repro.core.predicates import (
    And,
    ColumnPredicate,
    ModuloPredicate,
    Not,
    Or,
    Predicate,
)
from repro.core.schema import Column, ColumnType, Schema
from repro.errors import QueryError
from repro.query.parser import (
    ColumnComparison,
    OrderKey,
    SelectItem,
    SelectQuery,
    TableRef,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Decibel
    from repro.storage.base import VersionedStorageEngine

#: Hidden column appended to head-scan schemas; it carries the set of
#: branches each record is live in, and is stripped from query results.
BRANCH_COLUMN = "_branches"

#: Aggregate functions the planner accepts in a select list.
AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


def format_predicate(predicate: Predicate) -> str:
    """A compact, readable rendering of a predicate for EXPLAIN output."""
    if isinstance(predicate, ColumnPredicate):
        return f"{predicate.column} {predicate.op} {predicate.value!r}"
    if isinstance(predicate, And):
        return f"{format_predicate(predicate.left)} AND {format_predicate(predicate.right)}"
    if isinstance(predicate, Or):
        return f"({format_predicate(predicate.left)} OR {format_predicate(predicate.right)})"
    if isinstance(predicate, Not):
        return f"NOT ({format_predicate(predicate.inner)})"
    if isinstance(predicate, ModuloPredicate):
        return f"{predicate.column} % {predicate.modulus} != 0"
    return repr(predicate)


class LogicalNode:
    """Base class: a plan node with children, an output schema, and a label."""

    def __init__(self, children: list["LogicalNode"], schema: Schema):
        self.children = list(children)
        self.schema = schema

    def label(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError


class VersionScan(LogicalNode):
    """Scan one version (a branch head or a historical commit) of a relation.

    ``predicate`` starts empty; the optimizer's pushdown rule attaches column
    predicates here so they reach the engine's ``scan_branch``/``scan_commit``
    calls instead of being applied in a separate filter pass.
    """

    def __init__(
        self,
        engine: "VersionedStorageEngine",
        relation: str,
        alias: str,
        kind: str,
        version: str,
        predicate: Predicate | None = None,
    ):
        super().__init__([], engine.schema)
        self.engine = engine
        self.relation = relation
        self.alias = alias
        self.kind = kind  # "branch" or "commit"
        self.version = version
        self.predicate = predicate
        #: Set by the optimizer's projection-pushdown pass: the subset of
        #: relation columns this scan must decode (schema order).  ``None``
        #: means all columns; when set, ``schema`` is the projected schema.
        self.columns: tuple[str, ...] | None = None

    def attach_predicate(self, predicate: Predicate) -> None:
        """AND ``predicate`` into the scan's pushed-down predicate."""
        self.predicate = (
            predicate if self.predicate is None else (self.predicate & predicate)
        )

    def label(self) -> str:
        text = f"VersionScan({self.relation}@{self.version!r} {self.kind}"
        if self.predicate is not None:
            text += f", predicate=[{format_predicate(self.predicate)}]"
        if self.columns is not None:
            text += f", columns=[{', '.join(self.columns)}]"
        return text + ")"


class IndexScan(LogicalNode):
    """Probe an index for a scan's driving predicate term, then late-fetch.

    Produced by the optimizer from a branch-head :class:`VersionScan` whose
    pushed-down predicate contains a conjunct an index can answer (primary
    key equality, or equality/range on a declared secondary-index column)
    with an estimated match fraction below the selection threshold.  The
    physical operator looks up matching primary keys in the index, fetches
    only those records (late materialization), and re-applies the *full*
    scan predicate, so the rewrite is exact even for composite predicates.
    """

    def __init__(
        self,
        engine: "VersionedStorageEngine",
        relation: str,
        alias: str,
        version: str,
        index_column: str,
        op: str,
        value: object,
        predicate: Predicate,
    ):
        super().__init__([], engine.schema)
        self.engine = engine
        self.relation = relation
        self.alias = alias
        self.kind = "branch"  # index chains are versioned against branch heads
        self.version = version
        self.index_column = index_column
        self.op = op
        self.value = value
        self.predicate = predicate

    def label(self) -> str:
        return (
            f"IndexScan({self.relation}@{self.version!r} "
            f"{self.index_column} {self.op} {self.value!r}"
            f", predicate=[{format_predicate(self.predicate)}])"
        )


class HeadScan(LogicalNode):
    """Scan the heads of every branch, annotating records with their branches.

    The output schema is the relation schema plus the hidden
    :data:`BRANCH_COLUMN`, which downstream operators thread through
    unchanged and the result builder converts into branch annotations.
    """

    def __init__(
        self,
        engine: "VersionedStorageEngine",
        relation: str,
        alias: str,
        predicate: Predicate | None = None,
    ):
        columns = engine.schema.columns + (Column(BRANCH_COLUMN, ColumnType.INT),)
        super().__init__([], Schema(columns, primary_key=engine.schema.primary_key))
        self.engine = engine
        self.relation = relation
        self.alias = alias
        self.predicate = predicate

    def attach_predicate(self, predicate: Predicate) -> None:
        """AND ``predicate`` into the scan's pushed-down predicate."""
        self.predicate = (
            predicate if self.predicate is None else (self.predicate & predicate)
        )

    def label(self) -> str:
        text = f"HeadScan({self.relation}"
        if self.predicate is not None:
            text += f", predicate=[{format_predicate(self.predicate)}]"
        return text + ")"


class VersionDiff(LogicalNode):
    """Positive difference of two branch heads via the engine's bitmap diff.

    Produced by the optimizer from the ``NOT IN``-over-same-relation shape
    (SQL key-level semantics: ``include_modified=False`` filters out keys
    present in both versions), or built directly by the benchmark layer with
    ``include_modified=True`` for the paper's content-level Query 2.
    """

    def __init__(
        self,
        engine: "VersionedStorageEngine",
        relation: str,
        outer: tuple[str, str],
        inner: tuple[str, str],
        key_column: str,
        include_modified: bool = False,
    ):
        super().__init__([], engine.schema)
        self.engine = engine
        self.relation = relation
        self.outer = outer  # (kind, version); only branches reach the engine diff
        self.inner = inner
        self.key_column = key_column
        self.include_modified = include_modified

    def label(self) -> str:
        return (
            f"VersionDiff({self.relation}: {self.outer[1]!r} - {self.inner[1]!r}"
            f" on {self.key_column}"
            + (", content-level" if self.include_modified else "")
            + ")"
        )


class AntiJoin(LogicalNode):
    """``NOT IN`` before optimization: outer rows with no inner key match."""

    def __init__(
        self,
        outer: LogicalNode,
        inner: LogicalNode,
        outer_column: str,
        inner_column: str,
    ):
        super().__init__([outer, inner], outer.schema)
        self.outer_column = outer_column
        self.inner_column = inner_column

    @property
    def outer(self) -> LogicalNode:
        return self.children[0]

    @property
    def inner(self) -> LogicalNode:
        return self.children[1]

    def label(self) -> str:
        return f"AntiJoin(outer.{self.outer_column} NOT IN inner.{self.inner_column})"


class Join(LogicalNode):
    """Equi-join of two plans on one or more column pairs."""

    def __init__(
        self,
        left: LogicalNode,
        right: LogicalNode,
        conditions: list[tuple[str, str]],
    ):
        if not conditions:
            raise QueryError("a join requires at least one equi-join condition")
        super().__init__([left, right], join_schema(left.schema, right.schema))
        self.conditions = list(conditions)

    @property
    def left(self) -> LogicalNode:
        return self.children[0]

    @property
    def right(self) -> LogicalNode:
        return self.children[1]

    def label(self) -> str:
        pairs = ", ".join(f"{l} = {r}" for l, r in self.conditions)
        return f"Join({pairs})"


class Filter(LogicalNode):
    """Column comparisons not (yet) pushed into a scan."""

    def __init__(self, child: LogicalNode, terms: list[ColumnComparison]):
        super().__init__([child], child.schema)
        self.terms = list(terms)

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def label(self) -> str:
        rendered = " AND ".join(
            f"{term.column} {term.op} {term.value!r}" for term in self.terms
        )
        return f"Filter({rendered})"


class AggregateExpr:
    """One aggregate of a select list, with its schema-safe output name."""

    def __init__(self, name: str, function: str, argument: str, display: str):
        self.name = name
        self.function = function
        self.argument = argument
        self.display = display


class Aggregate(LogicalNode):
    """Grouped aggregation producing the select list in its written order.

    ``group_by`` lists the grouping columns; ``items`` is the select list in
    order, where plain columns must be grouping columns.  Output column names
    are schema-safe (``count_id``); ``display_names`` carries the user-facing
    spellings (``count(id)``) for the final result.
    """

    def __init__(
        self,
        child: LogicalNode,
        group_by: list[str],
        items: list[SelectItem],
    ):
        self.group_by = list(group_by)
        self.items = list(items)
        self.aggregates: list[AggregateExpr] = []
        out_columns: list[Column] = []
        display_names: list[str] = []
        used_names: set[str] = {
            item.column for item in items if not item.is_aggregate
        }
        output: list[str] = []
        for item in items:
            if item.is_aggregate:
                base = (
                    f"{item.function}_all"
                    if item.argument == "*"
                    else f"{item.function}_{item.argument}"
                )
                name = base
                suffix = 2
                while name in used_names:
                    name = f"{base}_{suffix}"
                    suffix += 1
                used_names.add(name)
                expr = AggregateExpr(
                    name, item.function, item.argument, item.display_name
                )
                self.aggregates.append(expr)
                out_columns.append(
                    aggregate_output_column(
                        name, item.function, item.argument, child.schema
                    )
                )
                display_names.append(item.display_name)
                output.append(name)
            else:
                source = child.schema.column(item.column)
                out_columns.append(Column(item.column, source.type, source.width))
                display_names.append(item.column)
                output.append(item.column)
        super().__init__([child], Schema.derived(tuple(out_columns)))
        self.display_names = display_names
        self.output_names = output

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def safe_name_for(self, item: SelectItem) -> str | None:
        """The schema-safe output name matching ``item``, if it is produced."""
        if not item.is_aggregate:
            return item.column if item.column in self.schema.column_names else None
        for expr in self.aggregates:
            if expr.function == item.function and expr.argument == item.argument:
                return expr.name
        return None

    def label(self) -> str:
        rendered = ", ".join(self.display_names)
        if self.group_by:
            return f"Aggregate([{rendered}] GROUP BY {', '.join(self.group_by)})"
        return f"Aggregate([{rendered}])"


class Project(LogicalNode):
    """Project onto the user's select list (threading the hidden column)."""

    def __init__(self, child: LogicalNode, columns: list[str]):
        self.user_columns = list(columns)
        physical = list(columns)
        if BRANCH_COLUMN in child.schema.column_names:
            physical.append(BRANCH_COLUMN)
        #: Child-schema column names to project, duplicates preserved.
        self.physical_columns = physical
        super().__init__([child], project_schema(child.schema, physical))
        self.display_names = list(columns)

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def label(self) -> str:
        return f"Project({', '.join(self.user_columns)})"


class Distinct(LogicalNode):
    """Drop duplicate output rows."""

    def __init__(self, child: LogicalNode):
        super().__init__([child], child.schema)

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def label(self) -> str:
        return "Distinct"


def _render_keys(keys: list[tuple[str, bool]]) -> str:
    return ", ".join(
        f"{column} {'DESC' if descending else 'ASC'}"
        for column, descending in keys
    )


class Sort(LogicalNode):
    """Order the output by one or more ``(column, descending)`` keys.

    ``budget_bytes`` optionally caps the in-memory footprint of the physical
    sort (records beyond it spill to disk as sorted runs); ``None`` uses
    :data:`repro.core.sort.DEFAULT_SORT_BUDGET_BYTES`.
    """

    def __init__(
        self,
        child: LogicalNode,
        keys: list[tuple[str, bool]],
        budget_bytes: int | None = None,
    ):
        super().__init__([child], child.schema)
        self.keys = list(keys)
        self.budget_bytes = budget_bytes

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def label(self) -> str:
        return f"Sort({_render_keys(self.keys)})"


class TopN(LogicalNode):
    """The first ``n`` rows of a sort order, via a bounded heap.

    Produced by the optimizer whenever a ``Limit`` sits directly above a
    ``Sort`` (possibly through a projection): instead of sorting everything
    and discarding all but ``n`` rows, the physical operator keeps a heap of
    at most ``n`` candidates.  EXPLAIN tags these nodes ``[top-n k=n]`` so
    the rewrite is never silent.
    """

    def __init__(
        self, child: LogicalNode, keys: list[tuple[str, bool]], n: int
    ):
        if n < 0:
            raise QueryError("LIMIT must be non-negative")
        super().__init__([child], child.schema)
        self.keys = list(keys)
        self.n = n

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def label(self) -> str:
        return f"TopN({_render_keys(self.keys)})"


class Limit(LogicalNode):
    """Emit at most ``n`` output rows."""

    def __init__(self, child: LogicalNode, n: int):
        if n < 0:
            raise QueryError("LIMIT must be non-negative")
        super().__init__([child], child.schema)
        self.n = n

    @property
    def child(self) -> LogicalNode:
        return self.children[0]

    def label(self) -> str:
        return f"Limit({self.n})"


# -- plan inspection ------------------------------------------------------------


def result_columns(plan: LogicalNode) -> list[str]:
    """The user-facing output column names of ``plan``."""
    if isinstance(plan, (Sort, TopN, Limit, Distinct)):
        return result_columns(plan.child)
    if isinstance(plan, Filter):
        return result_columns(plan.child)
    if isinstance(plan, (Project, Aggregate)):
        return list(plan.display_names)
    return [name for name in plan.schema.column_names if name != BRANCH_COLUMN]


def render_plan(
    plan: LogicalNode,
    annotations: dict[int, str | list[str]] | None = None,
) -> str:
    """Render a plan as an indented tree, one node per line.

    ``annotations`` optionally maps ``id(node)`` to a short tag -- or a list
    of tags -- each rendered as ``[tag]`` after the node's label (EXPLAIN
    uses this to show each node's rewrites and execution mode).
    """
    lines: list[str] = []

    def _walk(node: LogicalNode, depth: int) -> None:
        label = node.label()
        if annotations is not None:
            tags = annotations.get(id(node))
            if tags:
                if isinstance(tags, str):
                    tags = [tags]
                label += "".join(f" [{tag}]" for tag in tags)
        lines.append("  " * depth + label)
        for child in node.children:
            _walk(child, depth + 1)

    _walk(plan, 0)
    return "\n".join(lines)


# -- lowering --------------------------------------------------------------------


def lower_query(db: "Decibel", query: SelectQuery) -> LogicalNode:
    """Lower a parsed query into an (unoptimized) logical plan."""
    if len(query.tables) > 2:
        raise QueryError(
            "queries over more than two table references are not supported"
        )
    if query.head_conditions:
        plan = _lower_head(db, query)
    elif query.not_in_subqueries:
        plan = _lower_not_in(db, query)
    elif len(query.tables) == 2:
        plan = _lower_join(db, query)
    else:
        plan = _lower_single(db, query)
    plan = _apply_filter(db, plan, query)
    source = plan  # the pre-projection plan; ORDER BY keys may resolve here
    plan = _apply_select(plan, query)
    if query.distinct:
        plan = Distinct(plan)
    plan = _apply_order(plan, source, query)
    if query.limit is not None:
        plan = Limit(plan, query.limit)
    return plan


def _resolve_version(relation, version: str) -> tuple[str, str]:
    """A version string may name a branch or a commit id."""
    graph = relation.graph
    if graph.has_branch(version):
        return ("branch", version)
    if graph.has_commit(version):
        return ("commit", version)
    raise QueryError(
        f"{version!r} is neither a branch nor a commit of {relation.name!r}"
    )


def _scan_for(db: "Decibel", table: TableRef, version: str | None) -> VersionScan:
    relation = db.relation(table.relation)
    if version is None:
        raise QueryError(
            "a single-table query must bind the table to a version "
            "(R.Version = '...') or use HEAD(R.Version)"
        )
    kind, name = _resolve_version(relation, version)
    return VersionScan(relation.engine, table.relation, table.alias, kind, name)


def _lower_single(db: "Decibel", query: SelectQuery) -> LogicalNode:
    table = query.tables[0]
    return _scan_for(db, table, query.version_for(table.alias))


def _lower_head(db: "Decibel", query: SelectQuery) -> LogicalNode:
    if len(query.tables) != 1:
        raise QueryError("HEAD() queries must reference exactly one table")
    if query.not_in_subqueries:
        raise QueryError("HEAD() cannot be combined with NOT IN")
    head = query.head_conditions[0]
    if not head.value:
        raise QueryError("HEAD(R.Version) = false is not a meaningful query")
    table = query.tables[0]
    relation = db.relation(table.relation)
    return HeadScan(relation.engine, table.relation, table.alias)


def _lower_not_in(db: "Decibel", query: SelectQuery) -> LogicalNode:
    if len(query.tables) != 1 or len(query.not_in_subqueries) != 1:
        raise QueryError("NOT IN queries must have exactly one outer table")
    sub = query.not_in_subqueries[0]
    subquery = sub.subquery
    if len(subquery.tables) != 1:
        raise QueryError("NOT IN subqueries must reference exactly one table")
    if (
        subquery.aggregates
        or subquery.group_by
        or subquery.order_by
        or subquery.limit is not None
        or subquery.head_conditions
        or subquery.not_in_subqueries
    ):
        raise QueryError("NOT IN subqueries must be simple version-bound scans")
    outer_table = query.tables[0]
    inner_table = subquery.tables[0]
    outer = _scan_for(db, outer_table, query.version_for(outer_table.alias))
    inner = _scan_for(db, inner_table, subquery.version_for(inner_table.alias))
    if subquery.is_star:
        inner_column = sub.column
    elif len(subquery.columns) == 1:
        inner_column = subquery.columns[0]
    else:
        raise QueryError("NOT IN subqueries must select exactly one column")
    for name, schema in ((sub.column, outer.schema), (inner_column, inner.schema)):
        if name not in schema.column_names:
            raise QueryError(f"unknown column {name!r} in NOT IN condition")
    plan: LogicalNode = AntiJoin(outer, inner, sub.column, inner_column)
    if subquery.column_comparisons:
        plan.children[1] = _apply_filter(db, inner, subquery)
    return plan


def _lower_join(db: "Decibel", query: SelectQuery) -> LogicalNode:
    if not query.join_conditions:
        raise QueryError("two-table queries must have a join condition")
    aliases = {table.alias: table for table in query.tables}
    first = query.join_conditions[0]
    left_table = _table_by_alias(query, first.left_alias)
    right_table = _table_by_alias(query, first.right_alias)
    conditions: list[tuple[str, str]] = []
    for join in query.join_conditions:
        if (join.left_alias, join.right_alias) == (
            left_table.alias,
            right_table.alias,
        ):
            conditions.append((join.left_column, join.right_column))
        elif (join.left_alias, join.right_alias) == (
            right_table.alias,
            left_table.alias,
        ):
            conditions.append((join.right_column, join.left_column))
        else:
            raise QueryError(
                f"join condition {join.left_alias}.{join.left_column} = "
                f"{join.right_alias}.{join.right_column} does not match the "
                f"joined tables {left_table.alias!r} and {right_table.alias!r}"
            )
    if len(aliases) != 2:
        raise QueryError("a join requires two distinct table aliases")
    left = _scan_for(db, left_table, query.version_for(left_table.alias))
    right = _scan_for(db, right_table, query.version_for(right_table.alias))
    for left_column, right_column in conditions:
        if left_column not in left.schema.column_names:
            raise QueryError(f"unknown column {left_column!r} in join condition")
        if right_column not in right.schema.column_names:
            raise QueryError(f"unknown column {right_column!r} in join condition")
    return Join(left, right, conditions)


def _table_by_alias(query: SelectQuery, alias: str) -> TableRef:
    for table in query.tables:
        if table.alias == alias:
            return table
    raise QueryError(f"unknown table alias {alias!r} in join condition")


def _apply_filter(
    db: "Decibel", plan: LogicalNode, query: SelectQuery
) -> LogicalNode:
    if not query.column_comparisons:
        return plan
    table_schemas = {
        table.alias: db.relation(table.relation).schema for table in query.tables
    }
    for comparison in query.column_comparisons:
        if comparison.alias is not None:
            if comparison.alias not in table_schemas:
                raise QueryError(
                    f"unknown table alias {comparison.alias!r} in predicate"
                )
            schemas = [table_schemas[comparison.alias]]
        else:
            schemas = list(table_schemas.values())
        for schema in schemas:
            if comparison.column not in schema.column_names:
                raise QueryError(
                    f"unknown column {comparison.column!r} in predicate"
                )
    return Filter(plan, query.column_comparisons)


def _apply_select(plan: LogicalNode, query: SelectQuery) -> LogicalNode:
    if query.group_by or query.aggregates:
        if query.is_star:
            raise QueryError(
                "SELECT * cannot be combined with GROUP BY or aggregates"
            )
        for item in query.select_items:
            if item.is_aggregate:
                if item.function not in AGGREGATE_FUNCTIONS:
                    raise QueryError(
                        f"unsupported aggregate function: {item.function!r}"
                    )
                if item.argument != "*" and (
                    item.argument not in plan.schema.column_names
                ):
                    raise QueryError(
                        f"unknown column {item.argument!r} in aggregate"
                    )
            elif item.column not in query.group_by:
                raise QueryError(
                    f"column {item.column!r} must appear in GROUP BY"
                )
        for column in query.group_by:
            if column not in plan.schema.column_names:
                raise QueryError(f"unknown column {column!r} in GROUP BY")
        return Aggregate(plan, query.group_by, query.select_items)
    if query.is_star:
        return plan
    for column in query.columns:
        if column not in plan.schema.column_names:
            raise QueryError(f"unknown column {column!r} in select list")
    return Project(plan, query.columns)


def _apply_order(
    plan: LogicalNode, source: LogicalNode, query: SelectQuery
) -> LogicalNode:
    """Attach the ORDER BY, threading keys through the projection if needed.

    Standard SQL sorts *before* projecting, so ``SELECT id ... ORDER BY v``
    is legal even though ``v`` is not in the select list.  When every key is
    available in the projected output the sort stays above the projection
    (the historical plan shape); when a key only exists in the
    pre-projection ``source`` schema, the sort is placed *below* the
    projection instead -- which also lets the optimizer's Top-N rewrite run
    directly over raw scan batches.
    """
    if not query.order_by:
        return plan
    keys: list[tuple[str, bool]] = []
    sort_below_project = False
    aggregate = _find_aggregate(plan)
    for key in query.order_by:
        name, needs_source = _resolve_order_item(plan, source, aggregate, key, query)
        keys.append((name, key.descending))
        sort_below_project = sort_below_project or needs_source
    if not sort_below_project:
        return Sort(plan, keys)
    # Only reachable for a bare projection (no aggregate, no DISTINCT); the
    # whole key list must then resolve against the pre-projection schema.
    for name, _ in keys:
        if name not in source.schema.column_names:
            raise QueryError(
                f"ORDER BY column {name!r} mixes projected-only names with "
                "non-projected columns"
            )
    if not isinstance(plan, Project):  # pragma: no cover - defensive
        raise QueryError(
            "ORDER BY on a non-projected column requires a plain projection"
        )
    return Project(Sort(source, keys), plan.user_columns)


def _find_aggregate(plan: LogicalNode) -> Aggregate | None:
    node = plan
    while isinstance(node, (Sort, TopN, Limit, Distinct, Filter)):
        node = node.children[0]
    return node if isinstance(node, Aggregate) else None


def _resolve_order_item(
    plan: LogicalNode,
    source: LogicalNode,
    aggregate: Aggregate | None,
    key: OrderKey,
    query: SelectQuery,
) -> tuple[str, bool]:
    """Resolve one ORDER BY key to a column name.

    Returns ``(name, needs_source)`` where ``needs_source`` is True when the
    key is only available in the pre-projection schema (the sort must then
    run below the projection).
    """
    item = key.item
    if item.is_aggregate:
        if aggregate is None:
            raise QueryError(
                f"ORDER BY {item.display_name} requires that aggregate in the "
                "select list"
            )
        name = aggregate.safe_name_for(item)
        if name is None:
            raise QueryError(
                f"ORDER BY {item.display_name} must match an aggregate in the "
                "select list"
            )
        return name, False
    if item.column in plan.schema.column_names:
        return item.column, False
    if aggregate is not None:
        raise QueryError(
            f"ORDER BY column {item.column!r} must be a grouping column or an "
            "aggregate of the select list"
        )
    if query.distinct:
        raise QueryError(
            f"ORDER BY column {item.column!r} must be in the SELECT DISTINCT "
            "list"
        )
    if item.column in source.schema.column_names:
        return item.column, True
    raise QueryError(f"unknown column {item.column!r} in ORDER BY")
