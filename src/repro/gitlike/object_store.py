"""Content-addressed object storage (git's loose objects).

Every object is addressed by the SHA-1 of its contents (prefixed, as in git,
with a small header naming the object type and length) and stored
zlib-compressed in a two-level directory layout (``objects/ab/cdef...``).
The paper attributes part of git's cost to exactly this mechanism: every
commit hashes and compresses entire objects, with cost proportional to the
dataset size.
"""

from __future__ import annotations

import hashlib
import os
import zlib

from repro.errors import StorageError


class ObjectStore:
    """Loose, zlib-compressed, SHA-1 addressed objects on disk."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        #: Cheap in-memory presence cache to avoid repeated stat calls.
        self._known: set[str] = set()
        self._scan_existing()

    def _scan_existing(self) -> None:
        for prefix in os.listdir(self.directory):
            subdir = os.path.join(self.directory, prefix)
            if len(prefix) == 2 and os.path.isdir(subdir):
                for rest in os.listdir(subdir):
                    self._known.add(prefix + rest)

    # -- hashing ------------------------------------------------------------------

    @staticmethod
    def hash_object(data: bytes, object_type: str = "blob") -> str:
        """The SHA-1 id git would assign to ``data`` of ``object_type``."""
        header = f"{object_type} {len(data)}\x00".encode("ascii")
        return hashlib.sha1(header + data).hexdigest()

    # -- storage -------------------------------------------------------------------

    def _path(self, object_id: str) -> str:
        return os.path.join(self.directory, object_id[:2], object_id[2:])

    def put(self, data: bytes, object_type: str = "blob") -> str:
        """Store ``data`` and return its object id (idempotent)."""
        object_id = self.hash_object(data, object_type)
        if object_id in self._known:
            return object_id
        path = self._path(object_id)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        header = f"{object_type} {len(data)}\x00".encode("ascii")
        with open(path, "wb") as handle:
            handle.write(zlib.compress(header + data))
        self._known.add(object_id)
        return object_id

    def get(self, object_id: str) -> bytes:
        """Fetch an object's payload (without the type header)."""
        path = self._path(object_id)
        if not os.path.exists(path):
            raise StorageError(f"object {object_id} not found")
        with open(path, "rb") as handle:
            raw = zlib.decompress(handle.read())
        null = raw.index(b"\x00")
        return raw[null + 1 :]

    def object_type(self, object_id: str) -> str:
        """The type recorded in an object's header."""
        path = self._path(object_id)
        if not os.path.exists(path):
            raise StorageError(f"object {object_id} not found")
        with open(path, "rb") as handle:
            raw = zlib.decompress(handle.read())
        header = raw[: raw.index(b"\x00")].decode("ascii")
        return header.split(" ", 1)[0]

    def contains(self, object_id: str) -> bool:
        """True if the object exists as a loose object."""
        return object_id in self._known

    def remove(self, object_id: str) -> None:
        """Delete a loose object (after it has been packed)."""
        path = self._path(object_id)
        if os.path.exists(path):
            os.remove(path)
        self._known.discard(object_id)

    # -- enumeration / sizes --------------------------------------------------------

    def all_ids(self) -> list[str]:
        """Ids of every loose object."""
        return sorted(self._known)

    def __len__(self) -> int:
        return len(self._known)

    def size_bytes(self) -> int:
        """Total on-disk size of all loose objects."""
        total = 0
        for object_id in self._known:
            path = self._path(object_id)
            if os.path.exists(path):
                total += os.path.getsize(path)
        return total
