"""Records and their fixed-width binary encoding.

A :class:`Record` is an immutable tuple of values conforming to a
:class:`~repro.core.schema.Schema`.  Records are identified across versions by
their primary key (paper Section 2.2.1): updating a record produces a new
physical copy with the same key, and deleting one leaves a tombstone in
layouts that need it.

The :class:`RecordCodec` packs records into the fixed-width byte layout used
by pages, heap files and segment files.  A one-byte header precedes the
payload; bit 0 marks tombstones (used by the version-first layout for
deletes).
"""

from __future__ import annotations

import struct
from array import array
from dataclasses import dataclass

from repro.core.schema import ColumnType, Schema
from repro.errors import RecordError

_HEADER_TOMBSTONE = 0x01


@dataclass(frozen=True)
class Record:
    """A single relational record.

    Parameters
    ----------
    values:
        Tuple of column values in schema order.
    tombstone:
        True if this record marks the deletion of its primary key (only the
        key column is meaningful for tombstones).
    """

    values: tuple
    tombstone: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))

    def key(self, schema: Schema) -> int:
        """The primary key value of this record under ``schema``."""
        return self.values[schema.primary_key_index]

    def value(self, schema: Schema, column: str):
        """The value of ``column`` under ``schema``."""
        return self.values[schema.index_of(column)]

    def replace(self, schema: Schema, **updates) -> "Record":
        """A copy of this record with the named columns replaced."""
        values = list(self.values)
        for name, new_value in updates.items():
            values[schema.index_of(name)] = new_value
        return Record(tuple(values), tombstone=self.tombstone)

    def as_dict(self, schema: Schema) -> dict:
        """The record as a ``{column name: value}`` mapping."""
        return dict(zip(schema.column_names, self.values))

    @classmethod
    def deleted(cls, schema: Schema, key: int) -> "Record":
        """A tombstone record for ``key``: payload columns are zeroed."""
        values = []
        for i, column in enumerate(schema.columns):
            if i == schema.primary_key_index:
                values.append(key)
            elif column.type is ColumnType.STRING:
                values.append("")
            else:
                values.append(0)
        return cls(tuple(values), tombstone=True)


class RecordCodec:
    """Fixed-width binary encoder/decoder for records of one schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        fmt = ["B"]  # header byte
        fmt.extend(self._column_fmt(column) for column in schema.columns)
        #: Format of one record, without byte-order prefix (repeatable for
        #: batch decoding).
        self._record_fmt = "".join(fmt)
        self._struct = struct.Struct("<" + self._record_fmt)
        #: Fields per record in unpacked output: header plus one per column.
        self._fields_per_record = 1 + len(schema.columns)
        #: Positions (within a values tuple) of STRING columns needing
        #: NUL-strip + UTF-8 decode after a raw unpack.
        self._string_positions = tuple(
            i
            for i, column in enumerate(schema.columns)
            if column.type is ColumnType.STRING
        )
        #: Precompiled batch formats keyed by record count (bounded cache; a
        #: page's full capacity dominates, so hit rates are high).
        self._batch_structs: dict[int, struct.Struct] = {}
        #: Byte offset of each column within an encoded record (header first).
        offsets = []
        position = 1  # header byte
        for column in schema.columns:
            offsets.append(position)
            position += struct.calcsize("<" + self._column_fmt(column))
        self._column_offsets = tuple(offsets)
        #: Precompiled single-column batch formats keyed by
        #: ``(column index, record count)`` (bounded, like the batch cache).
        self._column_structs: dict[tuple[int, int], struct.Struct] = {}

    @staticmethod
    def _column_fmt(column) -> str:
        if column.type is ColumnType.INT:
            return "q"
        if column.type is ColumnType.INT32:
            return "i"
        return f"{column.width}s"

    @property
    def record_size(self) -> int:
        """Encoded size in bytes of one record, including the header byte."""
        return self._struct.size

    def encode(self, record: Record) -> bytes:
        """Encode ``record`` to its fixed-width byte representation."""
        self.schema.validate_values(record.values)
        header = _HEADER_TOMBSTONE if record.tombstone else 0
        packed_values = []
        for column, value in zip(self.schema.columns, record.values):
            if column.type is ColumnType.STRING:
                packed_values.append(value.encode("utf-8"))
            else:
                packed_values.append(value)
        try:
            return self._struct.pack(header, *packed_values)
        except struct.error as exc:  # pragma: no cover - guarded by validate
            raise RecordError(f"cannot encode record {record!r}: {exc}") from exc

    def decode(self, data: bytes, offset: int = 0) -> Record:
        """Decode one record from ``data`` starting at ``offset``."""
        try:
            unpacked = self._struct.unpack_from(data, offset)
        except struct.error as exc:
            raise RecordError(
                f"cannot decode record at offset {offset}: {exc}"
            ) from exc
        header, raw_values = unpacked[0], unpacked[1:]
        values = []
        for column, raw in zip(self.schema.columns, raw_values):
            if column.type is ColumnType.STRING:
                values.append(raw.rstrip(b"\x00").decode("utf-8"))
            else:
                values.append(raw)
        return Record(tuple(values), tombstone=bool(header & _HEADER_TOMBSTONE))

    def _batch_struct(self, count: int) -> struct.Struct:
        batch = self._batch_structs.get(count)
        if batch is None:
            batch = struct.Struct("<" + self._record_fmt * count)
            if len(self._batch_structs) < 64:
                self._batch_structs[count] = batch
        return batch

    def decode_batch(
        self, data: bytes, offset: int = 0, count: int | None = None
    ) -> list[Record]:
        """Decode ``count`` consecutive records in a single unpack sweep.

        The whole run is unpacked with one precompiled ``struct`` format
        (the record format repeated ``count`` times), so per-record Python
        work is limited to slicing the flat value tuple -- the page-batch
        decode path of the vectorized scan pipeline.  With ``count=None``
        the rest of the buffer is decoded.
        """
        size = self.record_size
        if count is None:
            count = (len(data) - offset) // size
        if count <= 0:
            return []
        try:
            flat = self._batch_struct(count).unpack_from(data, offset)
        except struct.error as exc:
            raise RecordError(
                f"cannot decode {count} records at offset {offset}: {exc}"
            ) from exc
        fields = self._fields_per_record
        strings = self._string_positions
        records = []
        append = records.append
        if not strings:
            for base in range(0, count * fields, fields):
                append(
                    Record(
                        flat[base + 1 : base + fields],
                        tombstone=bool(flat[base] & _HEADER_TOMBSTONE),
                    )
                )
            return records
        for base in range(0, count * fields, fields):
            values = list(flat[base + 1 : base + fields])
            for position in strings:
                values[position] = values[position].rstrip(b"\x00").decode("utf-8")
            append(
                Record(
                    tuple(values), tombstone=bool(flat[base] & _HEADER_TOMBSTONE)
                )
            )
        return records

    def decode_batch_columns(
        self, data: bytes, offset: int = 0, count: int | None = None
    ) -> tuple:
        """Decode ``count`` consecutive records straight into typed columns.

        One precompiled batch unpack produces the flat field tuple, then each
        column is extracted with a single C-level strided slice
        (``flat[1 + j :: fields]``) -- no per-record tuple or object is ever
        built.  Integer columns come back as ``array('q')``/``array('i')``,
        STRING columns as lists of decoded ``str``.  Returns one container
        per schema column, in schema order.

        Tombstone headers are not surfaced: callers that need per-record
        tombstones (the version-first chain walk) decode rows via
        :meth:`decode_batch`.  Columnar scan paths only ever see live
        ordinals, selected through the bitmap / pk-index before gathering.
        """
        size = self.record_size
        if count is None:
            count = (len(data) - offset) // size
        if count <= 0:
            return tuple(
                [] if column.type is ColumnType.STRING else array(
                    column.type.typecode or "q"
                )
                for column in self.schema.columns
            )
        try:
            flat = self._batch_struct(count).unpack_from(data, offset)
        except struct.error as exc:
            raise RecordError(
                f"cannot decode {count} records at offset {offset}: {exc}"
            ) from exc
        fields = self._fields_per_record
        columns = []
        for j, column in enumerate(self.schema.columns):
            raw = flat[1 + j :: fields]
            typecode = column.type.typecode
            if typecode is None:
                columns.append(
                    [value.rstrip(b"\x00").decode("utf-8") for value in raw]
                )
            else:
                columns.append(array(typecode, raw))
        return tuple(columns)

    def _column_struct(self, index: int, count: int) -> struct.Struct:
        key = (index, count)
        batch = self._column_structs.get(key)
        if batch is None:
            fmt = self._column_fmt(self.schema.columns[index])
            pre = self._column_offsets[index]
            post = self.record_size - pre - struct.calcsize("<" + fmt)
            batch = struct.Struct("<" + f"{pre}x{fmt}{post}x" * count)
            if len(self._column_structs) < 64:
                self._column_structs[key] = batch
        return batch

    def decode_column(
        self, data: bytes, index: int, offset: int = 0, count: int | None = None
    ):
        """Decode a single column of ``count`` consecutive records.

        One batch unpack whose format pads over every other field, so only
        column ``index``'s values are materialized -- the late-material-
        ization half of the columnar predicate scan: the predicate column
        decodes alone, and the remaining columns are decoded only for the
        records the selection keeps.  Returns the same container shape as
        one element of :meth:`decode_batch_columns`.
        """
        size = self.record_size
        if count is None:
            count = (len(data) - offset) // size
        column = self.schema.columns[index]
        typecode = column.type.typecode
        if count <= 0:
            return [] if typecode is None else array(typecode)
        try:
            raw = self._column_struct(index, count).unpack_from(data, offset)
        except struct.error as exc:
            raise RecordError(
                f"cannot decode column {index} of {count} records at "
                f"offset {offset}: {exc}"
            ) from exc
        if typecode is None:
            return [value.rstrip(b"\x00").decode("utf-8") for value in raw]
        return array(typecode, raw)

    def decode_many(self, data: bytes) -> list[Record]:
        """Decode a buffer that is an exact concatenation of records."""
        size = self.record_size
        if len(data) % size != 0:
            raise RecordError(
                f"buffer length {len(data)} is not a multiple of record size {size}"
            )
        return self.decode_batch(data, 0, len(data) // size)
