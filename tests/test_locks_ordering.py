"""LockManager fairness and canonical lock-ordering tests.

Runtime evidence backing two static rules: the plan for writer fairness
(a writer queued behind readers is eventually granted -- new readers no
longer overtake it), and the canonical sorted acquisition order enforced by
lint rule REPRO005 (sorted order cannot deadlock; opposite orders do, and
the manager detects it rather than hanging).
"""

from __future__ import annotations

import threading

from repro.core.locks import LockManager, LockMode
from repro.errors import TransactionError


def start(target) -> threading.Thread:
    thread = threading.Thread(target=target, daemon=True)
    thread.start()
    return thread


class TestWriterFairness:
    def test_writer_behind_readers_eventually_granted(self):
        manager = LockManager(timeout=5.0)
        manager.acquire(1, "branch:a", LockMode.SHARED)
        manager.acquire(2, "branch:a", LockMode.SHARED)

        writer_granted = threading.Event()

        def writer():
            manager.acquire(3, "branch:a", LockMode.EXCLUSIVE)
            writer_granted.set()

        thread = start(writer)
        # The writer is queued behind the two readers.
        assert not writer_granted.wait(0.1)

        manager.release_all(1)
        manager.release_all(2)
        assert writer_granted.wait(2.0), "writer starved behind readers"
        thread.join(2.0)
        assert manager.holds(3, "branch:a", LockMode.EXCLUSIVE)

    def test_new_reader_queues_behind_waiting_writer(self):
        manager = LockManager(timeout=5.0)
        manager.acquire(1, "branch:a", LockMode.SHARED)

        writer_granted = threading.Event()
        late_reader_granted = threading.Event()
        order: list[str] = []

        def writer():
            manager.acquire(2, "branch:a", LockMode.EXCLUSIVE)
            order.append("writer")
            writer_granted.set()

        writer_thread = start(writer)
        assert not writer_granted.wait(0.15)  # writer is now queued

        def late_reader():
            manager.acquire(3, "branch:a", LockMode.SHARED)
            order.append("reader")
            late_reader_granted.set()

        reader_thread = start(late_reader)
        # Without fairness the late reader would join holder 1 immediately
        # and keep the writer starved; with it, the reader waits too.
        assert not late_reader_granted.wait(0.15)

        manager.release_all(1)
        assert writer_granted.wait(2.0), "writer starved by late reader"
        manager.release_all(2)
        assert late_reader_granted.wait(2.0)
        writer_thread.join(2.0)
        reader_thread.join(2.0)
        assert order == ["writer", "reader"]

    def test_existing_reader_can_reacquire_past_waiting_writer(self):
        # Re-granting a lock the reader already holds must not block behind
        # the fairness rule (it is not a *new* reader).
        manager = LockManager(timeout=5.0)
        manager.acquire(1, "branch:a", LockMode.SHARED)

        writer_granted = threading.Event()

        def writer():
            manager.acquire(2, "branch:a", LockMode.EXCLUSIVE)
            writer_granted.set()

        thread = start(writer)
        threading.Event().wait(0.1)  # let the writer queue
        manager.acquire(1, "branch:a", LockMode.SHARED)  # re-grant: immediate
        assert manager.holds(1, "branch:a", LockMode.SHARED)
        manager.release_all(1)
        assert writer_granted.wait(2.0)
        thread.join(2.0)


class TestCanonicalOrdering:
    """Sorted acquisition order cannot deadlock; opposite orders can."""

    RESOURCES = ["branch:a", "branch:b"]

    def _run_pair(self, first_order, second_order, barrier=None):
        """Two transactions acquiring two locks; returns the errors raised.

        With ``barrier``, each transaction holds its first lock until both
        have it -- the classic hold-and-wait interleaving.
        """
        manager = LockManager(timeout=2.0)
        errors: list[TransactionError] = []
        lock = threading.Lock()

        def transaction(txid: int, resources):
            try:
                manager.acquire(txid, resources[0], LockMode.EXCLUSIVE)
                if barrier is not None:
                    barrier.wait()
                manager.acquire(txid, resources[1], LockMode.EXCLUSIVE)
            except TransactionError as exc:
                with lock:
                    errors.append(exc)
            finally:
                manager.release_all(txid)

        threads = [
            start(lambda: transaction(1, first_order)),
            start(lambda: transaction(2, second_order)),
        ]
        for thread in threads:
            thread.join(10.0)
        return errors

    def test_sorted_order_never_deadlocks(self):
        # Sorted acquisition makes hold-and-wait impossible: both
        # transactions contend on the *first* resource, so the loser waits
        # there holding nothing and the winner runs to completion.
        errors = self._run_pair(sorted(self.RESOURCES), sorted(self.RESOURCES))
        assert errors == []

    def test_opposite_orders_deadlock_and_are_detected(self):
        # Opposite orders + hold-and-wait (the barrier guarantees both hold
        # their first lock) is the textbook deadlock; the manager must
        # detect it (or time out) rather than hang.
        barrier = threading.Barrier(2, timeout=5.0)
        errors = self._run_pair(
            sorted(self.RESOURCES),
            sorted(self.RESOURCES, reverse=True),
            barrier=barrier,
        )
        assert len(errors) >= 1
        assert any(
            "deadlock" in str(exc) or "timeout" in str(exc) for exc in errors
        )

    def test_commit_path_uses_sorted_order(self):
        # The discipline REPRO005 lints for, verified against the real
        # transaction code: multi-branch commits take locks in sorted order.
        import ast
        import inspect

        from repro.core.transactions import Transaction

        source = inspect.getsource(Transaction.commit)
        tree = ast.parse("class _T:\n" + source.replace("\n", "\n "))
        sorted_loops = [
            node
            for node in ast.walk(tree)
            if isinstance(node, ast.For)
            and isinstance(node.iter, ast.Call)
            and isinstance(node.iter.func, ast.Name)
            and node.iter.func.id == "sorted"
        ]
        assert sorted_loops, "commit() no longer iterates sorted branches"
