"""Iterator-style query operators.

Decibel delegates general SQL processing (joins, aggregates) to the query
layer of the host database while its storage engines expose iterators over
single versions of a dataset (paper Section 2.1).  These operators mirror
that split: each takes child iterators of :class:`~repro.core.record.Record`
objects and produces records lazily, so benchmark queries and the small SQL
executor can be composed out of them regardless of which storage engine the
records came from.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator, Sequence

from operator import itemgetter

from repro.core.predicates import Predicate, compile_predicate
from repro.core.record import Record
from repro.core.schema import Column, ColumnType, Schema
from repro.errors import QueryError

#: Records per batch moved between batch-aware operators.
DEFAULT_BATCH_SIZE = 1024


def chunk_iterable(items: Iterable, batch_size: int) -> Iterator[list]:
    """Group an iterable into lists of at most ``batch_size`` items.

    The shared fallback used wherever a tuple-at-a-time source must present
    the batch protocol; flattening the chunks reproduces the iteration
    exactly.
    """
    batch: list = []
    append = batch.append
    for item in items:
        append(item)
        if len(batch) >= batch_size:
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


def join_schema(left: Schema, right: Schema) -> Schema:
    """The output schema of an equi-join: left columns then right columns.

    Right-side column names that collide with a left-side name are suffixed
    with ``_r``, which matches how the benchmark's Query 3 joins a relation
    with itself across two versions.
    """
    left_names = set(left.column_names)
    out_columns: list[Column] = list(left.columns)
    for column in right.columns:
        name = column.name if column.name not in left_names else f"{column.name}_r"
        out_columns.append(
            Column(name, column.type, column.width)
            if column.type is ColumnType.STRING
            else Column(name, column.type)
        )
    return Schema(tuple(out_columns), primary_key=left.primary_key)


def _as_columns(columns: str | Sequence[str]) -> list[str]:
    """Normalize a join-key spec (one name or a sequence) to a list."""
    if isinstance(columns, str):
        return [columns]
    return list(columns)


def aggregate_output_column(
    name: str, function: str, argument: str, child_schema: Schema
) -> Column:
    """The output column of one aggregate expression.

    ``count`` (and ``count(*)``) produce INT; other functions inherit the
    argument column's type, except STRING arguments which fall back to INT.
    This is the single source of truth for aggregate output typing, shared
    by the logical planner and the physical operator.
    """
    if function == "count" or argument == "*":
        return Column(name, ColumnType.INT)
    source = child_schema.column(argument)
    agg_type = ColumnType.INT if source.type is ColumnType.STRING else source.type
    return Column(name, agg_type)


class Operator:
    """Base class: an operator is an iterable of records with a schema.

    Operators expose two equivalent consumption modes: :meth:`__iter__`
    yields records one at a time (the original Volcano-style contract), and
    :meth:`batches` yields the same records, in the same order, grouped into
    lists.  Batch-aware operators (scans, filters, projections) override
    :meth:`batches` to move whole lists through the pipeline so the
    per-record interpreter overhead is paid only at pipeline breakers.
    """

    schema: Schema

    def __iter__(self) -> Iterator[Record]:  # pragma: no cover - interface
        raise NotImplementedError

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        """Yield the operator's output as lists of records.

        The default implementation chunks :meth:`__iter__`; flattening the
        batches always reproduces the per-record iteration exactly.
        """
        yield from chunk_iterable(self, batch_size)


class SeqScan(Operator):
    """Sequential scan over any iterable of records (e.g. a branch scan).

    ``batch_source`` may supply an iterable of record *lists* (such as a
    storage engine's ``scan_branch_batched``); it feeds :meth:`batches`
    directly and is flattened for :meth:`__iter__`.  Exactly one of
    ``source``/``batch_source`` is consumed, and like the plain record
    iterator it is single-shot.
    """

    def __init__(
        self,
        source: Iterable[Record] | None,
        schema: Schema,
        batch_source: Iterable[list[Record]] | None = None,
    ):
        self.source = source
        self.schema = schema
        self.batch_source = batch_source

    def __iter__(self) -> Iterator[Record]:
        if self.batch_source is not None:
            for batch in self.batch_source:
                yield from batch
            return
        yield from self.source

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        if self.batch_source is not None:
            yield from self.batch_source
            return
        yield from super().batches(batch_size)


class Filter(Operator):
    """Emit only the child records satisfying a predicate."""

    def __init__(self, child: Operator, predicate: Predicate):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def __iter__(self) -> Iterator[Record]:
        schema = self.schema
        predicate = self.predicate
        for record in self.child:
            if predicate.evaluate(record, schema):
                yield record

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        matches = compile_predicate(self.predicate, self.schema)
        for batch in self.child.batches(batch_size):
            kept = [record for record in batch if matches(record.values)]
            if kept:
                yield kept


def project_schema(child_schema: Schema, columns: Sequence[str]) -> Schema:
    """The output schema of a projection onto ``columns``.

    A column may be listed more than once; repeated names are disambiguated
    positionally (``id``, ``id_2``) since schemas require unique names, while
    the projected values repeat as listed.
    """
    if len(set(columns)) == len(columns):
        return child_schema.project(list(columns))
    out_columns = []
    counts: dict[str, int] = {}
    for name in columns:
        source = child_schema.column(name)
        counts[name] = counts.get(name, 0) + 1
        out_name = name if counts[name] == 1 else f"{name}_{counts[name]}"
        out_columns.append(Column(out_name, source.type, source.width))
    return Schema.derived(tuple(out_columns))


class Project(Operator):
    """Project child records onto a subset of columns (duplicates allowed)."""

    def __init__(self, child: Operator, columns: list[str]):
        self.child = child
        self.columns = list(columns)
        self._indexes = [child.schema.index_of(name) for name in self.columns]
        self.schema = project_schema(child.schema, self.columns)

    def __iter__(self) -> Iterator[Record]:
        for record in self.child:
            yield Record(tuple(record.values[i] for i in self._indexes))

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        indexes = self._indexes
        if len(indexes) == 1:
            only = indexes[0]
            for batch in self.child.batches(batch_size):
                yield [Record((record.values[only],)) for record in batch]
            return
        pick = itemgetter(*indexes)
        for batch in self.child.batches(batch_size):
            yield [Record(pick(record.values)) for record in batch]


class Limit(Operator):
    """Emit at most ``n`` child records."""

    def __init__(self, child: Operator, n: int):
        if n < 0:
            raise QueryError("LIMIT must be non-negative")
        self.child = child
        self.n = n
        self.schema = child.schema

    def __iter__(self) -> Iterator[Record]:
        remaining = self.n
        if remaining == 0:
            return
        for record in self.child:
            yield record
            remaining -= 1
            if remaining == 0:
                return

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        remaining = self.n
        if remaining == 0:
            return
        for batch in self.child.batches(batch_size):
            if len(batch) < remaining:
                yield batch
                remaining -= len(batch)
            else:
                yield batch[:remaining]
                return


class HashJoin(Operator):
    """Equi-join of two operators on one or more columns from each side.

    The build side (left) is materialized into a hash table keyed by the
    tuple of join-column values; the probe side (right) streams.  A composite
    key applies every equi-join condition of a multi-condition join at once.
    The output schema is the concatenation of both input schemas with
    right-side duplicate column names suffixed by ``_r`` (see
    :func:`join_schema`).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_column: str | Sequence[str],
        right_column: str | Sequence[str],
    ):
        self.left = left
        self.right = right
        self.left_columns = _as_columns(left_column)
        self.right_columns = _as_columns(right_column)
        if len(self.left_columns) != len(self.right_columns):
            raise QueryError(
                "join requires the same number of key columns on both sides"
            )
        if not self.left_columns:
            raise QueryError("join requires at least one key column")
        self.schema = join_schema(left.schema, right.schema)

    def __iter__(self) -> Iterator[Record]:
        build_indexes = [self.left.schema.index_of(c) for c in self.left_columns]
        probe_indexes = [self.right.schema.index_of(c) for c in self.right_columns]
        table: dict[tuple, list[Record]] = defaultdict(list)
        for record in self.left:
            key = tuple(record.values[i] for i in build_indexes)
            table[key].append(record)
        for probe in self.right:
            key = tuple(probe.values[i] for i in probe_indexes)
            for match in table.get(key, ()):
                yield Record(match.values + probe.values)


class HashAntiJoin(Operator):
    """Anti semi-join: outer records whose key has no match in the inner side.

    This is the generic fallback for the ``NOT IN`` query shape when the
    optimizer cannot rewrite it to a storage-engine ``diff``: the inner side
    is materialized into a key set, the outer side streams through it.
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        outer_column: str,
        inner_column: str,
    ):
        self.outer = outer
        self.inner = inner
        self.outer_column = outer_column
        self.inner_column = inner_column
        self.schema = outer.schema

    def __iter__(self) -> Iterator[Record]:
        inner_index = self.inner.schema.index_of(self.inner_column)
        outer_index = self.outer.schema.index_of(self.outer_column)
        inner_keys = {record.values[inner_index] for record in self.inner}
        for record in self.outer:
            if record.values[outer_index] not in inner_keys:
                yield record


class OrderBy(Operator):
    """Materialize the child and emit it sorted by one or more keys.

    ``keys`` is a sequence of ``(column, descending)`` pairs.  The sort is
    stable, so secondary keys break ties left to right.
    """

    def __init__(self, child: Operator, keys: Sequence[tuple[str, bool]]):
        if not keys:
            raise QueryError("ORDER BY requires at least one key")
        self.child = child
        self.keys = [(column, bool(descending)) for column, descending in keys]
        self.schema = child.schema
        for column, _ in self.keys:
            self.schema.index_of(column)

    def __iter__(self) -> Iterator[Record]:
        records = list(self.child)
        for column, descending in reversed(self.keys):
            index = self.schema.index_of(column)
            records.sort(key=lambda r, i=index: r.values[i], reverse=descending)
        yield from records


class Distinct(Operator):
    """Drop duplicate rows, keeping the first occurrence of each."""

    def __init__(self, child: Operator):
        self.child = child
        self.schema = child.schema

    def __iter__(self) -> Iterator[Record]:
        seen: set[tuple] = set()
        for record in self.child:
            if record.values not in seen:
                seen.add(record.values)
                yield record


class Aggregate(Operator):
    """Grouped aggregation over one column.

    Supports ``count``, ``sum``, ``min``, ``max`` and ``avg``.  With no
    grouping column the whole input forms a single group.  Output records are
    ``(group, value)`` pairs (or ``(value,)`` when ungrouped).
    """

    _FUNCTIONS: dict[str, Callable[[list], object]] = {
        "count": len,
        "sum": sum,
        "min": min,
        "max": max,
        "avg": lambda values: sum(values) / len(values) if values else 0,
    }

    def __init__(
        self,
        child: Operator,
        function: str,
        column: str,
        group_by: str | None = None,
    ):
        function = function.lower()
        if function not in self._FUNCTIONS:
            raise QueryError(f"unsupported aggregate function: {function!r}")
        self.child = child
        self.function = function
        self.column = column
        self.group_by = group_by
        out_columns = []
        if group_by is not None:
            # The group key inherits the type of the grouping column, so
            # string-keyed groups carry a correctly typed schema.
            source = child.schema.column(group_by)
            out_columns.append(Column("group_key", source.type, source.width))
        out_columns.append(Column("agg_value", ColumnType.INT))
        self.schema = Schema(tuple(out_columns), primary_key="agg_value")

    def __iter__(self) -> Iterator[Record]:
        child_schema = self.child.schema
        value_index = child_schema.index_of(self.column)
        func = self._FUNCTIONS[self.function]
        if self.group_by is None:
            values = [record.values[value_index] for record in self.child]
            result = func(values) if (values or self.function == "count") else 0
            yield Record((result,))
            return
        group_index = child_schema.index_of(self.group_by)
        groups: dict[object, list] = defaultdict(list)
        for record in self.child:
            groups[record.values[group_index]].append(record.values[value_index])
        for key in sorted(groups):
            yield Record((key, func(groups[key])))


class GroupAggregate(Operator):
    """Grouped aggregation over any number of keys and aggregate expressions.

    ``group_by`` names zero or more grouping columns; ``aggregates`` is a
    sequence of ``(output_name, function, argument)`` where ``argument`` is a
    child column name, or ``"*"`` for ``count(*)``.  The output schema is the
    grouping columns (inheriting their child types) followed by one column
    per aggregate.  Aggregate output columns are labeled INT even though
    ``avg`` may produce fractional values -- derived schemas are never
    encoded to disk, so the label is informational.

    With no grouping columns the whole input forms a single group and exactly
    one row is emitted (zero-valued for empty input, as in :class:`Aggregate`).
    Groups are emitted in sorted key order.
    """

    _FUNCTIONS = Aggregate._FUNCTIONS

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[str],
        aggregates: Sequence[tuple[str, str, str]],
    ):
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = [
            (name, function.lower(), argument)
            for name, function, argument in aggregates
        ]
        for name, function, argument in self.aggregates:
            if function not in self._FUNCTIONS:
                raise QueryError(f"unsupported aggregate function: {function!r}")
            if argument == "*" and function != "count":
                raise QueryError(f"{function}(*) is not supported; use a column")
        out_columns: list[Column] = []
        for column in self.group_by:
            source = child.schema.column(column)
            out_columns.append(Column(column, source.type, source.width))
        for name, function, argument in self.aggregates:
            out_columns.append(
                aggregate_output_column(name, function, argument, child.schema)
            )
        self.schema = Schema.derived(tuple(out_columns))

    def __iter__(self) -> Iterator[Record]:
        child_schema = self.child.schema
        group_indexes = [child_schema.index_of(c) for c in self.group_by]
        agg_indexes = [
            None if argument == "*" else child_schema.index_of(argument)
            for _, _, argument in self.aggregates
        ]
        groups: dict[tuple, list[Record]] = defaultdict(list)
        for record in self.child:
            key = tuple(record.values[i] for i in group_indexes)
            groups[key].append(record)
        if not self.group_by and not groups:
            groups[()] = []
        for key in sorted(groups):
            rows = groups[key]
            values = list(key)
            for (name, function, argument), index in zip(
                self.aggregates, agg_indexes
            ):
                func = self._FUNCTIONS[function]
                inputs = (
                    [1] * len(rows)
                    if index is None
                    else [record.values[index] for record in rows]
                )
                values.append(
                    func(inputs) if (inputs or function == "count") else 0
                )
            yield Record(tuple(values))


def materialize(operator: Operator) -> list[Record]:
    """Run an operator tree to completion and return all output records."""
    return [record for batch in operator.batches() for record in batch]
