"""Exception hierarchy for the Decibel reproduction.

All errors raised by the library derive from :class:`DecibelError` so callers
can catch library failures with a single ``except`` clause while still
distinguishing the individual failure modes.
"""

from __future__ import annotations


class DecibelError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(DecibelError):
    """A schema definition or a record/schema mismatch is invalid."""


class RecordError(DecibelError):
    """A record could not be encoded, decoded or validated."""


class ColumnBatchError(RecordError):
    """A column batch violated the columnar representation's invariants.

    Raised by :mod:`repro.core.columns` when a batch fails validation
    (ragged columns, a typed array whose typecode contradicts the schema
    column type, or the wrong number of columns).  ``reason`` names the
    violated invariant (``"arity"``, ``"length"`` or ``"dtype"``) and
    ``column`` the offending column's name (or ``None`` for batch-wide
    failures), so the failure is actionable without inspecting the batch.
    """

    def __init__(self, reason: str, column: str | None, message: str):
        at = f" at column {column!r}" if column is not None else ""
        super().__init__(f"column batch invariant [{reason}]{at}: {message}")
        self.reason = reason
        self.column = column
        self.detail = message


class PageError(DecibelError):
    """A page is full, corrupt, or addressed out of bounds."""


class StorageError(DecibelError):
    """A heap file, segment file or buffer pool operation failed."""


class CorruptionError(StorageError):
    """On-disk state failed an integrity check (CRC mismatch, torn write).

    Raised by :mod:`repro.core.durable` and the recovery paths when a durable
    file does not match what was written: a CRC-stamped metadata payload whose
    checksum disagrees with its contents, a log record whose length prefix
    runs past the end of the file, or a heap whose size is not a whole number
    of pages.  ``file`` names the corrupt file, ``offset`` the byte position
    the check failed at (when known), and ``expected``/``actual`` carry the
    mismatched values so the failure is diagnosable without a hex dump.
    """

    def __init__(
        self,
        file: str,
        message: str,
        *,
        offset: int | None = None,
        expected: object = None,
        actual: object = None,
    ):
        where = file if offset is None else f"{file} @ byte {offset}"
        detail = message
        if expected is not None or actual is not None:
            detail += f" (expected {expected!r}, actual {actual!r})"
        super().__init__(f"corruption in {where}: {detail}")
        self.file = file
        self.offset = offset
        self.expected = expected
        self.actual = actual


class TransactionError(DecibelError):
    """A transaction violated the locking protocol or was aborted."""


class VersionError(DecibelError):
    """A version-graph operation referenced an unknown or invalid version."""


class BranchNotFoundError(VersionError):
    """The named branch does not exist in the version graph."""


class CommitNotFoundError(VersionError):
    """The referenced commit does not exist in the version graph."""


class BranchExistsError(VersionError):
    """An attempt was made to create a branch whose name is already taken."""


class MergeConflictError(VersionError):
    """A merge produced conflicts and no resolution policy was supplied."""


class QueryError(DecibelError):
    """A versioned query could not be parsed, planned or executed."""

    #: Character offset into the SQL text the error refers to, when known.
    position: int | None = None


class PlanInvariantError(QueryError):
    """A logical plan violated an engine invariant before execution.

    Raised by :mod:`repro.analysis.plan_check` when a plan fails one of the
    static checks (schema propagation, execution-mode consistency, rewrite
    legality, operator-protocol conformance).  ``rule`` names the violated
    invariant class and ``node`` the offending plan node's label, so the
    failure is actionable without re-running the query.
    """

    def __init__(self, rule: str, node: str, message: str):
        super().__init__(
            f"plan invariant [{rule}] violated at {node}: {message}"
        )
        self.rule = rule
        self.node = node
        self.detail = message


class BenchmarkError(DecibelError):
    """The benchmark driver was configured inconsistently."""
