"""Tests for the columnar batch representation (`repro.core.columns`).

Property tests pin the row <-> column boundary down hard: any batch of
schema-conforming records must decode to the same values whether it goes
through `RecordCodec.decode_batch` (rows) or
`RecordCodec.decode_batch_columns` (typed columns).  The rest of the file
covers the `ColumnBatch` invariants (arity / length / dtype, surfaced as
structured `ColumnBatchError`s), the columnar transforms, chunk regrouping,
the lazy page column view, and the buffer pool's byte accounting for cached
column payloads.
"""

from __future__ import annotations

from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.buffer_pool import BufferPool
from repro.core.columns import (
    ColumnBatch,
    column_container,
    column_payload_bytes,
    debug_validation,
    regroup_column_batches,
    set_debug_validation,
)
from repro.core.page import _PAGE_HEADER, Page, PageId
from repro.core.record import Record, RecordCodec
from repro.core.schema import Column, ColumnType, Schema
from repro.errors import ColumnBatchError

MIXED_SCHEMA = Schema(
    (
        Column("id", ColumnType.INT),
        Column("count", ColumnType.INT32),
        Column("name", ColumnType.STRING, width=16),
    ),
    primary_key="id",
)

INT64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
INT32 = st.integers(min_value=-(2**31), max_value=2**31 - 1)
# Codec strings are NUL-padded to the column width on disk, so values must
# encode to at most `width` bytes and cannot themselves end in NUL.
NAME = st.text(
    alphabet=st.characters(min_codepoint=1, max_codepoint=127), max_size=16
).filter(lambda s: not s.endswith("\x00"))

ROWS = st.lists(st.tuples(INT64, INT32, NAME), max_size=40)


def encode_rows(codec: RecordCodec, rows: list[tuple]) -> bytes:
    return b"".join(codec.encode(Record(values)) for values in rows)


class TestDecodeBatchColumns:
    """decode_batch and decode_batch_columns agree on every input."""

    @given(rows=ROWS)
    @settings(max_examples=60, deadline=None)
    def test_round_trip_matches_row_decode(self, rows):
        codec = RecordCodec(MIXED_SCHEMA)
        data = encode_rows(codec, rows)
        records = codec.decode_batch(data, 0, len(rows))
        columns = codec.decode_batch_columns(data, 0, len(rows))
        batch = ColumnBatch(MIXED_SCHEMA, columns, len(rows))
        batch.validate()
        assert batch.rows() == [record.values for record in records]
        assert batch.rows() == rows

    @given(rows=ROWS)
    @settings(max_examples=30, deadline=None)
    def test_columns_are_typed(self, rows):
        codec = RecordCodec(MIXED_SCHEMA)
        columns = codec.decode_batch_columns(
            encode_rows(codec, rows), 0, len(rows)
        )
        id_col, count_col, name_col = columns
        assert isinstance(id_col, array) and id_col.typecode == "q"
        assert isinstance(count_col, array) and count_col.typecode == "i"
        assert isinstance(name_col, list)
        assert all(isinstance(name, str) for name in name_col)

    def test_offset_and_count_window(self):
        codec = RecordCodec(MIXED_SCHEMA)
        rows = [(i, i * 2, f"r{i}") for i in range(10)]
        data = b"\xff" * 3 + encode_rows(codec, rows)
        columns = codec.decode_batch_columns(
            data, 3 + 2 * codec.record_size, 5
        )
        assert list(columns[0]) == [2, 3, 4, 5, 6]

    def test_empty_decode_returns_typed_empties(self):
        codec = RecordCodec(MIXED_SCHEMA)
        columns = codec.decode_batch_columns(b"", 0, 0)
        assert len(columns) == len(MIXED_SCHEMA.columns)
        assert [len(values) for values in columns] == [0, 0, 0]
        ColumnBatch(MIXED_SCHEMA, columns, 0).validate()


class TestColumnBatchInvariants:
    def test_arity_mismatch(self):
        with pytest.raises(ColumnBatchError) as exc:
            ColumnBatch(MIXED_SCHEMA, (array("q", [1]), array("i", [1])), 1)
        assert exc.value.reason == "arity"

    def test_length_mismatch(self):
        with pytest.raises(ColumnBatchError) as exc:
            ColumnBatch(
                MIXED_SCHEMA, (array("q", [1, 2]), array("i", [1]), ["a"]), 2
            )
        assert exc.value.reason == "length"
        assert exc.value.column == "count"

    def test_dtype_mismatch(self):
        with pytest.raises(ColumnBatchError) as exc:
            ColumnBatch(
                MIXED_SCHEMA, (array("d", [1.0]), array("i", [1]), ["a"]), 1
            )
        assert exc.value.reason == "dtype"
        assert exc.value.column == "id"

    def test_string_column_must_be_list(self):
        with pytest.raises(ColumnBatchError) as exc:
            ColumnBatch(
                MIXED_SCHEMA,
                (array("q", [1]), array("i", [1]), array("q", [0])),
                1,
            )
        assert exc.value.reason == "dtype"
        assert exc.value.column == "name"

    def test_lists_are_always_legal(self):
        # Derived values (NULLs, floats in INT slots) ride in plain lists.
        ColumnBatch(MIXED_SCHEMA, ([None], [1.5], ["x"]), 1).validate()

    def test_debug_validation_toggle(self):
        # conftest turns validation on globally; off, a malformed batch is
        # only caught by an explicit validate() call.
        assert debug_validation() is True
        set_debug_validation(False)
        try:
            bad = ColumnBatch(MIXED_SCHEMA, (array("q", [1]),), 1)
            with pytest.raises(ColumnBatchError):
                bad.validate()
        finally:
            set_debug_validation(True)


class TestColumnBatchTransforms:
    @given(rows=ROWS, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_take_matches_row_gather(self, rows, data):
        batch = ColumnBatch.from_rows(MIXED_SCHEMA, rows)
        indexes = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=max(len(rows) - 1, 0)),
                max_size=20,
            )
            if rows
            else st.just([])
        )
        taken = batch.take(indexes)
        assert taken.rows() == [rows[i] for i in indexes]

    @given(
        rows=ROWS,
        start=st.integers(min_value=0, max_value=50),
        stop=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=50, deadline=None)
    def test_slice_matches_row_slice(self, rows, start, stop):
        batch = ColumnBatch.from_rows(MIXED_SCHEMA, rows)
        clamped_stop = min(stop, len(rows))
        assert batch.slice(start, stop).rows() == rows[
            min(start, clamped_stop) : clamped_stop
        ]

    def test_head_passes_through_whole_batch(self):
        batch = ColumnBatch.from_rows(MIXED_SCHEMA, [(1, 2, "a"), (3, 4, "b")])
        assert batch.head(5) is batch
        assert batch.head(1).rows() == [(1, 2, "a")]

    def test_from_records_round_trip(self):
        records = [Record((i, i * 2, f"r{i}")) for i in range(7)]
        batch = ColumnBatch.from_records(MIXED_SCHEMA, records)
        assert batch.to_records() == records

    def test_select_columns_shares_containers(self):
        batch = ColumnBatch.from_rows(MIXED_SCHEMA, [(1, 2, "a")])
        narrow = batch.select_columns(
            (2, 0),
            Schema(
                (
                    Column("name", ColumnType.STRING, width=16),
                    Column("id", ColumnType.INT),
                ),
                primary_key="id",
            ),
        )
        assert narrow.rows() == [("a", 1)]
        assert narrow.columns[0] is batch.columns[2]


class TestRegroupColumnBatches:
    def _chunk(self, rows):
        return ColumnBatch.from_rows(MIXED_SCHEMA, rows)

    def test_large_chunk_passes_through_unchanged(self):
        big = self._chunk([(i, i, "x") for i in range(8)])
        out = list(regroup_column_batches(iter([big]), 4, MIXED_SCHEMA))
        assert out == [big]  # identity: zero-copy pass-through

    def test_small_chunks_accumulate(self):
        chunks = [self._chunk([(i, i, f"s{i}")]) for i in range(7)]
        out = list(regroup_column_batches(iter(chunks), 3, MIXED_SCHEMA))
        assert [batch.num_rows for batch in out] == [3, 3, 1]
        flattened = [row for batch in out for row in batch.rows()]
        assert flattened == [(i, i, f"s{i}") for i in range(7)]

    def test_empty_chunks_skipped(self):
        chunks = [self._chunk([]), self._chunk([(1, 1, "a")]), self._chunk([])]
        out = list(regroup_column_batches(iter(chunks), 10, MIXED_SCHEMA))
        assert [batch.num_rows for batch in out] == [1]

    @given(
        sizes=st.lists(st.integers(min_value=0, max_value=9), max_size=12),
        batch_size=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=50, deadline=None)
    def test_rows_preserved_in_order(self, sizes, batch_size):
        key = 0
        chunks = []
        expected = []
        for size in sizes:
            rows = [(key + i, key + i, f"k{key + i}") for i in range(size)]
            key += size
            expected.extend(rows)
            chunks.append(self._chunk(rows))
        out = list(
            regroup_column_batches(iter(chunks), batch_size, MIXED_SCHEMA)
        )
        assert [
            row for batch in out for row in batch.rows()
        ] == expected
        assert all(batch.num_rows > 0 for batch in out)


class TestPageColumnView:
    def _disk_page(self, rows):
        codec = RecordCodec(MIXED_SCHEMA)
        staging = Page(PageId("f", 0), codec, page_size=1024)
        for values in rows:
            staging.append(Record(values))
        return Page(
            PageId("f", 0), codec, page_size=1024, data=staging.to_bytes()
        )

    def test_disk_page_decodes_columns_without_rows(self):
        rows = [(i, i * 3, f"p{i}") for i in range(5)]
        page = self._disk_page(rows)
        columns = page.columns_view()
        # Columnar decode must not have materialized the record array.
        assert page._records is None
        assert list(zip(*columns)) == rows
        assert isinstance(columns[0], array)

    def test_column_view_is_cached(self):
        page = self._disk_page([(1, 2, "a")])
        assert page.columns_view() is page.columns_view()

    def test_append_invalidates_column_view(self):
        page = self._disk_page([(1, 2, "a")])
        page.columns_view()
        page.append(Record((2, 3, "b")))
        assert list(zip(*page.columns_view())) == [(1, 2, "a"), (2, 3, "b")]

    def test_memory_footprint_counts_column_payload(self):
        page = self._disk_page([(i, i, "x") for i in range(6)])
        base = page.memory_footprint()
        assert base == page.page_size
        columns = page.columns_view()
        grown = page.memory_footprint()
        assert grown == base + column_payload_bytes(MIXED_SCHEMA, columns)
        page.append(Record((99, 99, "y")))
        assert page.memory_footprint() == page.page_size

    @given(rows=ROWS)
    @settings(max_examples=30, deadline=None)
    def test_row_and_column_views_agree(self, rows):
        codec = RecordCodec(MIXED_SCHEMA)
        record_size = codec.record_size
        page_size = max(1024, _PAGE_HEADER.size + record_size * (len(rows) + 1))
        staging = Page(PageId("f", 0), codec, page_size=page_size)
        for values in rows:
            staging.append(Record(values))
        page = Page(
            PageId("f", 0), codec, page_size=page_size, data=staging.to_bytes()
        )
        assert list(zip(*page.columns_view())) == [
            record.values for record in page.records_view()
        ]


class TestBufferPoolColumnAccounting:
    def _disk_page(self, number=0):
        codec = RecordCodec(MIXED_SCHEMA)
        staging = Page(PageId("f", number), codec, page_size=1024)
        for i in range(10):
            staging.append(Record((i, i, f"b{i}")))
        return Page(
            PageId("f", number),
            codec,
            page_size=1024,
            data=staging.to_bytes(),
        )

    def test_admission_charges_footprint(self):
        pool = BufferPool(capacity_bytes=1 << 20)
        page = self._disk_page()
        pool.get_page(page.page_id, lambda: page)
        assert pool.resident_bytes == page.memory_footprint()

    def test_hit_recharges_grown_column_payload(self):
        pool = BufferPool(capacity_bytes=1 << 20)
        page = self._disk_page()
        pool.get_page(page.page_id, lambda: page)
        before = pool.resident_bytes
        page.columns_view()  # footprint grows after admission
        pool.get_page(page.page_id, lambda: page)
        assert pool.resident_bytes == page.memory_footprint()
        assert pool.resident_bytes > before

    def test_invalidate_refunds_charged_bytes(self):
        pool = BufferPool(capacity_bytes=1 << 20)
        page = self._disk_page()
        pool.get_page(page.page_id, lambda: page)
        page.columns_view()
        pool.get_page(page.page_id, lambda: page)
        pool.invalidate_file("f")
        assert pool.resident_bytes == 0
