"""A buffer pool caching pages read from heap and segment files.

The paper's prototype keeps pages in "a fairly conventional buffer pool
architecture" (Section 2.1).  This implementation is a pin-aware LRU cache
keyed by :class:`~repro.core.page.PageId`.  Files load pages through
:meth:`BufferPool.get_page`, supplying a loader callback used on a miss;
dirty pages are written back through a flusher callback on eviction or an
explicit :meth:`flush_all`.

The pool is sized by **bytes**, not pages: a page-count cap made the
effective memory budget a function of the configured page size (512 pages
was 32 MiB at the 64 KiB default but only 2 MiB at the benchmark's 4 KiB
pages, which thrashed on 100k-row heaps).  A page-count cap is still
accepted for tests that want to force eviction with a handful of pages.

One-pass sequential scans of files larger than the whole pool can bypass
admission (``transient=True``): resident pages are still served from the
pool, but misses are read through without inserting, so a big scan does not
evict every hot page while producing frames it will never revisit.

Benchmarks call :meth:`clear` between runs to approximate the cold-cache
(flushed OS page cache) measurements of the paper.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.core.page import Page, PageId
from repro.errors import StorageError

#: Default byte budget of the pool (the old default of 512 pages at the
#: 64 KiB default page size, now independent of page size).
DEFAULT_POOL_BYTES = 32 * 1024 * 1024


@dataclass
class BufferPoolStats:
    """Counters describing buffer pool behaviour since the last reset."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0
    #: Transient (scan-bypass) reads that skipped pool admission on a miss.
    bypasses: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0
        self.bypasses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of page requests served from the pool."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Frame:
    page: Page
    dirty: bool = False
    pin_count: int = 0
    flusher: Callable[[Page], None] | None = field(default=None, repr=False)
    #: Bytes this frame is charged against the pool budget.  Taken from
    #: ``page.memory_footprint()`` (raw image plus any cached column-array
    #: payload) at admission and refreshed on hits, so columnar scans that
    #: decode column views into resident pages stay inside the byte budget.
    charged_bytes: int = 0


class BufferPool:
    """A pin-aware LRU page cache shared by all files of one engine.

    Parameters
    ----------
    capacity_bytes:
        Memory budget for cached page data.  Eviction keeps the sum of
        resident page footprints (raw image plus cached column payload; see
        :meth:`Page.memory_footprint`) at or under this budget.
    capacity_pages:
        Optional additional cap on the number of resident pages (mainly for
        tests that exercise eviction with a few small pages).
    """

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_POOL_BYTES,
        *,
        capacity_pages: int | None = None,
    ):
        if capacity_bytes < 1:
            raise StorageError("buffer pool needs a positive byte budget")
        if capacity_pages is not None and capacity_pages < 1:
            raise StorageError("buffer pool needs capacity for at least one page")
        self.capacity_bytes = capacity_bytes
        self.capacity_pages = capacity_pages
        self._frames: OrderedDict[PageId, _Frame] = OrderedDict()
        self._resident_bytes = 0
        self.stats = BufferPoolStats()

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def resident_bytes(self) -> int:
        """Bytes of page data currently held by the pool."""
        return self._resident_bytes

    # -- core API -------------------------------------------------------------

    def get_page(
        self,
        page_id: PageId,
        loader: Callable[[], Page],
        flusher: Callable[[Page], None] | None = None,
        transient: bool = False,
    ) -> Page:
        """Return the page for ``page_id``, loading it on a miss.

        ``loader`` is invoked only when the page is not resident.  ``flusher``
        is remembered and used to write the page back if it is dirty when
        evicted or flushed.  With ``transient=True`` a miss is read through
        without admitting the page (scan-resistant one-pass reads); hits are
        served from the pool either way.
        """
        frame = self._frames.get(page_id)
        if frame is not None:
            self.stats.hits += 1
            self._frames.move_to_end(page_id)
            self._recharge(frame)
            return frame.page
        self.stats.misses += 1
        page = loader()
        if transient:
            self.stats.bypasses += 1
            return page
        self._admit(page_id, _Frame(page=page, flusher=flusher))
        return page

    def put_page(
        self,
        page: Page,
        *,
        dirty: bool = False,
        flusher: Callable[[Page], None] | None = None,
    ) -> None:
        """Insert (or overwrite) ``page`` in the pool."""
        existing = self._frames.get(page.page_id)
        if existing is not None:
            incoming = page.memory_footprint()
            self._resident_bytes += incoming - existing.charged_bytes
            existing.charged_bytes = incoming
            existing.page = page
            existing.dirty = existing.dirty or dirty
            if flusher is not None:
                existing.flusher = flusher
            self._frames.move_to_end(page.page_id)
            return
        self._admit(page.page_id, _Frame(page=page, dirty=dirty, flusher=flusher))

    def mark_dirty(self, page_id: PageId) -> None:
        """Mark a resident page as modified."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise StorageError(f"page {page_id} is not resident")
        frame.dirty = True

    # -- pinning --------------------------------------------------------------

    def pin(self, page_id: PageId) -> None:
        """Pin a resident page so it cannot be evicted."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise StorageError(f"cannot pin non-resident page {page_id}")
        frame.pin_count += 1

    def unpin(self, page_id: PageId) -> None:
        """Release one pin on a resident page."""
        frame = self._frames.get(page_id)
        if frame is None:
            raise StorageError(f"cannot unpin non-resident page {page_id}")
        if frame.pin_count <= 0:
            raise StorageError(f"page {page_id} is not pinned")
        frame.pin_count -= 1

    # -- flushing and invalidation --------------------------------------------

    def flush_all(self) -> None:
        """Write back every dirty page that has a flusher."""
        for frame in self._frames.values():
            self._flush_frame(frame)

    def invalidate_file(self, file_name: str) -> None:
        """Drop (flushing if dirty) every cached page of ``file_name``."""
        to_drop = [
            page_id
            for page_id in self._frames
            if page_id.file_name == file_name
        ]
        for page_id in to_drop:
            frame = self._frames.pop(page_id)
            self._flush_frame(frame)
            self._resident_bytes -= frame.charged_bytes

    def clear(self) -> None:
        """Flush and drop every cached page (cold-cache simulation)."""
        self.flush_all()
        self._frames.clear()
        self._resident_bytes = 0

    # -- internals ------------------------------------------------------------

    def _flush_frame(self, frame: _Frame) -> None:
        if frame.dirty and frame.flusher is not None:
            frame.flusher(frame.page)
            frame.dirty = False
            self.stats.flushes += 1

    def _over_budget(self, incoming_bytes: int) -> bool:
        if self._resident_bytes + incoming_bytes > self.capacity_bytes:
            return True
        return (
            self.capacity_pages is not None
            and len(self._frames) >= self.capacity_pages
        )

    def _recharge(self, frame: _Frame) -> None:
        """Refresh a resident frame's byte charge from its page.

        A page's footprint can grow after admission (a columnar scan caching
        its column view) or shrink (an append invalidating it); the charge is
        trued up on every hit so ``resident_bytes`` tracks real payload.  A
        growth may leave the pool transiently over budget -- the next
        admission evicts back down, the same forgiveness the all-pinned path
        gets.
        """
        footprint = frame.page.memory_footprint()
        if footprint != frame.charged_bytes:
            self._resident_bytes += footprint - frame.charged_bytes
            frame.charged_bytes = footprint

    def _admit(self, page_id: PageId, frame: _Frame) -> None:
        incoming = frame.page.memory_footprint()
        frame.charged_bytes = incoming
        while self._frames and self._over_budget(incoming):
            victim_id = self._pick_victim()
            if victim_id is None:
                # Everything is pinned; let the pool grow rather than fail a
                # read, mirroring the forgiving behaviour of the prototype.
                break
            victim = self._frames.pop(victim_id)
            self._flush_frame(victim)
            self._resident_bytes -= victim.charged_bytes
            self.stats.evictions += 1
        self._frames[page_id] = frame
        self._resident_bytes += incoming

    def _pick_victim(self) -> PageId | None:
        for page_id, frame in self._frames.items():
            if frame.pin_count == 0:
                return page_id
        return None
