"""Tests for schemas and columns."""

import pytest

from repro.core.schema import Column, ColumnType, Schema
from repro.errors import SchemaError


class TestColumn:
    def test_int_column_width(self):
        assert Column("a", ColumnType.INT).byte_width == 8

    def test_int32_column_width(self):
        assert Column("a", ColumnType.INT32).byte_width == 4

    def test_string_column_requires_width(self):
        with pytest.raises(SchemaError):
            Column("name", ColumnType.STRING)

    def test_string_column_width_respected(self):
        assert Column("name", ColumnType.STRING, width=12).byte_width == 12

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("not a name", ColumnType.INT)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("", ColumnType.INT)

    def test_validate_accepts_int(self):
        Column("a", ColumnType.INT).validate(42)

    def test_validate_rejects_bool(self):
        with pytest.raises(SchemaError):
            Column("a", ColumnType.INT).validate(True)

    def test_validate_rejects_string_for_int(self):
        with pytest.raises(SchemaError):
            Column("a", ColumnType.INT).validate("42")

    def test_validate_rejects_out_of_range_int32(self):
        with pytest.raises(SchemaError):
            Column("a", ColumnType.INT32).validate(2**40)

    def test_validate_accepts_negative(self):
        Column("a", ColumnType.INT32).validate(-5)

    def test_validate_string_length(self):
        column = Column("name", ColumnType.STRING, width=4)
        column.validate("abcd")
        with pytest.raises(SchemaError):
            column.validate("abcde")

    def test_validate_string_utf8_length(self):
        column = Column("name", ColumnType.STRING, width=4)
        with pytest.raises(SchemaError):
            column.validate("héllo")


class TestSchema:
    def test_of_ints_builds_expected_columns(self):
        schema = Schema.of_ints(5)
        assert schema.column_names == ("id", "c1", "c2", "c3", "c4")
        assert schema.primary_key == "id"

    def test_of_ints_4_byte_columns(self):
        schema = Schema.of_ints(3, width_bytes=4)
        assert schema.columns[1].type is ColumnType.INT32
        # The key column stays 8 bytes regardless.
        assert schema.columns[0].type is ColumnType.INT

    def test_of_ints_rejects_bad_width(self):
        with pytest.raises(SchemaError):
            Schema.of_ints(3, width_bytes=5)

    def test_of_ints_rejects_zero_columns(self):
        with pytest.raises(SchemaError):
            Schema.of_ints(0)

    def test_record_width(self):
        schema = Schema.of_ints(4)
        assert schema.record_width == 4 * 8

    def test_record_width_mixed(self):
        schema = Schema(
            (
                Column("id", ColumnType.INT),
                Column("n", ColumnType.INT32),
                Column("s", ColumnType.STRING, width=10),
            )
        )
        assert schema.record_width == 8 + 4 + 10

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Column("a", ColumnType.INT), Column("a", ColumnType.INT)))

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema(())

    def test_primary_key_defaults_to_first_column(self):
        schema = Schema((Column("x", ColumnType.INT), Column("y", ColumnType.INT)))
        assert schema.primary_key == "x"
        assert schema.primary_key_index == 0

    def test_explicit_primary_key(self):
        schema = Schema(
            (Column("x", ColumnType.INT), Column("y", ColumnType.INT)),
            primary_key="y",
        )
        assert schema.primary_key_index == 1

    def test_unknown_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Column("x", ColumnType.INT),), primary_key="z")

    def test_string_primary_key_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                (Column("name", ColumnType.STRING, width=8),), primary_key="name"
            )

    def test_index_of(self):
        schema = Schema.of_ints(3)
        assert schema.index_of("c2") == 2
        with pytest.raises(SchemaError):
            schema.index_of("missing")

    def test_column_lookup(self):
        schema = Schema.of_ints(3)
        assert schema.column("c1").name == "c1"

    def test_len(self):
        assert len(Schema.of_ints(6)) == 6

    def test_validate_values_length_mismatch(self):
        schema = Schema.of_ints(3)
        with pytest.raises(SchemaError):
            schema.validate_values((1, 2))

    def test_validate_values_type_mismatch(self):
        schema = Schema.of_ints(3)
        with pytest.raises(SchemaError):
            schema.validate_values((1, "x", 3))

    def test_project_preserves_primary_key(self):
        schema = Schema.of_ints(4)
        projected = schema.project(["c1", "id"])
        assert projected.primary_key == "id"
        assert projected.column_names == ("c1", "id")

    def test_project_without_key_uses_first_column(self):
        schema = Schema.of_ints(4)
        projected = schema.project(["c2", "c3"])
        assert projected.primary_key == "c2"

    def test_project_derived_string_key_stays_derived(self):
        # Derived schemas (aggregate outputs) may nominate a non-integer
        # first column as their key; projecting it must not route through
        # the stored-schema constructor, which rejects non-integer keys.
        derived = Schema.derived(
            (Column("name", ColumnType.STRING, width=8), Column("count_id"))
        )
        projected = derived.project(["count_id", "name"])
        assert projected.column_names == ("count_id", "name")
        assert projected.primary_key == "count_id"

    def test_describe_marks_primary_key(self):
        text = Schema.of_ints(2).describe()
        assert "id*" in text
        assert "c1" in text
