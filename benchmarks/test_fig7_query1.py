"""Figure 7: Query 1 (single-branch scan) across strategies and targets.

Paper shape: tuple-first pays for reading the whole interleaved heap whatever
the target; clustering records by branch helps it most on the flat strategy;
version-first and hybrid are close, with latencies growing for the
merge-heavy curation targets; hybrid never loses badly to either.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import figure7_query1


def test_fig7_query1(benchmark, workdir, scale):
    table = run_once(benchmark, figure7_query1, workdir, scale=scale)
    table.print()
    labels = [row[0] for row in table.rows]
    assert "deep-tail" in labels
    assert "flat-child" in labels
    assert any(label.startswith("sci-") for label in labels)
    assert any(label.startswith("cur-") for label in labels)

    by_label = {row[0]: row[1:] for row in table.rows}
    # On flat, the scanned child holds only a small share of the data:
    # tuple-first (interleaved) must still read everything, so it is the
    # slowest of the four configurations on that target.
    vf, tf, tf_clustered, hy = by_label["flat-child"]
    assert tf >= hy and tf >= vf
    # Clustering the tuple-first heap by branch brings it back toward the
    # segment-based engines on the flat target.
    assert tf_clustered <= tf
