"""Relational storage substrate.

This subpackage stands in for the MIT SimpleDB engine that the original
Decibel prototype was built on.  It provides the pieces the versioned storage
engines need: schemas and fixed-width record encoding, slotted pages, heap
files, a buffer pool with pinning and LRU eviction, a two-phase-locking lock
manager, a minimal write-ahead log, and iterator-style query operators.
"""

from repro.core.schema import Column, ColumnType, Schema
from repro.core.record import Record, RecordCodec
from repro.core.page import Page, PageId
from repro.core.heapfile import HeapFile, RecordId
from repro.core.buffer_pool import BufferPool
from repro.core.predicates import (
    And,
    ColumnPredicate,
    Or,
    Not,
    Predicate,
    TruePredicate,
)
from repro.core.operators import (
    Aggregate,
    Filter,
    HashJoin,
    Limit,
    Project,
    SeqScan,
)
from repro.core.catalog import Catalog, RelationInfo
from repro.core.locks import LockManager, LockMode
from repro.core.transactions import Transaction, TransactionManager
from repro.core.wal import LogRecord, LogRecordType, WriteAheadLog

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Record",
    "RecordCodec",
    "Page",
    "PageId",
    "HeapFile",
    "RecordId",
    "BufferPool",
    "Predicate",
    "ColumnPredicate",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "SeqScan",
    "Filter",
    "Project",
    "HashJoin",
    "Aggregate",
    "Limit",
    "Catalog",
    "RelationInfo",
    "LockManager",
    "LockMode",
    "Transaction",
    "TransactionManager",
    "WriteAheadLog",
    "LogRecord",
    "LogRecordType",
]
