"""Tests for the version graph (commits, branches, ancestry, LCA)."""

import pytest

from repro.errors import (
    BranchExistsError,
    BranchNotFoundError,
    CommitNotFoundError,
    VersionError,
)
from repro.versioning.version_graph import MASTER_BRANCH, VersionGraph


@pytest.fixture
def graph():
    graph = VersionGraph()
    graph.init()
    return graph


class TestInit:
    def test_init_creates_master(self, graph):
        assert graph.initialized
        assert graph.has_branch(MASTER_BRANCH)
        assert len(graph) == 1

    def test_double_init_rejected(self, graph):
        with pytest.raises(VersionError):
            graph.init()

    def test_uninitialized_graph(self):
        graph = VersionGraph()
        assert not graph.initialized
        with pytest.raises(BranchNotFoundError):
            graph.head(MASTER_BRANCH)


class TestCommitsAndBranches:
    def test_commit_advances_head(self, graph):
        first_head = graph.head(MASTER_BRANCH)
        commit = graph.commit(MASTER_BRANCH, "work")
        assert graph.head(MASTER_BRANCH) == commit.commit_id
        assert commit.parents == (first_head,)
        assert not commit.is_merge

    def test_commit_ids_are_sequential_and_unique(self, graph):
        ids = [graph.commit(MASTER_BRANCH).commit_id for _ in range(5)]
        assert len(set(ids)) == 5
        sequences = [graph.get_commit(c).sequence for c in ids]
        assert sequences == sorted(sequences)

    def test_create_branch_from_head(self, graph):
        branch = graph.create_branch("dev")
        assert branch.head == graph.get_commit(branch.head).commit_id
        assert branch.created_from == graph.head(MASTER_BRANCH)

    def test_create_branch_from_commit(self, graph):
        old = graph.head(MASTER_BRANCH)
        graph.commit(MASTER_BRANCH)
        branch = graph.create_branch("old-work", from_commit=old)
        assert branch.head == old

    def test_create_branch_from_named_branch(self, graph):
        graph.create_branch("dev")
        graph.commit("dev")
        child = graph.create_branch("feature", from_branch="dev")
        assert child.head == graph.head("dev")

    def test_duplicate_branch_rejected(self, graph):
        graph.create_branch("dev")
        with pytest.raises(BranchExistsError):
            graph.create_branch("dev")

    def test_branch_from_unknown_commit_rejected(self, graph):
        with pytest.raises(CommitNotFoundError):
            graph.create_branch("dev", from_commit="v999999")

    def test_unknown_lookups(self, graph):
        with pytest.raises(BranchNotFoundError):
            graph.branch("missing")
        with pytest.raises(CommitNotFoundError):
            graph.get_commit("v999999")

    def test_commits_on_branch(self, graph):
        graph.create_branch("dev")
        graph.commit("dev")
        graph.commit(MASTER_BRANCH)
        assert [c.branch for c in graph.commits_on_branch("dev")] == ["dev"]

    def test_heads_mapping(self, graph):
        graph.create_branch("dev")
        heads = graph.heads()
        assert set(heads) == {MASTER_BRANCH, "dev"}

    def test_retire_branch(self, graph):
        graph.create_branch("dev")
        graph.retire_branch("dev")
        assert not graph.branch("dev").active
        assert "dev" not in graph.branch_names(active_only=True)


class TestMerge:
    def test_merge_creates_two_parent_commit(self, graph):
        graph.commit(MASTER_BRANCH)
        graph.create_branch("dev")
        dev_head = graph.commit("dev").commit_id
        master_head = graph.head(MASTER_BRANCH)
        merge = graph.merge(MASTER_BRANCH, "dev")
        assert merge.is_merge
        assert set(merge.parents) == {master_head, dev_head}
        assert graph.head(MASTER_BRANCH) == merge.commit_id

    def test_merge_records_precedence(self, graph):
        graph.create_branch("dev")
        graph.commit("dev")
        graph.merge(MASTER_BRANCH, "dev")
        assert graph.branch(MASTER_BRANCH).merge_precedence == (MASTER_BRANCH, "dev")

    def test_merge_precedence_override(self, graph):
        graph.create_branch("dev")
        graph.commit("dev")
        graph.merge(MASTER_BRANCH, "dev", precedence="dev")
        assert graph.branch(MASTER_BRANCH).merge_precedence[0] == "dev"


class TestAncestry:
    def test_ancestors_include_self_by_default(self, graph):
        commit = graph.commit(MASTER_BRANCH)
        ancestors = graph.ancestors(commit.commit_id)
        assert commit.commit_id in ancestors
        assert len(ancestors) == 2

    def test_ancestors_exclude_self(self, graph):
        commit = graph.commit(MASTER_BRANCH)
        assert commit.commit_id not in graph.ancestors(
            commit.commit_id, include_self=False
        )

    def test_is_ancestor(self, graph):
        root = graph.head(MASTER_BRANCH)
        commit = graph.commit(MASTER_BRANCH)
        assert graph.is_ancestor(root, commit.commit_id)
        assert not graph.is_ancestor(commit.commit_id, root)

    def test_lca_simple_fork(self, graph):
        fork_point = graph.commit(MASTER_BRANCH).commit_id
        graph.create_branch("dev", from_commit=fork_point)
        dev_head = graph.commit("dev").commit_id
        master_head = graph.commit(MASTER_BRANCH).commit_id
        assert graph.lowest_common_ancestor(dev_head, master_head) == fork_point

    def test_lca_of_commit_with_itself(self, graph):
        commit = graph.commit(MASTER_BRANCH).commit_id
        assert graph.lowest_common_ancestor(commit, commit) == commit

    def test_lca_after_merge(self, graph):
        graph.create_branch("dev")
        graph.commit("dev")
        graph.commit(MASTER_BRANCH)
        merge = graph.merge(MASTER_BRANCH, "dev")
        dev_head = graph.head("dev")
        # After the merge, the dev head itself is an ancestor of master's head.
        assert graph.lowest_common_ancestor(merge.commit_id, dev_head) == dev_head

    def test_lineage_follows_first_parent(self, graph):
        graph.commit(MASTER_BRANCH)
        graph.commit(MASTER_BRANCH)
        lineage = graph.lineage(graph.head(MASTER_BRANCH))
        assert len(lineage) == 3
        assert lineage[-1].parents == ()

    def test_branch_lineage_linear(self, graph):
        graph.create_branch("a")
        graph.create_branch("b", from_branch="a")
        assert graph.branch_lineage("b") == ["b", "a", MASTER_BRANCH]

    def test_branch_lineage_with_merge(self, graph):
        graph.create_branch("dev")
        graph.commit("dev")
        graph.merge(MASTER_BRANCH, "dev")
        lineage = graph.branch_lineage(MASTER_BRANCH)
        assert lineage[0] == MASTER_BRANCH
        assert "dev" in lineage


class TestPersistence:
    def test_round_trip(self, graph, tmp_path):
        graph.commit(MASTER_BRANCH, "first")
        graph.create_branch("dev")
        graph.commit("dev", "dev work")
        graph.merge(MASTER_BRANCH, "dev", message="merge")
        graph.retire_branch("dev")
        path = str(tmp_path / "graph.json")
        graph.save(path)
        restored = VersionGraph.load(path)
        assert restored.heads() == graph.heads()
        assert len(restored) == len(graph)
        assert restored.branch("dev").active is False
        assert restored.branch(MASTER_BRANCH).merge_precedence == (
            MASTER_BRANCH,
            "dev",
        )
        # Sequence counter continues without collisions after a reload.
        new_commit = restored.commit(MASTER_BRANCH)
        assert not graph.has_commit(new_commit.commit_id) or new_commit.commit_id not in [
            c.commit_id for c in graph.commits()
        ][:-1]

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(VersionError):
            VersionGraph.load(str(tmp_path / "missing.json"))
