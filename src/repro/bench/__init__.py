"""The versioning benchmark (paper Section 4).

The benchmark loads a synthetic versioned dataset into a storage engine using
one of four branching strategies -- deep, flat, science and curation -- and
measures the latency of four query classes over the loaded data:

* Query 1: scan the active records of a single branch;
* Query 2: positive difference between two branches;
* Query 3: primary-key join of two branches under a predicate;
* Query 4: full scan emitting every head record annotated with its branches.

The driver mirrors the paper's loader: a fixed insert/update mix per branch,
interleaved loading across the branches the strategy marks active, commits at
a fixed operation interval, and optional insert skew toward the mainline.
"""

from repro.bench.datagen import DataGenerator, GeneratorConfig
from repro.bench.strategies import (
    BranchingStrategy,
    CurationStrategy,
    DeepStrategy,
    FlatStrategy,
    Operation,
    OperationKind,
    ScienceStrategy,
    make_strategy,
)
from repro.bench.driver import BenchmarkConfig, LoadResult, load_dataset
from repro.bench.queries import (
    QueryMeasurement,
    query1_single_scan,
    query2_positive_diff,
    query3_join,
    query4_head_scan,
)
from repro.bench.report import ResultTable

__all__ = [
    "DataGenerator",
    "GeneratorConfig",
    "BranchingStrategy",
    "DeepStrategy",
    "FlatStrategy",
    "ScienceStrategy",
    "CurationStrategy",
    "Operation",
    "OperationKind",
    "make_strategy",
    "BenchmarkConfig",
    "LoadResult",
    "load_dataset",
    "QueryMeasurement",
    "query1_single_scan",
    "query2_positive_diff",
    "query3_join",
    "query4_head_scan",
    "ResultTable",
]
