"""Relation schemas for the Decibel reproduction.

The paper's benchmark uses relations made of fixed-width integer columns with
a single integer primary key (Section 4.2).  The schema layer here supports
that shape plus fixed-length strings so examples can model realistic datasets
(product catalogs, map features, patient cohorts).

A :class:`Schema` is an ordered collection of :class:`Column` objects.  The
first column is the primary key by default; an explicit primary key column may
be named instead.  Schemas know their fixed on-disk record width, which the
record codec and page layout rely on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SchemaError


class ColumnType(enum.Enum):
    """Supported column types.

    ``INT`` is an 8-byte signed integer.  ``INT32`` is a 4-byte signed
    integer, matching the paper's 4-byte benchmark columns.  ``STRING`` is a
    fixed-width UTF-8 field padded with NUL bytes; its width is set per
    column.  ``FLOAT`` is a double-precision float carried only by derived
    schemas (``avg`` aggregates emit it); stored relations reject it as a
    primary key and never encode it to disk.
    """

    INT = "int"
    INT32 = "int32"
    STRING = "string"
    FLOAT = "float"

    @property
    def fixed_width(self) -> int | None:
        """Byte width of the type, or ``None`` if set per column (STRING)."""
        if self is ColumnType.INT:
            return 8
        if self is ColumnType.INT32:
            return 4
        if self is ColumnType.FLOAT:
            return 8
        return None

    @property
    def typecode(self) -> str | None:
        """``array.array`` typecode for the columnar representation.

        ``None`` for STRING, which is carried as a plain list: Python has no
        fixed-width native text array, and the decode path already produces
        ``str`` objects.
        """
        if self is ColumnType.INT:
            return "q"
        if self is ColumnType.INT32:
            return "i"
        if self is ColumnType.FLOAT:
            return "d"
        return None


@dataclass(frozen=True)
class Column:
    """A single column definition.

    Parameters
    ----------
    name:
        Column name; must be a valid identifier and unique within the schema.
    type:
        The :class:`ColumnType`.
    width:
        Byte width for STRING columns.  Ignored (and derived from the type)
        for integer columns.
    """

    name: str
    type: ColumnType = ColumnType.INT
    width: int = 0

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if self.type is ColumnType.STRING:
            if self.width <= 0:
                raise SchemaError(
                    f"STRING column {self.name!r} needs a positive width"
                )
        else:
            object.__setattr__(self, "width", self.type.fixed_width)

    @property
    def byte_width(self) -> int:
        """On-disk width of one value of this column."""
        return self.width

    def validate(self, value: object) -> None:
        """Raise :class:`SchemaError` if ``value`` does not fit this column."""
        if self.type in (ColumnType.INT, ColumnType.INT32):
            if not isinstance(value, int) or isinstance(value, bool):
                raise SchemaError(
                    f"column {self.name!r} expects int, got {type(value).__name__}"
                )
            bits = 8 * self.byte_width
            low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
            if not low <= value <= high:
                raise SchemaError(
                    f"value {value} out of range for column {self.name!r}"
                )
        elif self.type is ColumnType.FLOAT:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise SchemaError(
                    f"column {self.name!r} expects a number, got "
                    f"{type(value).__name__}"
                )
        else:
            if not isinstance(value, str):
                raise SchemaError(
                    f"column {self.name!r} expects str, got {type(value).__name__}"
                )
            if len(value.encode("utf-8")) > self.width:
                raise SchemaError(
                    f"string too long for column {self.name!r} (max {self.width} bytes)"
                )


@dataclass(frozen=True)
class Schema:
    """An ordered, fixed-width relation schema.

    Parameters
    ----------
    columns:
        Ordered column definitions.
    primary_key:
        Name of the primary key column.  Defaults to the first column.  The
        primary key is used by every versioned engine to track records across
        versions (paper Section 2.2.1) and must be an integer column.
    """

    columns: tuple[Column, ...]
    primary_key: str = ""
    _index: dict[str, int] = field(
        default_factory=dict, repr=False, compare=False, hash=False
    )

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError("a schema needs at least one column")
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        pk = self.primary_key or names[0]
        if pk not in names:
            raise SchemaError(f"primary key {pk!r} is not a column")
        pk_column = self.columns[names.index(pk)]
        if pk_column.type not in (ColumnType.INT, ColumnType.INT32):
            raise SchemaError("the primary key must be an integer column")
        object.__setattr__(self, "primary_key", pk)
        object.__setattr__(
            self, "_index", {name: i for i, name in enumerate(names)}
        )

    # -- construction helpers -------------------------------------------------

    @classmethod
    def of_ints(cls, num_columns: int, *, width_bytes: int = 8) -> "Schema":
        """Build the benchmark schema: ``id`` plus ``num_columns - 1`` ints.

        The paper's generator uses an integer primary key plus randomly
        generated integer payload columns; ``width_bytes`` selects 4- or
        8-byte columns (both were evaluated, with no observed difference).
        """
        if num_columns < 1:
            raise SchemaError("need at least one column")
        if width_bytes == 8:
            col_type = ColumnType.INT
        elif width_bytes == 4:
            col_type = ColumnType.INT32
        else:
            raise SchemaError("width_bytes must be 4 or 8")
        columns = [Column("id", ColumnType.INT)]
        columns.extend(
            Column(f"c{i}", col_type) for i in range(1, num_columns)
        )
        return cls(tuple(columns), primary_key="id")

    @classmethod
    def derived(cls, columns: tuple[Column, ...] | list[Column]) -> "Schema":
        """A schema for intermediate query results.

        Unlike stored-relation schemas, derived schemas (aggregate outputs,
        projections that drop the key) are never encoded to disk, so they do
        not require an integer primary key: the first column is nominated as
        the key regardless of its type.
        """
        columns = tuple(columns)
        if not columns:
            raise SchemaError("a schema needs at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in schema: {names}")
        schema = object.__new__(cls)
        object.__setattr__(schema, "columns", columns)
        object.__setattr__(schema, "primary_key", names[0])
        object.__setattr__(schema, "_index", {name: i for i, name in enumerate(names)})
        return schema

    # -- accessors ------------------------------------------------------------

    @property
    def column_names(self) -> tuple[str, ...]:
        """Names of all columns in schema order."""
        return tuple(column.name for column in self.columns)

    @property
    def primary_key_index(self) -> int:
        """Positional index of the primary key column."""
        return self._index[self.primary_key]

    @property
    def record_width(self) -> int:
        """Fixed byte width of one encoded record (payload only)."""
        return sum(column.byte_width for column in self.columns)

    def __len__(self) -> int:
        return len(self.columns)

    def index_of(self, name: str) -> int:
        """Positional index of column ``name``; raises if unknown."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown column: {name!r}") from None

    def column(self, name: str) -> Column:
        """The :class:`Column` named ``name``."""
        return self.columns[self.index_of(name)]

    def validate_values(self, values: tuple) -> None:
        """Validate a full tuple of values against this schema."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        for column, value in zip(self.columns, values):
            column.validate(value)

    def project(self, names: list[str] | tuple[str, ...]) -> "Schema":
        """A new schema containing only ``names`` (in the given order).

        The primary key is preserved if it is among ``names``; otherwise the
        first projected column becomes the key of the derived schema (with no
        integer-type requirement, since projected results are never stored).
        Derived sources (aggregate outputs) may nominate a non-integer key;
        projecting those always derives, since the stored-schema constructor
        only accepts integer keys.
        """
        columns = tuple(self.column(name) for name in names)
        if self.primary_key in names:
            pk_column = self.column(self.primary_key)
            if pk_column.type in (ColumnType.INT, ColumnType.INT32):
                return Schema(columns, primary_key=self.primary_key)
        return Schema.derived(columns)

    def describe(self) -> str:
        """A one-line human-readable description of the schema."""
        parts = []
        for column in self.columns:
            marker = "*" if column.name == self.primary_key else ""
            parts.append(f"{column.name}{marker}:{column.type.value}")
        return ", ".join(parts)
