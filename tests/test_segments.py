"""Tests for segment files and the segment set."""

import pytest

from repro.core.buffer_pool import BufferPool
from repro.core.record import Record
from repro.errors import StorageError
from repro.storage.segments import ParentPointer, SegmentSet

from tests.conftest import make_records


@pytest.fixture
def segments(schema, tmp_path):
    return SegmentSet(str(tmp_path / "segs"), schema, BufferPool(), page_size=512)


class TestSegment:
    def test_append_returns_ordinals(self, segments):
        segment = segments.create("master")
        assert [segment.append(r) for r in make_records(4)] == [0, 1, 2, 3]
        assert segment.record_count == 4

    def test_record_at(self, segments):
        segment = segments.create("master")
        segment.append(Record((9, 1, 2, 3)))
        assert segment.record_at(0).values == (9, 1, 2, 3)

    def test_records_with_limit(self, segments):
        segment = segments.create("master")
        for record in make_records(6):
            segment.append(record)
        limited = list(segment.records(limit=3))
        assert [ordinal for ordinal, _ in limited] == [0, 1, 2]

    def test_freeze_blocks_writes(self, segments):
        segment = segments.create("master")
        segment.append(Record((1, 0, 0, 0)))
        segment.freeze()
        assert segment.frozen
        with pytest.raises(StorageError):
            segment.append(Record((2, 0, 0, 0)))

    def test_size_bytes_after_flush(self, segments):
        segment = segments.create("master")
        for record in make_records(3):
            segment.append(record)
        segment.heap.flush()
        assert segment.size_bytes() == 512


class TestSegmentSet:
    def test_ids_are_unique_and_ordered(self, segments):
        first = segments.create("a")
        second = segments.create("b")
        assert first.segment_id != second.segment_id
        assert first.segment_id < second.segment_id
        assert len(segments) == 2

    def test_get_unknown_rejected(self, segments):
        with pytest.raises(StorageError):
            segments.get("seg99999")

    def test_contains(self, segments):
        segment = segments.create("a")
        assert segment.segment_id in segments

    def test_total_size(self, segments):
        segment = segments.create("a")
        for record in make_records(3):
            segment.append(record)
        segments.flush()
        assert segments.total_size_bytes() == 512

    def test_metadata_roundtrip(self, schema, tmp_path):
        directory = str(tmp_path / "segs")
        segments = SegmentSet(directory, schema, BufferPool(), page_size=512)
        parent = segments.create("master")
        for record in make_records(5):
            parent.append(record)
        child = segments.create(
            "dev", parents=(ParentPointer(parent.segment_id, 5),)
        )
        child.metadata["note"] = "child segment"
        parent.freeze()
        segments.flush()
        segments.save_metadata()

        reloaded = SegmentSet(directory, schema, BufferPool(), page_size=512)
        reloaded.load_metadata()
        assert len(reloaded) == 2
        restored_child = reloaded.get(child.segment_id)
        assert restored_child.parents[0].segment_id == parent.segment_id
        assert restored_child.parents[0].limit == 5
        assert restored_child.metadata["note"] == "child segment"
        assert reloaded.get(parent.segment_id).frozen
        assert reloaded.get(parent.segment_id).record_count == 5
        # Id allocation continues after the highest existing id.
        newer = reloaded.create("other")
        assert newer.segment_id > child.segment_id
