"""Memory-bounded sort + Top-N subsystem tests.

Covers the run/spill/merge machinery in ``repro.core.sort``, the rewritten
``OrderBy`` and new ``TopN`` operators, the optimizer's Limit-over-Sort
fusion (with its EXPLAIN tags), and end-to-end equivalence across all three
storage engines in both execution modes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operators import OrderBy, SeqScan, TopN as TopNOp, materialize
from repro.core.record import Record
from repro.core.schema import Column, ColumnType, Schema
from repro.core.sort import (
    Descending,
    ExternalRunSorter,
    estimate_record_bytes,
    make_sort_key,
)
from repro.errors import QueryError
from repro.query.logical import (
    Limit,
    Project,
    Sort,
    TopN,
    VersionScan,
    render_plan,
)
from repro.query.optimizer import (
    fuse_top_n,
    optimize,
    rewrite_labels,
    select_execution_mode,
)
from repro.query.physical import build_physical, execute_plan

from tests.conftest import make_records


def reference_sort(records, keys, schema):
    """The pre-subsystem OrderBy semantics: repeated stable sorts."""
    out = list(records)
    for column, descending in reversed(keys):
        index = schema.index_of(column)
        out.sort(key=lambda r, i=index: r.values[i], reverse=descending)
    return out


# -- key compilation ----------------------------------------------------------


class TestSortKey:
    def test_descending_wrapper_inverts_order(self):
        assert Descending("b") < Descending("a")
        assert not Descending("a") < Descending("b")
        assert Descending("a") == Descending("a")

    def test_string_descending_key(self, wide_schema):
        records = [Record((i, i, name)) for i, name in enumerate("bca")]
        key = make_sort_key(wide_schema, [("name", True)])
        ordered = sorted(records, key=key)
        assert [r.values[2] for r in ordered] == ["c", "b", "a"]

    def test_mixed_direction_composite_key(self, schema):
        records = [Record((i, i % 2, i, 0)) for i in range(6)]
        key = make_sort_key(schema, [("c1", True), ("id", False)])
        ordered = sorted(records, key=key)
        assert [r.values[0] for r in ordered] == [1, 3, 5, 0, 2, 4]

    def test_unknown_column_rejected(self, schema):
        with pytest.raises(Exception):
            make_sort_key(schema, [("nope", False)])

    def test_null_values_sort_last_ascending(self, schema):
        # SQL NULLs (e.g. empty-input aggregates) must have a total order:
        # last ascending, first descending (the PostgreSQL defaults).
        records = [Record((0, None, 0, 0)), Record((1, 5, 0, 0))]
        ascending = sorted(records, key=make_sort_key(schema, [("c1", False)]))
        assert [r.values[0] for r in ascending] == [1, 0]
        descending = sorted(records, key=make_sort_key(schema, [("c1", True)]))
        assert [r.values[0] for r in descending] == [0, 1]

    def test_null_values_in_composite_key(self, schema):
        records = [
            Record((0, None, 2, 0)),
            Record((1, 5, 1, 0)),
            Record((2, None, 1, 0)),
        ]
        key = make_sort_key(schema, [("c1", True), ("c2", False)])
        assert [r.values[0] for r in sorted(records, key=key)] == [2, 0, 1]

    def test_estimate_is_positive(self, schema):
        assert estimate_record_bytes(Record((1, 2, 3, 4))) > 0


# -- the external run sorter --------------------------------------------------


class TestExternalRunSorter:
    def _sorter(self, schema, keys, budget):
        return ExternalRunSorter(make_sort_key(schema, keys), budget_bytes=budget)

    def test_in_memory_fast_path_spills_nothing(self, schema):
        sorter = self._sorter(schema, [("id", True)], budget=1 << 30)
        sorter.add_batch(make_records(100))
        merged = list(sorter.merged())
        assert sorter.spilled_runs == 0
        assert [r.values[0] for r in merged] == list(range(99, -1, -1))

    def test_tiny_budget_spills_and_merges(self, schema):
        records = make_records(500)[::-1]
        sorter = self._sorter(schema, [("id", False)], budget=1_000)
        for start in range(0, len(records), 64):
            sorter.add_batch(records[start : start + 64])
        merged = list(sorter.merged())
        assert sorter.spilled_runs > 1
        assert merged == make_records(500)

    def test_merged_closes_spill_files(self, schema):
        sorter = self._sorter(schema, [("id", False)], budget=1)
        sorter.add_batch(make_records(50))
        assert sorter.spilled_runs >= 1
        list(sorter.merged())
        assert sorter._run_files == []

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.tuples(st.integers(-50, 50), st.integers(-5, 5)), max_size=200
        ),
        budget=st.integers(1, 50_000),
        descending=st.booleans(),
    )
    def test_spill_matches_plain_sort(self, values, budget, descending):
        schema = Schema.of_ints(4)
        records = [Record((i, c1, c2, 0)) for i, (c1, c2) in enumerate(values)]
        keys = [("c1", descending), ("c2", False)]
        sorter = ExternalRunSorter(
            make_sort_key(schema, keys), budget_bytes=budget
        )
        for start in range(0, len(records), 16):
            sorter.add_batch(records[start : start + 16])
        assert list(sorter.merged()) == reference_sort(records, keys, schema)


# -- the OrderBy operator -----------------------------------------------------


class TestOrderBySpill:
    KEYS = [("c1", False), ("id", True)]

    def _records(self):
        return [Record(((i * 37) % 100, i % 7, -i, 7)) for i in range(700)]

    def test_batched_spill_path_matches_in_memory(self, schema):
        unbounded = materialize(
            OrderBy(SeqScan(self._records(), schema), self.KEYS)
        )
        spilled = OrderBy(
            SeqScan(self._records(), schema), self.KEYS, budget_bytes=2_000
        )
        assert materialize(spilled) == unbounded
        assert spilled.spilled_runs > 0

    def test_iter_spill_path_matches_in_memory(self, schema):
        unbounded = list(OrderBy(SeqScan(self._records(), schema), self.KEYS))
        spilled = OrderBy(
            SeqScan(self._records(), schema), self.KEYS, budget_bytes=2_000
        )
        assert list(spilled) == unbounded
        assert spilled.spilled_runs > 0

    def test_matches_legacy_semantics(self, schema):
        records = self._records()
        rows = materialize(OrderBy(SeqScan(list(records), schema), self.KEYS))
        assert rows == reference_sort(records, self.KEYS, schema)

    def test_count_skips_sort(self, schema):
        op = OrderBy(SeqScan(make_records(25), schema), [("id", False)])
        assert op.count() == 25


# -- the TopN operator --------------------------------------------------------


class TestTopNOperator:
    def test_equals_full_sort_prefix(self, schema):
        records = [Record(((i * 13) % 40, i, 0, 0)) for i in range(200)]
        keys = [("id", True)]
        full = materialize(OrderBy(SeqScan(list(records), schema), keys))
        top = materialize(TopNOp(SeqScan(list(records), schema), keys, 9))
        assert top == full[:9]

    def test_zero_k_emits_nothing(self, schema):
        op = TopNOp(SeqScan(make_records(10), schema), [("id", False)], 0)
        assert materialize(op) == [] and list(op) == []

    def test_k_beyond_cardinality_is_full_sort(self, schema):
        keys = [("c1", True), ("id", False)]
        records = make_records(15)[::-1]
        top = materialize(TopNOp(SeqScan(list(records), schema), keys, 99))
        assert top == reference_sort(records, keys, schema)

    def test_stability_on_ties(self, schema):
        records = [Record((i, 1, 0, 0)) for i in range(20)]
        top = materialize(TopNOp(SeqScan(records, schema), [("c1", False)], 5))
        assert [r.values[0] for r in top] == [0, 1, 2, 3, 4]

    def test_count_caps_at_k(self, schema):
        op = TopNOp(SeqScan(make_records(30), schema), [("id", False)], 4)
        assert op.count() == 4

    def test_negative_k_rejected(self, schema):
        with pytest.raises(QueryError):
            TopNOp(SeqScan([], schema), [("id", False)], -1)

    def test_empty_keys_rejected(self, schema):
        with pytest.raises(QueryError):
            TopNOp(SeqScan([], schema), [], 5)

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(st.integers(-30, 30), max_size=150),
        k=st.integers(0, 20),
        descending=st.booleans(),
        batch_size=st.integers(1, 64),
    )
    def test_property_matches_full_sort(self, values, k, descending, batch_size):
        """Top-N over random batches == sort-everything-then-limit."""
        schema = Schema.of_ints(4)
        records = [Record((i, v, 0, 0)) for i, v in enumerate(values)]
        keys = [("c1", descending)]
        expected = reference_sort(records, keys, schema)[:k]
        top = TopNOp(SeqScan(list(records), schema), keys, k)
        flattened = [
            record for batch in top.batches(batch_size) for record in batch
        ]
        assert flattened == expected
        assert list(TopNOp(SeqScan(list(records), schema), keys, k)) == expected


# -- optimizer fusion ---------------------------------------------------------


@pytest.fixture
def seeded_engine(engine):
    engine.init(make_records(60), message="seed")
    return engine


def _scan(engine):
    return VersionScan(engine, "R", "R", "branch", "master", None)


class TestTopNFusion:
    def test_limit_over_sort_fuses(self, seeded_engine):
        plan = fuse_top_n(Limit(Sort(_scan(seeded_engine), [("c1", True)]), 5))
        assert isinstance(plan, TopN)
        assert plan.n == 5 and plan.keys == [("c1", True)]

    def test_limit_over_projected_sort_pushes_below(self, seeded_engine):
        lowered = Limit(
            Project(Sort(_scan(seeded_engine), [("c1", False)]), ["id"]), 3
        )
        plan = fuse_top_n(lowered)
        assert isinstance(plan, Project)
        assert isinstance(plan.child, TopN)
        assert isinstance(plan.child.child, VersionScan)

    def test_limit_over_sort_over_project_pushes_below(self, seeded_engine):
        lowered = Limit(
            Sort(Project(_scan(seeded_engine), ["id", "c1"]), [("c1", False)]), 3
        )
        plan = fuse_top_n(lowered)
        assert isinstance(plan, Project)
        assert isinstance(plan.child, TopN)
        assert isinstance(plan.child.child, VersionScan)

    def test_bare_limit_and_sort_survive(self, seeded_engine):
        assert isinstance(fuse_top_n(Limit(_scan(seeded_engine), 5)), Limit)
        assert isinstance(
            fuse_top_n(Sort(_scan(seeded_engine), [("c1", False)])), Sort
        )

    def test_rewrite_labels_tag_top_n(self, seeded_engine):
        plan = optimize(Limit(Sort(_scan(seeded_engine), [("c1", True)]), 7))
        labels = rewrite_labels(plan)
        assert list(labels.values()) == ["top-n k=7"]
        rendered = render_plan(plan, labels)
        assert "[top-n k=7]" in rendered

    def test_top_n_plan_is_batch_native(self, seeded_engine):
        plan = optimize(Limit(Sort(_scan(seeded_engine), [("c1", True)]), 7))
        assert select_execution_mode(plan) == "columnar"


# -- pipeline equivalence across engines and modes ----------------------------


class TestPipelineEquivalence:
    @pytest.mark.parametrize("batched", [True, False])
    def test_top_n_equals_full_sort_prefix(self, seeded_engine, batched):
        keys = [("c1", True), ("id", False)]
        full = execute_plan(
            optimize(Sort(_scan(seeded_engine), keys)), batched=batched
        )
        top = execute_plan(
            optimize(Limit(Sort(_scan(seeded_engine), keys), 8)),
            batched=batched,
        )
        assert top.rows == full.rows[:8]

    @pytest.mark.parametrize("batched", [True, False])
    def test_spill_budget_is_byte_identical(self, seeded_engine, batched):
        keys = [("c2", True)]
        unbounded = execute_plan(
            optimize(Sort(_scan(seeded_engine), keys)), batched=batched
        )
        spilled_plan = optimize(
            Sort(_scan(seeded_engine), keys, budget_bytes=500)
        )
        spilled = execute_plan(spilled_plan, batched=batched)
        assert spilled.rows == unbounded.rows

    def test_spill_budget_reaches_physical_operator(self, seeded_engine):
        operator = build_physical(
            Sort(_scan(seeded_engine), [("c2", False)], budget_bytes=500)
        )
        rows = materialize(operator)
        assert operator.spilled_runs > 0
        assert [r.values for r in rows] == sorted(
            (r.values for r in rows), key=lambda v: v[2]
        )

    @pytest.mark.parametrize("batched", [True, False])
    def test_order_by_then_project_matches_project_then_sort(
        self, seeded_engine, batched
    ):
        # The lowered shape for ORDER BY on a non-projected column.
        threaded = execute_plan(
            optimize(
                Project(Sort(_scan(seeded_engine), [("c1", True)]), ["id"])
            ),
            batched=batched,
        )
        reference = execute_plan(
            optimize(
                Project(
                    Sort(_scan(seeded_engine), [("c1", True)]), ["id", "c1"]
                )
            ),
            batched=batched,
        )
        assert threaded.rows == [(row[0],) for row in reference.rows]

    @pytest.mark.parametrize("batched", [True, False])
    @pytest.mark.parametrize("limit", [0, 5, 1000])
    def test_limit_edges_through_top_n(self, seeded_engine, batched, limit):
        plan = optimize(
            Limit(Sort(_scan(seeded_engine), [("id", True)]), limit)
        )
        result = execute_plan(plan, batched=batched)
        assert len(result.rows) == min(limit, 60)
        ids = [row[0] for row in result.rows]
        assert ids == sorted(ids, reverse=True)[: len(ids)]
