"""Tests for the branch- and tuple-oriented bitmap indexes."""

import pytest

from repro.bitmap import BitmapOrientation, make_bitmap_index
from repro.bitmap.bitmap import Bitmap
from repro.bitmap.branch_bitmap import BranchOrientedBitmapIndex
from repro.bitmap.tuple_bitmap import TupleOrientedBitmapIndex
from repro.errors import BranchExistsError, BranchNotFoundError


@pytest.fixture(params=["branch", "tuple"])
def index(request):
    return make_bitmap_index(request.param)


class TestBitmapIndexCommon:
    """Behaviour both orientations must share."""

    def test_add_and_query_branch(self, index):
        index.add_branch("master")
        index.set(0, "master")
        index.set(5, "master")
        assert index.is_set(0, "master")
        assert not index.is_set(1, "master")
        assert index.live_count("master") == 2

    def test_unknown_branch_rejected(self, index):
        with pytest.raises(BranchNotFoundError):
            index.set(0, "missing")
        with pytest.raises(BranchNotFoundError):
            index.branch_bitmap("missing")

    def test_duplicate_branch_rejected(self, index):
        index.add_branch("master")
        with pytest.raises(BranchExistsError):
            index.add_branch("master")

    def test_clone_on_branch(self, index):
        index.add_branch("master")
        for i in (1, 3, 5):
            index.set(i, "master")
        index.add_branch("dev", clone_from="master")
        assert index.branch_bitmap("dev").to_indices() == [1, 3, 5]
        # Changes after the clone do not leak between branches.
        index.set(7, "dev")
        index.clear(1, "dev")
        assert index.branch_bitmap("master").to_indices() == [1, 3, 5]
        assert index.branch_bitmap("dev").to_indices() == [3, 5, 7]

    def test_clear(self, index):
        index.add_branch("master")
        index.set(2, "master")
        index.clear(2, "master")
        assert not index.is_set(2, "master")

    def test_restore_branch(self, index):
        index.add_branch("master")
        index.set(0, "master")
        index.restore_branch("master", Bitmap.from_indices([4, 9]))
        assert index.branch_bitmap("master").to_indices() == [4, 9]

    def test_union_intersection_difference(self, index):
        index.add_branch("a")
        index.add_branch("b")
        for i in (1, 2, 3):
            index.set(i, "a")
        for i in (3, 4):
            index.set(i, "b")
        assert index.union(["a", "b"]).to_indices() == [1, 2, 3, 4]
        assert index.intersection(["a", "b"]).to_indices() == [3]
        assert index.difference("a", "b").to_indices() == [1, 2]
        assert index.symmetric_difference("a", "b").to_indices() == [1, 2, 4]

    def test_intersection_of_nothing(self, index):
        assert index.intersection([]).count() == 0

    def test_iter_live_tuples(self, index):
        index.add_branch("a")
        index.set(10, "a")
        index.set(2, "a")
        assert list(index.iter_live_tuples("a")) == [2, 10]

    def test_branches_listing(self, index):
        index.add_branch("a")
        index.add_branch("b")
        assert index.branches() == ["a", "b"]
        assert index.has_branch("a") and not index.has_branch("c")

    def test_num_tuples_tracks_highest_bit(self, index):
        index.add_branch("a")
        index.set(99, "a")
        assert index.num_tuples() >= 100

    def test_size_bytes_positive(self, index):
        index.add_branch("a")
        index.set(1000, "a")
        assert index.size_bytes() > 0


class TestTupleOrientedSpecifics:
    def test_row_expansion_after_many_branches(self):
        index = TupleOrientedBitmapIndex()
        index.add_branch("b0")
        index.set(0, "b0")
        index.set(1, "b0")
        for i in range(1, 20):
            index.add_branch(f"b{i}", clone_from="b0")
        # 20 branches exceed the initial 8-bit row, forcing block expansion.
        assert index.expansions >= 1
        assert index.branch_bitmap("b19").to_indices() == [0, 1]

    def test_iter_rows_single_pass(self):
        index = TupleOrientedBitmapIndex()
        index.add_branch("a")
        index.add_branch("b")
        index.set(0, "a")
        index.set(1, "a")
        index.set(1, "b")
        rows = {tuple_index: set(members) for tuple_index, members in index.iter_rows()}
        assert rows[0] == {"a"}
        assert rows[1] == {"a", "b"}

    def test_orientation_marker(self):
        assert TupleOrientedBitmapIndex().orientation is BitmapOrientation.TUPLE
        assert BranchOrientedBitmapIndex().orientation is BitmapOrientation.BRANCH


class TestBranchOrientedSpecifics:
    def test_drop_branch(self):
        index = BranchOrientedBitmapIndex()
        index.add_branch("a")
        index.set(1, "a")
        index.drop_branch("a")
        assert not index.has_branch("a")

    def test_independent_bitmap_growth(self):
        index = BranchOrientedBitmapIndex()
        index.add_branch("small")
        index.add_branch("large")
        index.set(1, "small")
        index.set(100_000, "large")
        # Growing one branch's bitmap does not grow the other's.
        assert index.branch_bitmap("small").size_bytes < index.branch_bitmap("large").size_bytes


class TestFactory:
    def test_factory_by_enum(self):
        assert isinstance(
            make_bitmap_index(BitmapOrientation.TUPLE), TupleOrientedBitmapIndex
        )

    def test_factory_by_string(self):
        assert isinstance(make_bitmap_index("branch"), BranchOrientedBitmapIndex)
