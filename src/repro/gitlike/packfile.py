"""Packfiles and delta compression.

git minimizes storage by periodically packing loose objects into packfiles,
storing most objects as deltas against a similar base object.  Finding good
bases is expensive -- git sorts candidate objects and slides a window across
them, attempting a delta against every window member -- and the paper's
Section 5.7 measures exactly this cost (the ``repack`` column of Table 6).

The delta format here is a simple copy/insert encoding computed against
fixed-size blocks of the base object; the repacker mirrors git's
sliding-window search (sort by size, try each of the last ``window`` objects
as a base, keep the smallest encoding that actually saves space).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.gitlike.object_store import ObjectStore

#: Block granularity for delta matching.
_BLOCK = 64

_OP_COPY = 0
_OP_INSERT = 1


def delta_encode(base: bytes, target: bytes) -> bytes:
    """Encode ``target`` as a delta against ``base``.

    The encoding is a sequence of COPY(offset, length) and INSERT(data)
    operations over :data:`_BLOCK`-sized chunks, preceded by the target
    length.  It is compact when the two byte strings share long runs of
    identical blocks -- the common case for successive versions of a dataset
    file -- and degrades to a single INSERT otherwise.
    """
    block_index: dict[bytes, int] = {}
    for offset in range(0, len(base) - _BLOCK + 1, _BLOCK):
        block = base[offset : offset + _BLOCK]
        block_index.setdefault(block, offset)
    out = bytearray(struct.pack("<I", len(target)))
    pending = bytearray()

    def flush_insert() -> None:
        if pending:
            out.append(_OP_INSERT)
            out.extend(struct.pack("<I", len(pending)))
            out.extend(pending)
            pending.clear()

    position = 0
    n = len(target)
    while position < n:
        block = target[position : position + _BLOCK]
        base_offset = block_index.get(block) if len(block) == _BLOCK else None
        if base_offset is None:
            pending.extend(block)
            position += len(block)
            continue
        # Extend the match block by block while it continues in the base.
        length = _BLOCK
        while (
            position + length + _BLOCK <= n
            and base_offset + length + _BLOCK <= len(base)
            and target[position + length : position + length + _BLOCK]
            == base[base_offset + length : base_offset + length + _BLOCK]
        ):
            length += _BLOCK
        flush_insert()
        out.append(_OP_COPY)
        out.extend(struct.pack("<II", base_offset, length))
        position += length
    flush_insert()
    return bytes(out)


def delta_decode(base: bytes, delta: bytes) -> bytes:
    """Apply a delta produced by :func:`delta_encode` to ``base``."""
    (expected_length,) = struct.unpack_from("<I", delta, 0)
    out = bytearray()
    offset = 4
    while offset < len(delta):
        op = delta[offset]
        offset += 1
        if op == _OP_COPY:
            base_offset, length = struct.unpack_from("<II", delta, offset)
            offset += 8
            out.extend(base[base_offset : base_offset + length])
        elif op == _OP_INSERT:
            (length,) = struct.unpack_from("<I", delta, offset)
            offset += 4
            out.extend(delta[offset : offset + length])
            offset += length
        else:
            raise StorageError(f"unknown delta opcode {op}")
    if len(out) != expected_length:
        raise StorageError(
            f"delta produced {len(out)} bytes, expected {expected_length}"
        )
    return bytes(out)


@dataclass
class _PackEntry:
    object_id: str
    kind: str  # "full" or "delta"
    base_id: str | None
    payload: bytes  # zlib-compressed full data or delta


@dataclass
class PackFile:
    """An in-memory/packed-to-disk collection of (possibly delta'd) objects."""

    entries: dict[str, _PackEntry] = field(default_factory=dict)

    def add_full(self, object_id: str, data: bytes) -> None:
        """Store an object in full (compressed)."""
        self.entries[object_id] = _PackEntry(
            object_id, "full", None, zlib.compress(data)
        )

    def add_delta(self, object_id: str, base_id: str, delta: bytes) -> None:
        """Store an object as a delta against ``base_id``."""
        self.entries[object_id] = _PackEntry(
            object_id, "delta", base_id, zlib.compress(delta)
        )

    def __contains__(self, object_id: str) -> bool:
        return object_id in self.entries

    def __len__(self) -> int:
        return len(self.entries)

    def get(self, object_id: str) -> bytes:
        """Reconstruct an object, chasing delta chains as needed."""
        entry = self.entries.get(object_id)
        if entry is None:
            raise StorageError(f"object {object_id} not in pack")
        if entry.kind == "full":
            return zlib.decompress(entry.payload)
        base = self.get(entry.base_id)
        return delta_decode(base, zlib.decompress(entry.payload))

    def size_bytes(self) -> int:
        """Total compressed payload size of the pack."""
        overhead_per_entry = 64  # id + header, roughly what git's index costs
        return sum(
            len(entry.payload) + overhead_per_entry
            for entry in self.entries.values()
        )

    def save(self, path: str) -> None:
        """Serialize the pack to ``path``."""
        with open(path, "wb") as handle:
            handle.write(struct.pack("<I", len(self.entries)))
            for entry in self.entries.values():
                object_id = entry.object_id.encode("ascii")
                base_id = (entry.base_id or "").encode("ascii")
                handle.write(struct.pack("<BII", 0 if entry.kind == "full" else 1, len(base_id), len(entry.payload)))
                handle.write(object_id)
                handle.write(base_id)
                handle.write(entry.payload)

    @classmethod
    def load(cls, path: str) -> "PackFile":
        """Load a pack previously written by :meth:`save`."""
        pack = cls()
        with open(path, "rb") as handle:
            data = handle.read()
        (count,) = struct.unpack_from("<I", data, 0)
        offset = 4
        for _ in range(count):
            kind_flag, base_len, payload_len = struct.unpack_from("<BII", data, offset)
            offset += 9
            object_id = data[offset : offset + 40].decode("ascii")
            offset += 40
            base_id = data[offset : offset + base_len].decode("ascii") or None
            offset += base_len
            payload = data[offset : offset + payload_len]
            offset += payload_len
            pack.entries[object_id] = _PackEntry(
                object_id, "full" if kind_flag == 0 else "delta", base_id, payload
            )
        return pack


def repack(
    store: ObjectStore,
    object_ids: list[str] | None = None,
    window: int = 10,
    max_delta_ratio: float = 0.75,
) -> PackFile:
    """Pack loose objects, searching a sliding window for delta bases.

    Objects are sorted by size (git sorts by type/name/size; size alone is
    enough for our single-relation datasets) and each object attempts a delta
    against up to ``window`` previously packed objects, keeping the smallest
    delta if it is under ``max_delta_ratio`` of the full size.  The exhaustive
    window search is what makes this slow on large repositories -- the
    behaviour Table 6 reports.
    """
    ids = object_ids if object_ids is not None else store.all_ids()
    contents = {object_id: store.get(object_id) for object_id in ids}
    ordered = sorted(ids, key=lambda object_id: (len(contents[object_id]), object_id))
    pack = PackFile()
    recent: list[str] = []
    for object_id in ordered:
        data = contents[object_id]
        best_delta: bytes | None = None
        best_base: str | None = None
        for base_id in reversed(recent[-window:]):
            delta = delta_encode(contents[base_id], data)
            if best_delta is None or len(delta) < len(best_delta):
                best_delta = delta
                best_base = base_id
        if (
            best_delta is not None
            and best_base is not None
            and len(best_delta) < max_delta_ratio * max(len(data), 1)
        ):
            pack.add_delta(object_id, best_base, best_delta)
        else:
            pack.add_full(object_id, data)
        recent.append(object_id)
    return pack
