"""Ablation: composite (two-layer) commit deltas versus a flat delta chain.

Paper Section 3.2: commit histories aggregate runs of deltas into a higher
"layer" of composite deltas so checkout replays fewer chained deltas, at the
cost of some extra space.  This ablation sweeps the composite interval
(0 disables the layer entirely).
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import ablation_commit_layers


def test_ablation_commit_layers(benchmark, workdir, scale):
    table = run_once(benchmark, ablation_commit_layers, workdir, scale=scale)
    table.print()
    rows = {row[0]: row[1:] for row in table.rows}
    assert set(rows) == {0, 4, 8, 16}
    # The layered histories store at least as many bytes as the flat chain
    # (composites are pure overhead in space)...
    assert rows[4][1] >= rows[0][1]
    # ...and every configuration checks out correctly in sub-second time.
    for interval, (checkout_ms, size_kb) in rows.items():
        assert checkout_ms < 1000
        assert size_kb > 0
