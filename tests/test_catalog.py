"""Tests for the dataset catalog."""

import pytest

from repro.core.catalog import Catalog, RelationInfo
from repro.core.schema import Column, ColumnType, Schema
from repro.errors import SchemaError, StorageError


@pytest.fixture
def catalog(tmp_path):
    return Catalog(str(tmp_path / "db"))


class TestCatalog:
    def test_create_and_lookup(self, catalog, schema):
        catalog.create_relation("events", schema, "hybrid")
        info = catalog.relation("events")
        assert info.name == "events"
        assert info.engine_kind == "hybrid"
        assert info.schema.column_names == schema.column_names

    def test_duplicate_rejected(self, catalog, schema):
        catalog.create_relation("events", schema, "hybrid")
        with pytest.raises(StorageError):
            catalog.create_relation("events", schema, "hybrid")

    def test_invalid_name_rejected(self, catalog, schema):
        with pytest.raises(SchemaError):
            catalog.create_relation("bad name", schema, "hybrid")

    def test_unknown_relation(self, catalog):
        with pytest.raises(StorageError):
            catalog.relation("missing")

    def test_drop_relation(self, catalog, schema):
        catalog.create_relation("events", schema, "hybrid")
        catalog.drop_relation("events")
        assert "events" not in catalog
        with pytest.raises(StorageError):
            catalog.drop_relation("events")

    def test_persistence_across_reopen(self, tmp_path, schema):
        directory = str(tmp_path / "db")
        catalog = Catalog(directory)
        catalog.create_relation("events", schema, "tuple-first")
        reopened = Catalog(directory)
        assert len(reopened) == 1
        assert reopened.relation("events").engine_kind == "tuple-first"

    def test_persistence_of_mixed_schema(self, tmp_path):
        schema = Schema(
            (
                Column("id", ColumnType.INT),
                Column("name", ColumnType.STRING, width=20),
            )
        )
        directory = str(tmp_path / "db")
        Catalog(directory).create_relation("people", schema, "hybrid")
        restored = Catalog(directory).relation("people").schema
        assert restored.column("name").width == 20
        assert restored.column("name").type is ColumnType.STRING

    def test_relations_sorted(self, catalog, schema):
        catalog.create_relation("zeta", schema, "hybrid")
        catalog.create_relation("alpha", schema, "hybrid")
        assert [info.name for info in catalog.relations()] == ["alpha", "zeta"]

    def test_relation_info_roundtrip(self, schema):
        info = RelationInfo("r", schema, "hybrid")
        assert RelationInfo.from_dict(info.to_dict()).schema == schema
