"""End-to-end tests of the versioned SQL executor over the Decibel facade."""

import pytest

from repro.core.record import Record
from repro.db.database import Decibel
from repro.errors import QueryError

from tests.conftest import make_records


@pytest.fixture(params=["version-first", "tuple-first", "hybrid"])
def db(request, tmp_path, schema):
    """A Decibel database with one populated, branched relation R."""
    database = Decibel(str(tmp_path / "db"), engine=request.param, page_size=4096)
    relation = database.create_relation("R", schema)
    relation.init(make_records(20))
    relation.branch("dev", from_branch="master")
    relation.insert("dev", Record((100, 1, 2, 3)))
    relation.update("dev", Record((5, 50, 500, 5000)))
    relation.delete("dev", 6)
    relation.commit("dev", "dev work")
    relation.insert("master", Record((200, 7, 7, 7)))
    relation.commit("master", "master work")
    return database


class TestQuery1SingleVersionScan:
    def test_scan_branch_by_name(self, db):
        result = db.query("SELECT * FROM R WHERE R.Version = 'dev'")
        keys = {row[0] for row in result.rows}
        assert 100 in keys and 6 not in keys
        assert len(result) == 20

    def test_scan_commit_by_id(self, db):
        commit_id = db.relation("R").graph.head("dev")
        result = db.query(f"SELECT * FROM R WHERE R.Version = '{commit_id}'")
        assert len(result) == 20

    def test_scan_with_predicate(self, db):
        result = db.query("SELECT * FROM R WHERE R.Version = 'master' AND R.id < 5")
        assert sorted(row[0] for row in result.rows) == [0, 1, 2, 3, 4]

    def test_projection(self, db):
        result = db.query("SELECT id, c1 FROM R WHERE R.Version = 'master' AND id = 3")
        assert result.columns == ["id", "c1"]
        assert result.rows == [(3, 30)]

    def test_duplicate_select_columns(self, db):
        result = db.query(
            "SELECT id, id FROM R WHERE R.Version = 'master' AND id = 3"
        )
        assert result.columns == ["id", "id"]
        assert result.rows == [(3, 3)]

    def test_to_dicts(self, db):
        result = db.query("SELECT id FROM R WHERE R.Version = 'master' AND id = 1")
        assert result.to_dicts() == [{"id": 1}]

    def test_unknown_version_rejected(self, db):
        with pytest.raises(QueryError):
            db.query("SELECT * FROM R WHERE R.Version = 'nope'")

    def test_unbound_table_rejected(self, db):
        with pytest.raises(QueryError):
            db.query("SELECT * FROM R")


class TestQuery2PositiveDiff:
    def test_positive_diff(self, db):
        result = db.query(
            "SELECT * FROM R WHERE R.Version = 'dev' AND R.id NOT IN "
            "(SELECT id FROM R WHERE R.Version = 'master')"
        )
        assert {row[0] for row in result.rows} == {100}

    def test_positive_diff_other_direction(self, db):
        result = db.query(
            "SELECT * FROM R WHERE R.Version = 'master' AND R.id NOT IN "
            "(SELECT id FROM R WHERE R.Version = 'dev')"
        )
        assert {row[0] for row in result.rows} == {6, 200}

    def test_diff_against_commit(self, db):
        head = db.relation("R").graph.head("master")
        result = db.query(
            "SELECT * FROM R WHERE R.Version = 'dev' AND R.id NOT IN "
            f"(SELECT id FROM R WHERE R.Version = '{head}')"
        )
        assert {row[0] for row in result.rows} == {100}


class TestQuery3MultiVersionJoin:
    def test_join_on_primary_key(self, db):
        result = db.query(
            "SELECT * FROM R as R1, R as R2 WHERE R1.Version = 'dev' "
            "AND R1.id = R2.id AND R2.Version = 'master'"
        )
        # 19 keys survive in both branches (key 6 deleted in dev, 100/200 unique).
        assert len(result) == 19

    def test_join_with_predicate(self, db):
        result = db.query(
            "SELECT * FROM R as R1, R as R2 WHERE R1.Version = 'dev' "
            "AND R1.c1 = 50 AND R1.id = R2.id AND R2.Version = 'master'"
        )
        assert len(result) == 1
        row = result.rows[0]
        assert row[0] == 5 and row[1] == 50   # dev side updated
        assert row[5] == 50                    # master side original c1

    def test_join_requires_versions(self, db):
        with pytest.raises(QueryError):
            db.query("SELECT * FROM R as R1, R as R2 WHERE R1.id = R2.id")


class TestQuery4HeadScan:
    def test_head_scan_annotates_branches(self, db):
        result = db.query("SELECT * FROM R WHERE HEAD(R.Version) = true")
        assert len(result.branch_annotations) == len(result.rows)
        by_key = {}
        for row, branches in zip(result.rows, result.branch_annotations):
            by_key.setdefault(row[0], set()).update(branches)
        assert by_key[100] == {"dev"}
        assert by_key[200] == {"master"}
        assert by_key[0] == {"master", "dev"}

    def test_head_scan_with_predicate(self, db):
        result = db.query(
            "SELECT * FROM R WHERE HEAD(R.Version) = true AND c1 = 50"
        )
        assert {row[0] for row in result.rows} == {5}

    def test_head_false_rejected(self, db):
        with pytest.raises(QueryError):
            db.query("SELECT * FROM R WHERE HEAD(R.Version) = false")


class TestAggregatesAndGrouping:
    def test_ungrouped_count(self, db):
        result = db.query("SELECT count(id) FROM R WHERE R.Version = 'master'")
        assert result.columns == ["count(id)"]
        assert result.rows == [(21,)]

    def test_count_star(self, db):
        result = db.query("SELECT count(*) FROM R WHERE R.Version = 'dev'")
        assert result.rows == [(20,)]

    def test_multiple_aggregates(self, db):
        result = db.query(
            "SELECT count(id), min(id), max(id) FROM R "
            "WHERE R.Version = 'master'"
        )
        assert result.columns == ["count(id)", "min(id)", "max(id)"]
        assert result.rows == [(21, 0, 200)]

    def test_avg_keeps_fractions(self, db):
        result = db.query(
            "SELECT avg(id) FROM R WHERE R.Version = 'master' AND id < 2"
        )
        assert result.rows == [(0.5,)]

    def test_group_by(self, db):
        result = db.query(
            "SELECT c3, count(id) FROM R WHERE R.Version = 'master' GROUP BY c3"
        )
        assert result.columns == ["c3", "count(id)"]
        assert result.rows == [(7, 21)]

    def test_group_by_respects_predicate(self, db):
        result = db.query(
            "SELECT c3, count(id) FROM R WHERE R.Version = 'dev' AND id >= 100 "
            "GROUP BY c3"
        )
        assert result.rows == [(3, 1)]

    def test_aggregate_with_count_in_predicate(self, db):
        result = db.query(
            "SELECT sum(c1) FROM R WHERE R.Version = 'master' AND id < 3"
        )
        assert result.rows == [(0 + 10 + 20,)]

    def test_empty_input_aggregates_are_null(self, db):
        # SQL semantics: sum/min/max/avg over no rows are NULL; count is 0.
        result = db.query(
            "SELECT min(c1), max(c1), sum(c1), avg(c1), count(id) "
            "FROM R WHERE R.Version = 'master' AND id > 1000"
        )
        assert result.rows == [(None, None, None, None, 0)]

    def test_empty_input_single_aggregate_is_null(self, db):
        result = db.query(
            "SELECT min(c1) FROM R WHERE R.Version = 'master' AND id > 1000"
        )
        assert result.rows == [(None,)]

    def test_order_by_null_aggregate_does_not_crash(self, db):
        # Regression: descending numeric sort keys used to negate the value,
        # which raised TypeError on the NULL an empty-input aggregate emits.
        for direction in ("ASC", "DESC"):
            result = db.query(
                "SELECT avg(c1) FROM R WHERE R.Version = 'master' "
                f"AND id > 1000 ORDER BY avg(c1) {direction} LIMIT 1"
            )
            assert result.rows == [(None,)]

    def test_ungrouped_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.query("SELECT c1, count(id) FROM R WHERE R.Version = 'master'")

    def test_unknown_aggregate_rejected(self, db):
        with pytest.raises(QueryError):
            db.query("SELECT median(c1) FROM R WHERE R.Version = 'master'")


class TestStringGroupKeyReorder:
    """Aggregates listed before a string group key (regression).

    The select-list order forces a reorder projection above the aggregate,
    whose output schema nominates the string group key as its derived
    primary key; projecting that schema used to crash with ``SchemaError``
    ("the primary key must be an integer column").
    """

    @pytest.fixture(params=["version-first", "tuple-first", "hybrid"])
    def string_db(self, request, tmp_path):
        from repro.core.schema import Column, ColumnType, Schema

        database = Decibel(str(tmp_path / "sdb"), engine=request.param)
        schema = Schema(
            (
                Column("id", ColumnType.INT),
                Column("name", ColumnType.STRING, width=16),
                Column("v", ColumnType.INT),
            ),
            primary_key="id",
        )
        relation = database.create_relation("S", schema)
        relation.init(
            Record((i, ["red", "green", "blue"][i % 3], i * 10))
            for i in range(9)
        )
        return database

    def test_aggregate_before_string_group_key(self, string_db):
        result = string_db.query(
            "SELECT count(id), name FROM S WHERE S.Version = 'master' "
            "GROUP BY name"
        )
        assert result.columns == ["count(id)", "name"]
        assert sorted(result.rows) == [(3, "blue"), (3, "green"), (3, "red")]

    def test_mixed_order_with_sum(self, string_db):
        result = string_db.query(
            "SELECT sum(v), name, count(*) FROM S WHERE S.Version = 'master' "
            "GROUP BY name ORDER BY name"
        )
        assert result.columns == ["sum(v)", "name", "count(*)"]
        assert result.rows == [
            (150, "blue", 3),
            (120, "green", 3),
            (90, "red", 3),
        ]


class TestOrderLimitDistinct:
    def test_order_by_desc_with_limit(self, db):
        result = db.query(
            "SELECT id FROM R WHERE R.Version = 'master' "
            "ORDER BY id DESC LIMIT 3"
        )
        assert result.rows == [(200,), (19,), (18,)]

    def test_order_by_secondary_key(self, db):
        result = db.query(
            "SELECT c3, id FROM R WHERE R.Version = 'master' "
            "ORDER BY c3 ASC, id DESC LIMIT 2"
        )
        assert result.rows == [(7, 200), (7, 19)]

    def test_limit_zero(self, db):
        result = db.query("SELECT * FROM R WHERE R.Version = 'master' LIMIT 0")
        assert result.rows == []

    def test_distinct(self, db):
        result = db.query("SELECT DISTINCT c3 FROM R WHERE R.Version = 'master'")
        assert result.rows == [(7,)]

    def test_distinct_with_order(self, db):
        result = db.query(
            "SELECT DISTINCT c3 FROM R WHERE R.Version = 'dev' ORDER BY c3"
        )
        assert result.rows == [(3,), (7,), (5000,)]

    def test_group_by_with_order_on_aggregate(self, db):
        result = db.query(
            "SELECT c3, count(id) FROM R WHERE R.Version = 'dev' "
            "GROUP BY c3 ORDER BY count(id) DESC LIMIT 1"
        )
        assert result.rows == [(7, 18)]

    def test_order_by_non_projected_column(self, db):
        # Regression: this exact shape used to raise "ORDER BY column 'c1' is
        # not in the query output"; standard SQL sorts before projecting.
        result = db.query(
            "SELECT id FROM R WHERE R.Version = 'master' ORDER BY c1"
        )
        reference = db.query(
            "SELECT id, c1 FROM R WHERE R.Version = 'master' ORDER BY c1"
        )
        assert result.columns == ["id"]
        assert result.rows == [(row[0],) for row in reference.rows]

    def test_order_by_non_projected_column_desc_with_limit(self, db):
        result = db.query(
            "SELECT id FROM R WHERE R.Version = 'master' "
            "ORDER BY c1 DESC LIMIT 4"
        )
        reference = db.query(
            "SELECT id FROM R WHERE R.Version = 'master' ORDER BY c1 DESC"
        )
        assert result.rows == reference.rows[:4]

    def test_order_by_unknown_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.query("SELECT id FROM R WHERE R.Version = 'master' ORDER BY nope")

    def test_distinct_order_by_non_projected_rejected(self, db):
        # DISTINCT output has no c1 column to sort by -- standard SQL also
        # rejects this shape.
        with pytest.raises(QueryError):
            db.query(
                "SELECT DISTINCT c3 FROM R WHERE R.Version = 'master' "
                "ORDER BY c1"
            )

    def test_group_by_order_by_ungrouped_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.query(
                "SELECT c3, count(id) FROM R WHERE R.Version = 'master' "
                "GROUP BY c3 ORDER BY c1"
            )

    def test_limit_exceeding_cardinality(self, db):
        result = db.query(
            "SELECT id FROM R WHERE R.Version = 'master' ORDER BY id LIMIT 999"
        )
        assert len(result.rows) == 21

    def test_order_by_limit_zero(self, db):
        result = db.query(
            "SELECT id FROM R WHERE R.Version = 'master' ORDER BY c1 LIMIT 0"
        )
        assert result.rows == []

    def test_head_distinct_merges_branch_annotations(self, db):
        result = db.query(
            "SELECT DISTINCT c3 FROM R WHERE HEAD(R.Version) = true ORDER BY c3"
        )
        # c3=7 rows exist on both branches; DISTINCT must emit the value once
        # with the union of the branches it is live in.
        assert result.rows == [(3,), (7,), (5000,)]
        assert result.branch_annotations[1] == frozenset({"master", "dev"})

    def test_head_scan_with_order_and_limit(self, db):
        result = db.query(
            "SELECT id FROM R WHERE HEAD(R.Version) = true "
            "AND id >= 100 ORDER BY id DESC"
        )
        assert result.rows == [(200,), (100,)]
        assert result.branch_annotations == [
            frozenset({"master"}),
            frozenset({"dev"}),
        ]


class TestMultiConditionJoin:
    def test_all_join_conditions_applied(self, db):
        result = db.query(
            "SELECT * FROM R as R1, R as R2 WHERE R1.Version = 'dev' "
            "AND R1.id = R2.id AND R1.c3 = R2.c3 AND R2.Version = 'master'"
        )
        # Key 5's c3 was updated on dev (5000 vs 7) and key 6 was deleted, so
        # of the 19 id-matches only 18 also agree on c3.
        assert len(result) == 18

    def test_swapped_condition_orientation(self, db):
        result = db.query(
            "SELECT * FROM R as R1, R as R2 WHERE R1.Version = 'dev' "
            "AND R1.id = R2.id AND R2.c3 = R1.c3 AND R2.Version = 'master'"
        )
        assert len(result) == 18

    def test_condition_with_foreign_alias_rejected(self, db):
        with pytest.raises(QueryError):
            db.query(
                "SELECT * FROM R as R1, R as R2 WHERE R1.Version = 'dev' "
                "AND R1.id = R3.id AND R2.Version = 'master'"
            )


class TestExplainAndDiffCounter:
    def test_explain_shows_pushed_predicate(self, db):
        plan = db.explain(
            "SELECT id, c1 FROM R WHERE R.Version = 'master' AND c1 > 5"
        )
        assert "Project(id, c1)" in plan
        assert "VersionScan" in plan
        assert "c1 > 5" in plan
        # The predicate was pushed into the scan: no residual Filter node.
        assert "Filter" not in plan

    def test_explain_shows_diff_rewrite(self, db):
        plan = db.explain(
            "SELECT * FROM R WHERE R.Version = 'dev' AND R.id NOT IN "
            "(SELECT id FROM R WHERE R.Version = 'master')"
        )
        assert "VersionDiff" in plan
        assert "AntiJoin" not in plan

    def test_explain_tags_top_n_rewrite(self, db):
        plan = db.explain(
            "SELECT id FROM R WHERE R.Version = 'master' ORDER BY c1 LIMIT 5"
        )
        assert "TopN(c1 ASC)" in plan
        assert "[top-n k=5]" in plan
        assert "Limit" not in plan and "Sort" not in plan

    def test_plain_order_by_keeps_sort_node(self, db):
        plan = db.explain(
            "SELECT id FROM R WHERE R.Version = 'master' ORDER BY c1"
        )
        assert "Sort(c1 ASC)" in plan
        assert "top-n" not in plan

    def test_non_key_not_in_keeps_anti_join(self, db):
        plan = db.explain(
            "SELECT * FROM R WHERE R.Version = 'dev' AND R.c1 NOT IN "
            "(SELECT c1 FROM R WHERE R.Version = 'master')"
        )
        assert "AntiJoin" in plan
        assert "VersionDiff" not in plan

    def test_sql_diff_reaches_engine_diff_primitive(self, db):
        engine = db.relation("R").engine
        before = engine.stats.diffs
        db.query(
            "SELECT * FROM R WHERE R.Version = 'dev' AND R.id NOT IN "
            "(SELECT id FROM R WHERE R.Version = 'master')"
        )
        assert engine.stats.diffs == before + 1

    def test_non_key_not_in_results(self, db):
        result = db.query(
            "SELECT id FROM R WHERE R.Version = 'dev' AND R.c1 NOT IN "
            "(SELECT c1 FROM R WHERE R.Version = 'master')"
        )
        # The generic anti-join must agree with a scan-side recomputation.
        master_c1 = {row[0] for row in db.query(
            "SELECT c1 FROM R WHERE R.Version = 'master'"
        )}
        expected = {
            row[0]
            for row in db.query("SELECT id, c1 FROM R WHERE R.Version = 'dev'")
            if row[1] not in master_c1
        }
        assert {row[0] for row in result.rows} == expected


class TestExecutorErrors:
    def test_unknown_relation(self, db):
        with pytest.raises(Exception):
            db.query("SELECT * FROM missing WHERE missing.Version = 'master'")

    def test_unknown_column_predicate(self, db):
        with pytest.raises(QueryError):
            db.query("SELECT * FROM R WHERE R.Version = 'master' AND nope = 1")

    def test_three_tables_rejected(self, db):
        with pytest.raises(QueryError):
            db.query(
                "SELECT * FROM R a, R b, R c WHERE a.Version='master' "
                "AND b.Version='master' AND c.Version='master' AND a.id = b.id"
            )
