"""Allow ``python -m repro.bench`` to run the benchmark CLI."""

import sys

from repro.bench.cli import main

sys.exit(main())
