"""Branch-oriented bitmap index.

One bitmap per branch; bit ``i`` of branch B's bitmap says whether tuple ``i``
is live in B.  Each branch's bitmap lives in its own growable buffer, so
overflowing one branch only grows that branch's bitmap (paper Section 3.1).
This orientation makes single-branch scans and whole-branch snapshot commits
cheap, which is why the evaluation uses it for tuple-first and hybrid
(Section 5, preamble).
"""

from __future__ import annotations

from repro.bitmap.base import BitmapIndex, BitmapOrientation
from repro.bitmap.bitmap import Bitmap
from repro.errors import BranchExistsError


class BranchOrientedBitmapIndex(BitmapIndex):
    """A ``{branch name -> Bitmap}`` index."""

    orientation = BitmapOrientation.BRANCH

    def __init__(self):
        self._bitmaps: dict[str, Bitmap] = {}
        self._max_tuple = 0

    # -- branch management ----------------------------------------------------

    def add_branch(self, branch: str, clone_from: str | None = None) -> None:
        if branch in self._bitmaps:
            raise BranchExistsError(f"branch {branch!r} already in index")
        if clone_from is None:
            self._bitmaps[branch] = Bitmap()
        else:
            self._require_branch(clone_from)
            # A branch operation is a straight memory copy of the parent's
            # bitmap (paper Section 3.2).
            self._bitmaps[branch] = self._bitmaps[clone_from].copy()

    def has_branch(self, branch: str) -> bool:
        return branch in self._bitmaps

    def branches(self) -> list[str]:
        return list(self._bitmaps)

    def drop_branch(self, branch: str) -> None:
        """Remove a branch's bitmap (used when retiring merged-away heads)."""
        self._require_branch(branch)
        del self._bitmaps[branch]

    # -- bit manipulation -----------------------------------------------------

    def set(self, tuple_index: int, branch: str) -> None:
        self._require_branch(branch)
        self._bitmaps[branch].set(tuple_index)
        if tuple_index >= self._max_tuple:
            self._max_tuple = tuple_index + 1

    def clear(self, tuple_index: int, branch: str) -> None:
        self._require_branch(branch)
        self._bitmaps[branch].clear(tuple_index)
        if tuple_index >= self._max_tuple:
            self._max_tuple = tuple_index + 1

    def is_set(self, tuple_index: int, branch: str) -> bool:
        self._require_branch(branch)
        return self._bitmaps[branch].get(tuple_index)

    # -- whole-branch views ---------------------------------------------------

    def branch_bitmap(self, branch: str) -> Bitmap:
        self._require_branch(branch)
        return self._bitmaps[branch].copy()

    def restore_branch(self, branch: str, bitmap: Bitmap) -> None:
        self._require_branch(branch)
        self._bitmaps[branch] = bitmap.copy()
        self._max_tuple = max(self._max_tuple, len(bitmap))

    def num_tuples(self) -> int:
        return self._max_tuple

    def size_bytes(self) -> int:
        return sum(bitmap.size_bytes for bitmap in self._bitmaps.values())
