#!/usr/bin/env python3
"""Quickstart: create a versioned relation, branch it, diff it, merge it.

This walks the core Decibel workflow from the paper's Section 2 -- init,
branch, modify, commit, diff, merge -- through the public :class:`repro.Decibel`
facade, and finishes with the four benchmark-style SQL queries of Table 1.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

from repro import Decibel, Record, Schema


def main() -> None:
    directory = tempfile.mkdtemp(prefix="decibel-quickstart-")
    print(f"working in {directory}\n")

    # A dataset with one relation, backed by the hybrid storage engine.
    db = Decibel(directory, engine="hybrid")
    schema = Schema.of_ints(4)  # id (primary key) plus c1, c2, c3
    ratings = db.create_relation("ratings", schema)

    # --- init: load the first version onto the master branch ----------------
    initial = [Record((i, i % 5, i * 10, 0)) for i in range(50)]
    first_commit = ratings.init(initial, message="initial load")
    print(f"initial commit on master: {first_commit}")

    # --- branch: an analyst forks the dataset to clean it -------------------
    ratings.branch("cleaning", from_branch="master")
    session = ratings.session("cleaning")
    session.update(Record((7, 4, 70, 1)))     # fix a mislabeled rating
    session.delete(13)                         # drop a bogus record
    session.insert(Record((100, 3, 555, 1)))   # add a missing record
    cleaning_commit = session.commit("clean pass 1")
    print(f"cleaning branch committed: {cleaning_commit}")

    # Meanwhile master keeps evolving.
    ratings.insert("master", Record((101, 2, 42, 0)))
    ratings.commit("master", "new arrivals")

    # --- diff: what changed between the two branches? -----------------------
    diff = ratings.diff("cleaning", "master")
    print(f"\nrecords only in cleaning: {sorted(r.values[0] for r in diff.positive)}")
    print(f"records only in master:   {sorted(r.values[0] for r in diff.negative)}")

    # --- merge: bring the cleaned data back into master ----------------------
    result = ratings.merge("master", "cleaning", message="merge cleaning")
    print(f"\nmerged into master as {result.commit_id} "
          f"({result.records_applied} records applied, "
          f"{result.num_conflicts} conflicts)")

    # --- the four benchmark queries (paper Table 1) --------------------------
    print("\nQuery 1 -- single-version scan of master:")
    q1 = db.query("SELECT * FROM ratings WHERE ratings.Version = 'master' AND c1 >= 4")
    print(f"  {len(q1)} records with c1 >= 4")

    print("Query 2 -- positive diff (cleaning vs first commit):")
    q2 = db.query(
        "SELECT * FROM ratings WHERE ratings.Version = 'cleaning' AND ratings.id NOT IN "
        f"(SELECT id FROM ratings WHERE ratings.Version = '{first_commit}')"
    )
    print(f"  {len(q2)} records added since the initial load")

    print("Query 3 -- join of two versions:")
    q3 = db.query(
        "SELECT * FROM ratings as R1, ratings as R2 WHERE R1.Version = 'cleaning' "
        "AND R1.c3 = 1 AND R1.id = R2.id AND R2.Version = 'master'"
    )
    print(f"  {len(q3)} cleaned records also present in master")

    print("Query 4 -- scan all branch heads:")
    q4 = db.query("SELECT * FROM ratings WHERE HEAD(ratings.Version) = true")
    multi = sum(1 for branches in q4.branch_annotations if len(branches) > 1)
    print(f"  {len(q4)} head records, {multi} of them shared by both branches")

    db.close()


if __name__ == "__main__":
    main()
