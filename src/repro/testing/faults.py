"""Deterministic fault injection for crash-recovery tests.

Durability code cannot be trusted until it has been crashed, on purpose, at
every point where a real power failure could interrupt it.  This module gives
the durable I/O paths named *crashpoints*: zero-cost markers such as
``wal-append-pre-fsync`` or ``graph-persist-pre-rename`` placed immediately
before or after the system call whose interruption they simulate.  A test
arms the harness with a :class:`FaultSchedule` (crashpoint name, which hit to
fire on, and optionally how many trailing bytes to tear off the target file),
runs a workload, and the matching crashpoint raises :class:`InjectedCrash` --
simulating the process dying at exactly that instruction.

Two properties make the simulation honest:

* **Determinism** -- a schedule fires on the *N*-th arrival at a named point,
  so the same workload + schedule always crashes in the same place.
* **Death is permanent** -- once a schedule has fired, *every* subsequent
  crashpoint raises immediately, and durable writers call
  :func:`check_crashed` before touching the disk.  Cleanup handlers
  (``finally`` blocks that would log an ABORT record, release code that would
  flush) therefore cannot write anything a genuinely dead process could not
  have written.

Torn writes are simulated by truncating the tail of the target file *before*
raising, modelling a write that only partially reached the platter.

The harness is inert unless a test has armed it via :func:`inject`; the
per-crashpoint cost in production is one global read and a ``None`` check.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


class InjectedCrash(BaseException):
    """A simulated process death, raised at an armed crashpoint.

    Derives from :class:`BaseException` so that ``except Exception`` recovery
    code cannot accidentally swallow the "crash" and carry on writing.
    """


@dataclass
class FaultSchedule:
    """One planned crash: fire at the ``hit``-th arrival at ``crashpoint``.

    ``torn_bytes`` > 0 additionally truncates that many bytes from the end of
    the file the crashpoint is guarding, simulating a torn (partial) write.
    """

    crashpoint: str
    hit: int = 1
    torn_bytes: int = 0


@dataclass
class FaultInjector:
    """Mutable state for one armed :func:`inject` scope."""

    schedules: list[FaultSchedule]
    counts: dict[str, int] = field(default_factory=dict)
    crashed: bool = False
    fired: FaultSchedule | None = None
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def arrive(self, name: str, path: str | None) -> None:
        # Serialized so concurrent server sessions racing through the same
        # crashpoint still count hits deterministically.
        with self._lock:
            if self.crashed:
                raise InjectedCrash(f"process is dead (crashed at {self.fired!r})")
            self.counts[name] = self.counts.get(name, 0) + 1
            for schedule in self.schedules:
                if schedule.crashpoint == name and self.counts[name] == schedule.hit:
                    if schedule.torn_bytes > 0 and path is not None:
                        _tear_tail(path, schedule.torn_bytes)
                    self.crashed = True
                    self.fired = schedule
                    raise InjectedCrash(
                        f"injected crash at {name!r} (hit {schedule.hit})"
                    )


def _tear_tail(path: str, torn_bytes: int) -> None:
    """Truncate the last ``torn_bytes`` bytes of ``path``, if it exists."""
    try:
        size = os.path.getsize(path)
    except OSError:
        return
    os.truncate(path, max(0, size - torn_bytes))


_active: FaultInjector | None = None


def crashpoint(name: str, path: str | None = None) -> None:
    """Mark a durability-relevant instruction; dies here when armed.

    ``path`` names the file whose write the crashpoint guards, so torn-write
    schedules know what to truncate.  A no-op unless :func:`inject` is active.
    """
    injector = _active
    if injector is not None:
        injector.arrive(name, path)


def check_crashed() -> None:
    """Raise if a crash has already been injected in this scope.

    Durable writers call this before touching the disk so that code running
    after the simulated death (``finally`` blocks, lock release paths) cannot
    persist anything a real dead process could not have.
    """
    injector = _active
    if injector is not None and injector.crashed:
        raise InjectedCrash(f"process is dead (crashed at {injector.fired!r})")


@contextmanager
def inject(*schedules: FaultSchedule) -> Iterator[FaultInjector]:
    """Arm the harness with ``schedules`` for the duration of the block.

    Yields the :class:`FaultInjector` so tests can assert which schedule
    fired (``injector.fired``) and how often each point was reached
    (``injector.counts``).  Nesting is not supported: the harness is global
    because the code under test reaches it through module-level calls.
    """
    global _active
    if _active is not None:
        raise RuntimeError("fault injection scopes cannot nest")
    injector = FaultInjector(list(schedules))
    _active = injector
    try:
        yield injector
    finally:
        _active = None


# -- network-layer faults --------------------------------------------------------
#
# The serving layer adds a second fault surface: the wire.  Network faults
# are *not* process deaths -- a dropped connection leaves both endpoints
# running -- so they get their own schedule type and arming scope.  The
# framing code places named netpoints (``server-send-frame``,
# ``client-recv-frame``, ...) around socket reads and writes; an armed
# schedule tells that point to misbehave on its N-th arrival.


@dataclass
class NetFaultSchedule:
    """One planned network fault at the ``hit``-th arrival at ``netpoint``.

    ``action`` selects the misbehaviour:

    * ``"close"`` -- drop the connection immediately (peer sees a reset /
      truncated stream);
    * ``"truncate"`` -- transmit only ``keep_bytes`` bytes of the frame,
      then drop the connection (a mid-frame kill: the peer reads a torn
      length-prefixed frame);
    * ``"delay"`` -- stall the operation for ``delay_s`` seconds before
      letting it proceed (a slow or stalled peer; drives idle/slow-client
      timeout paths).
    """

    netpoint: str
    hit: int = 1
    action: str = "close"
    delay_s: float = 0.0
    keep_bytes: int = 0


@dataclass
class NetFaultInjector:
    """Mutable state for one armed :func:`inject_net` scope."""

    schedules: list[NetFaultSchedule]
    counts: dict[str, int] = field(default_factory=dict)
    fired: list[NetFaultSchedule] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def arrive(self, name: str) -> NetFaultSchedule | None:
        """Record an arrival; return the schedule to apply, if any fires."""
        with self._lock:
            self.counts[name] = self.counts.get(name, 0) + 1
            for schedule in self.schedules:
                if schedule.netpoint == name and self.counts[name] == schedule.hit:
                    self.fired.append(schedule)
                    return schedule
        return None


_net_active: NetFaultInjector | None = None


def netpoint(name: str) -> NetFaultSchedule | None:
    """Mark a wire operation; returns the fault to apply when armed.

    Unlike :func:`crashpoint`, the caller applies the fault itself (closing
    its transport, sleeping, truncating its send) because the right
    misbehaviour is endpoint-specific.  A no-op returning ``None`` unless
    :func:`inject_net` is active.
    """
    injector = _net_active
    if injector is not None:
        return injector.arrive(name)
    return None


@contextmanager
def inject_net(*schedules: NetFaultSchedule) -> Iterator[NetFaultInjector]:
    """Arm network-fault schedules for the duration of the block.

    Independent of :func:`inject` (the two may be combined to crash a
    server while its clients suffer wire faults).  Yields the injector so
    tests can assert what fired.
    """
    global _net_active
    if _net_active is not None:
        raise RuntimeError("network fault injection scopes cannot nest")
    injector = NetFaultInjector(list(schedules))
    _net_active = injector
    try:
        yield injector
    finally:
        _net_active = None
