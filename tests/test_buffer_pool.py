"""Tests for the buffer pool (LRU, pinning, dirty write-back)."""

import pytest

from repro.core.buffer_pool import BufferPool
from repro.core.page import Page, PageId
from repro.core.record import Record, RecordCodec
from repro.errors import StorageError


@pytest.fixture
def codec(schema):
    return RecordCodec(schema)


def make_page(codec, number, file_name="f.heap"):
    page = Page(PageId(file_name, number), codec, page_size=512)
    page.append(Record((number, 0, 0, 0)))
    return page


class TestBufferPool:
    def test_get_page_calls_loader_on_miss(self, codec):
        pool = BufferPool(capacity_pages=4)
        calls = []

        def loader():
            calls.append(1)
            return make_page(codec, 0)

        page_id = PageId("f.heap", 0)
        pool.get_page(page_id, loader)
        pool.get_page(page_id, loader)
        assert len(calls) == 1
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1

    def test_hit_rate(self, codec):
        pool = BufferPool(capacity_pages=4)
        page_id = PageId("f.heap", 0)
        pool.get_page(page_id, lambda: make_page(codec, 0))
        pool.get_page(page_id, lambda: make_page(codec, 0))
        assert pool.stats.hit_rate == pytest.approx(0.5)

    def test_lru_eviction(self, codec):
        pool = BufferPool(capacity_pages=2)
        for number in range(3):
            pool.put_page(make_page(codec, number))
        assert len(pool) == 2
        assert pool.stats.evictions == 1

    def test_eviction_prefers_least_recent(self, codec):
        pool = BufferPool(capacity_pages=2)
        pool.put_page(make_page(codec, 0))
        pool.put_page(make_page(codec, 1))
        # Touch page 0 so page 1 becomes the LRU victim.
        pool.get_page(PageId("f.heap", 0), lambda: make_page(codec, 0))
        pool.put_page(make_page(codec, 2))
        pool.get_page(PageId("f.heap", 0), lambda: make_page(codec, 0))
        assert pool.stats.misses == 0

    def test_pinned_pages_not_evicted(self, codec):
        pool = BufferPool(capacity_pages=2)
        pool.put_page(make_page(codec, 0))
        pool.put_page(make_page(codec, 1))
        pool.pin(PageId("f.heap", 0))
        pool.pin(PageId("f.heap", 1))
        pool.put_page(make_page(codec, 2))
        # Both pinned pages remain; the pool grows instead of failing.
        assert len(pool) == 3

    def test_unpin_requires_pin(self, codec):
        pool = BufferPool(capacity_pages=2)
        pool.put_page(make_page(codec, 0))
        with pytest.raises(StorageError):
            pool.unpin(PageId("f.heap", 0))

    def test_pin_nonresident_rejected(self):
        pool = BufferPool(capacity_pages=2)
        with pytest.raises(StorageError):
            pool.pin(PageId("f.heap", 0))

    def test_dirty_page_flushed_on_eviction(self, codec):
        flushed = []
        pool = BufferPool(capacity_pages=1)
        pool.put_page(make_page(codec, 0), dirty=True, flusher=flushed.append)
        pool.put_page(make_page(codec, 1))
        assert len(flushed) == 1
        assert pool.stats.flushes == 1

    def test_flush_all(self, codec):
        flushed = []
        pool = BufferPool(capacity_pages=4)
        pool.put_page(make_page(codec, 0), dirty=True, flusher=flushed.append)
        pool.put_page(make_page(codec, 1), dirty=False, flusher=flushed.append)
        pool.flush_all()
        assert len(flushed) == 1

    def test_mark_dirty_then_clear_flushes(self, codec):
        flushed = []
        pool = BufferPool(capacity_pages=4)
        pool.put_page(make_page(codec, 0), flusher=flushed.append)
        pool.mark_dirty(PageId("f.heap", 0))
        pool.clear()
        assert len(flushed) == 1
        assert len(pool) == 0

    def test_mark_dirty_nonresident_rejected(self):
        pool = BufferPool(capacity_pages=4)
        with pytest.raises(StorageError):
            pool.mark_dirty(PageId("f.heap", 0))

    def test_invalidate_file_drops_only_that_file(self, codec):
        pool = BufferPool(capacity_pages=8)
        pool.put_page(make_page(codec, 0, "a.heap"))
        pool.put_page(make_page(codec, 0, "b.heap"))
        pool.invalidate_file("a.heap")
        assert len(pool) == 1

    def test_zero_capacity_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(capacity_pages=0)

    def test_stats_reset(self, codec):
        pool = BufferPool(capacity_pages=2)
        pool.get_page(PageId("f.heap", 0), lambda: make_page(codec, 0))
        pool.stats.reset()
        assert pool.stats.misses == 0


class TestByteBudget:
    def test_evicts_by_bytes(self, codec):
        # Pages are 512 bytes each; a 1200-byte budget holds two of them.
        pool = BufferPool(capacity_bytes=1200)
        for number in range(4):
            pool.put_page(make_page(codec, number))
        assert len(pool) == 2
        assert pool.resident_bytes == 1024
        assert pool.stats.evictions == 2

    def test_resident_bytes_track_drops(self, codec):
        pool = BufferPool(capacity_bytes=10_000)
        pool.put_page(make_page(codec, 0, "a.heap"))
        pool.put_page(make_page(codec, 0, "b.heap"))
        assert pool.resident_bytes == 1024
        pool.invalidate_file("a.heap")
        assert pool.resident_bytes == 512
        pool.clear()
        assert pool.resident_bytes == 0

    def test_zero_byte_budget_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(capacity_bytes=0)


class TestTransientReads:
    def test_transient_miss_is_not_admitted(self, codec):
        pool = BufferPool(capacity_bytes=10_000)
        page_id = PageId("f.heap", 0)
        page = pool.get_page(
            page_id, lambda: make_page(codec, 0), transient=True
        )
        assert page.num_records == 1
        assert len(pool) == 0
        assert pool.stats.bypasses == 1

    def test_transient_hit_served_from_pool(self, codec):
        pool = BufferPool(capacity_bytes=10_000)
        pool.put_page(make_page(codec, 0))
        loads = []
        pool.get_page(
            PageId("f.heap", 0),
            lambda: loads.append(1) or make_page(codec, 0),
            transient=True,
        )
        assert not loads
        assert pool.stats.hits == 1

    def test_big_heap_scan_bypasses_pool(self, tmp_path, codec, schema):
        from repro.core.heapfile import HeapFile
        from repro.core.record import Record

        pool = BufferPool(capacity_bytes=1200)
        heap = HeapFile(str(tmp_path / "big.heap"), schema, pool, page_size=512)
        for key in range(200):
            heap.append(Record((key, 0, 0, 0)))
        heap.flush()
        pool.clear()
        assert heap.scan_exceeds_pool()
        records = list(heap.scan_records())
        assert len(records) == 200
        # The one-pass scan read through the pool without filling it.
        assert len(pool) == 0
        assert pool.stats.bypasses > 0

    def test_small_heap_scan_is_cached(self, tmp_path, codec, schema):
        from repro.core.heapfile import HeapFile
        from repro.core.record import Record

        pool = BufferPool(capacity_bytes=1 << 20)
        heap = HeapFile(str(tmp_path / "small.heap"), schema, pool, page_size=512)
        for key in range(50):
            heap.append(Record((key, 0, 0, 0)))
        heap.flush()
        pool.clear()
        assert not heap.scan_exceeds_pool()
        list(heap.scan_records())
        assert len(pool) > 0
        assert pool.stats.bypasses == 0
