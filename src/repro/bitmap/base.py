"""The bitmap index interface shared by both orientations.

The paper describes two ways to organize the tuple-first bitmap index
(Section 3.1): *tuple-oriented* (one bitmap row per tuple, bit ``i`` says the
tuple is live in branch ``i``) and *branch-oriented* (one bitmap per branch,
bit ``i`` says tuple ``i`` is live).  Both support the same logical
operations; they differ in which operations are cheap, which is exactly what
the evaluation probes.  The engines program against this interface so the
orientation is a construction-time choice (and an ablation axis).
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import Iterator

from repro.bitmap.bitmap import Bitmap
from repro.errors import BranchNotFoundError


class BitmapOrientation(enum.Enum):
    """How the (tuple x branch) liveness matrix is laid out."""

    BRANCH = "branch"
    TUPLE = "tuple"


class BitmapIndex(ABC):
    """Tracks which branches each tuple is live in."""

    orientation: BitmapOrientation

    # -- branch management ----------------------------------------------------

    @abstractmethod
    def add_branch(self, branch: str, clone_from: str | None = None) -> None:
        """Register ``branch``; optionally cloning another branch's bits."""

    @abstractmethod
    def has_branch(self, branch: str) -> bool:
        """True if ``branch`` is registered."""

    @abstractmethod
    def branches(self) -> list[str]:
        """All registered branch names in registration order."""

    # -- bit manipulation -----------------------------------------------------

    @abstractmethod
    def set(self, tuple_index: int, branch: str) -> None:
        """Mark ``tuple_index`` live in ``branch``."""

    @abstractmethod
    def clear(self, tuple_index: int, branch: str) -> None:
        """Mark ``tuple_index`` not live in ``branch``."""

    @abstractmethod
    def is_set(self, tuple_index: int, branch: str) -> bool:
        """True if ``tuple_index`` is live in ``branch``."""

    # -- whole-branch views ---------------------------------------------------

    @abstractmethod
    def branch_bitmap(self, branch: str) -> Bitmap:
        """The liveness bitmap of ``branch`` over all tuples.

        For the branch-oriented layout this is a cheap copy; for the
        tuple-oriented layout the entire index must be scanned to assemble
        it -- the asymmetry the paper's Query 1 results hinge on.
        """

    @abstractmethod
    def restore_branch(self, branch: str, bitmap: Bitmap) -> None:
        """Overwrite the live bits of ``branch`` with ``bitmap``."""

    @abstractmethod
    def num_tuples(self) -> int:
        """Number of tuple positions the index covers."""

    @abstractmethod
    def size_bytes(self) -> int:
        """Approximate memory footprint of the index."""

    # -- derived operations (shared implementations) ---------------------------

    def iter_live_tuples(self, branch: str) -> Iterator[int]:
        """Tuple indexes live in ``branch``, ascending."""
        return self.branch_bitmap(branch).iter_set_bits()

    def live_count(self, branch: str) -> int:
        """Number of tuples live in ``branch``."""
        return self.branch_bitmap(branch).count()

    def union(self, branches: list[str]) -> Bitmap:
        """Bitmap of tuples live in any of ``branches``."""
        result = Bitmap()
        for branch in branches:
            result = result | self.branch_bitmap(branch)
        return result

    def intersection(self, branches: list[str]) -> Bitmap:
        """Bitmap of tuples live in all of ``branches``."""
        if not branches:
            return Bitmap()
        result = self.branch_bitmap(branches[0])
        for branch in branches[1:]:
            result = result & self.branch_bitmap(branch)
        return result

    def difference(self, branch_a: str, branch_b: str) -> Bitmap:
        """Bitmap of tuples live in ``branch_a`` but not ``branch_b``."""
        return self.branch_bitmap(branch_a).and_not(self.branch_bitmap(branch_b))

    def symmetric_difference(self, branch_a: str, branch_b: str) -> Bitmap:
        """Bitmap of tuples live in exactly one of the two branches (XOR)."""
        return self.branch_bitmap(branch_a) ^ self.branch_bitmap(branch_b)

    def _require_branch(self, branch: str) -> None:
        if not self.has_branch(branch):
            raise BranchNotFoundError(
                f"branch {branch!r} is not present in this bitmap index"
            )
