"""Test-support utilities shipped with the library.

The only resident today is :mod:`repro.testing.faults`, the deterministic
fault-injection harness used by the crash-recovery test matrix.  It lives in
the installed package (not under ``tests/``) because the durability code in
``repro.core`` and ``repro.storage`` registers its crashpoints by calling
into it; in production the harness is inert.
"""

from repro.testing.faults import (
    FaultSchedule,
    InjectedCrash,
    check_crashed,
    crashpoint,
    inject,
)

__all__ = [
    "FaultSchedule",
    "InjectedCrash",
    "check_crashed",
    "crashpoint",
    "inject",
]
