"""Tests for record predicates."""

import pytest

from repro.core.predicates import (
    And,
    ColumnPredicate,
    ModuloPredicate,
    Not,
    Or,
    TruePredicate,
    non_selective_predicate,
)
from repro.core.record import Record
from repro.errors import QueryError


@pytest.fixture
def record():
    return Record((5, 10, 20, 30))


class TestColumnPredicate:
    @pytest.mark.parametrize(
        "op,value,expected",
        [
            ("=", 10, True),
            ("==", 10, True),
            ("=", 11, False),
            ("!=", 10, False),
            ("<>", 11, True),
            ("<", 11, True),
            ("<=", 10, True),
            (">", 9, True),
            (">=", 10, True),
            (">", 10, False),
        ],
    )
    def test_operators(self, schema, record, op, value, expected):
        assert ColumnPredicate("c1", op, value).evaluate(record, schema) is expected

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            ColumnPredicate("c1", "~", 1)

    def test_evaluates_named_column(self, schema, record):
        assert ColumnPredicate("id", "=", 5).evaluate(record, schema)
        assert ColumnPredicate("c3", "=", 30).evaluate(record, schema)


class TestCombinators:
    def test_true_predicate(self, schema, record):
        assert TruePredicate().evaluate(record, schema)

    def test_and(self, schema, record):
        predicate = And(ColumnPredicate("c1", ">", 5), ColumnPredicate("c2", "<", 25))
        assert predicate.evaluate(record, schema)
        assert not And(
            ColumnPredicate("c1", ">", 50), ColumnPredicate("c2", "<", 25)
        ).evaluate(record, schema)

    def test_or(self, schema, record):
        predicate = Or(ColumnPredicate("c1", ">", 50), ColumnPredicate("c2", "=", 20))
        assert predicate.evaluate(record, schema)

    def test_not(self, schema, record):
        assert Not(ColumnPredicate("c1", "=", 11)).evaluate(record, schema)

    def test_operator_overloads(self, schema, record):
        predicate = ColumnPredicate("c1", ">", 5) & ColumnPredicate("c2", "=", 20)
        assert predicate.evaluate(record, schema)
        predicate = ColumnPredicate("c1", ">", 99) | ColumnPredicate("c2", "=", 20)
        assert predicate.evaluate(record, schema)
        predicate = ~ColumnPredicate("c1", ">", 99)
        assert predicate.evaluate(record, schema)


class TestModuloPredicate:
    def test_matches_non_multiples(self, schema):
        predicate = ModuloPredicate("c1", 10)
        assert predicate.evaluate(Record((1, 7, 0, 0)), schema)
        assert not predicate.evaluate(Record((1, 20, 0, 0)), schema)

    def test_non_selective_helper_selectivity(self, schema):
        predicate = non_selective_predicate("c1", modulus=10)
        matches = sum(
            1
            for value in range(1000)
            if predicate.evaluate(Record((0, value, 0, 0)), schema)
        )
        assert matches == 900
