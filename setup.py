"""Setuptools shim.

The execution environment has no network access and no ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail; this shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path.  All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
