"""Network-fault matrix for the serving layer.

Each test arms :func:`repro.testing.faults.inject_net` (wire faults) or
:func:`repro.testing.faults.inject` (process death) and asserts the
robustness contract: a killed client costs its session and nothing else; a
dropped response is retried transparently where safe; a stalled peer is
disconnected, not waited on; a server crash mid-commit loses nothing a
client was told was committed.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.record import Record
from repro.core.schema import Schema
from repro.db.database import Decibel
from repro.errors import DecibelError, UnavailableError
from repro.server import DecibelClient, ServerConfig, ServerThread
from repro.testing.faults import (
    FaultSchedule,
    NetFaultSchedule,
    inject,
    inject_net,
)

SCHEMA = Schema.of_ints(2)


def start_server(tmp_path, rows=10, **config_kwargs):
    db = Decibel(str(tmp_path / "data"))
    rel = db.create_relation("r", SCHEMA)
    rel.init([Record((i, i)) for i in range(rows)])
    config = ServerConfig(worker_threads=6, **config_kwargs)
    thread = ServerThread(db, config, own_db=True)
    host, port = thread.start()
    return thread, host, port


COUNT_SQL = "SELECT COUNT(*) FROM r WHERE r.Version = 'master'"


class TestWireFaults:
    def test_client_killed_mid_frame_only_costs_its_session(self, tmp_path):
        server, host, port = start_server(tmp_path, io_timeout_s=2.0)
        try:
            victim = DecibelClient(host, port, max_attempts=1)
            victim.connect()
            # The victim's next send is cut off after 2 bytes of the
            # header: the server sees a torn frame and drops the session.
            with inject_net(
                NetFaultSchedule("client-send-frame", action="truncate", keep_bytes=2)
            ) as injector:
                with pytest.raises((UnavailableError, ConnectionError)):
                    victim.query(COUNT_SQL)
                assert injector.fired, "the truncate fault never fired"
            victim.close()
            # The server survived: a fresh session works immediately.
            with DecibelClient(host, port) as fresh:
                fresh.connect()
                assert fresh.query(COUNT_SQL).rows == [(10,)]
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if fresh.server_stats()["sessions"] == 1:
                        break
                    time.sleep(0.05)
                assert fresh.server_stats()["sessions"] == 1, (
                    "victim session was never reaped"
                )
        finally:
            server.stop()

    def test_dropped_response_is_retried_for_reads(self, tmp_path):
        server, host, port = start_server(tmp_path)
        try:
            with DecibelClient(host, port, default_deadline_s=15.0) as c:
                c.connect()
                # The server's next response frame is dropped mid-send; the
                # client must reconnect and retry the (idempotent) query.
                with inject_net(
                    NetFaultSchedule(
                        "server-send-frame", action="truncate", keep_bytes=3
                    )
                ) as injector:
                    assert c.query(COUNT_SQL).rows == [(10,)]
                    assert injector.fired, "the drop fault never fired"
        finally:
            server.stop()

    def test_write_with_dropped_response_is_not_silently_retried(self, tmp_path):
        server, host, port = start_server(tmp_path)
        try:
            with DecibelClient(host, port) as c:
                c.connect()
                c.insert("r", [700, 700])
                # The commit ACK is dropped: the client cannot know the
                # outcome and must surface the failure, not guess.
                with inject_net(
                    NetFaultSchedule("server-send-frame", action="close")
                ):
                    with pytest.raises(UnavailableError):
                        c.commit("ack lost")
        finally:
            server.stop()

    def test_delayed_response_does_not_wedge_other_sessions(self, tmp_path):
        server, host, port = start_server(tmp_path, io_timeout_s=5.0)
        try:
            slow_result: list[object] = []

            def slow_call():
                with DecibelClient(host, port, default_deadline_s=15.0) as c:
                    c.connect()
                    with inject_net(
                        NetFaultSchedule(
                            "server-send-frame", action="delay", delay_s=1.0
                        )
                    ):
                        slow_result.append(c.query(COUNT_SQL).rows)

            t = threading.Thread(target=slow_call)
            t.start()
            time.sleep(0.1)
            # While one session's response is stalled, others are served.
            with DecibelClient(host, port) as other:
                other.connect()
                start = time.monotonic()
                assert other.query(COUNT_SQL).rows == [(10,)]
                assert time.monotonic() - start < 2.0
            t.join(timeout=30)
            assert not t.is_alive()
            assert slow_result == [[(10,)]]
        finally:
            server.stop()


class TestSlowAndIdleClients:
    def test_mid_frame_stall_is_disconnected(self, tmp_path):
        server, host, port = start_server(
            tmp_path, io_timeout_s=0.3, idle_timeout_s=30.0
        )
        try:
            raw = socket.create_connection((host, port), timeout=5.0)
            # Two bytes of a length prefix, then silence: a slow client.
            raw.sendall(b"\x00\x00")
            raw.settimeout(10.0)
            start = time.monotonic()
            assert raw.recv(1) == b"", "server never hung up on the stalled frame"
            assert time.monotonic() - start < 5.0
            raw.close()
        finally:
            server.stop()

    def test_idle_connection_is_disconnected(self, tmp_path):
        server, host, port = start_server(
            tmp_path, idle_timeout_s=0.3, io_timeout_s=5.0
        )
        try:
            raw = socket.create_connection((host, port), timeout=5.0)
            raw.settimeout(10.0)
            start = time.monotonic()
            assert raw.recv(1) == b"", "server never reaped the idle connection"
            assert time.monotonic() - start < 5.0
            raw.close()
        finally:
            server.stop()


class TestServerCrashUnderLoad:
    def test_crash_mid_group_commit_loses_no_acked_commit(self, tmp_path):
        """Kill the server at a WAL group-commit fsync under concurrent
        writers; every commit a client was told succeeded must survive
        recovery, and no torn partial commit may appear."""
        server, host, port = start_server(tmp_path, rows=0, max_sessions=16)
        acked: dict[str, list[int]] = {}
        acked_lock = threading.Lock()

        def writer(branch, first_key):
            try:
                with DecibelClient(
                    host, port, max_attempts=1, default_deadline_s=20.0
                ) as c:
                    c.connect()
                    c.use_branch(branch)
                    for batch in range(50):
                        keys = [first_key + batch * 2 + i for i in range(2)]
                        for k in keys:
                            c.insert("r", [k, k])
                        c.commit(f"batch {batch}")
                        with acked_lock:
                            acked.setdefault(branch, []).extend(keys)
            except (DecibelError, ConnectionError, OSError):
                return  # the server died under us, as planned

        branches = [f"w{i}" for i in range(4)]
        with DecibelClient(host, port) as admin:
            admin.connect()
            for branch in branches:
                admin.create_branch("r", branch, from_branch="master")

        # Let a few group commits through, then kill the fsync leader.
        with inject(
            FaultSchedule("wal-group-commit-pre-fsync", hit=6)
        ) as injector:
            threads = [
                threading.Thread(target=writer, args=(b, 1000 * (i + 1)))
                for i, b in enumerate(branches)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not any(t.is_alive() for t in threads), "writers hung"
            assert injector.crashed, "the crashpoint never fired"
            server.stop()

        # Recover exactly as after a real crash: reopen the directory.
        reopened = Decibel.open(str(tmp_path / "data"))
        try:
            for branch in branches:
                live = {
                    r.key(SCHEMA)
                    for r in reopened.relation("r").scan(branch)
                }
                expected = set(acked.get(branch, []))
                missing = expected - live
                assert not missing, (
                    f"branch {branch}: ACKed keys lost after recovery: "
                    f"{sorted(missing)}"
                )
                # No torn commits either: whatever extra rows exist beyond
                # the ACKed set must form whole 2-row batches (a commit whose
                # ACK was lost in flight is allowed to have landed).
                extra = live - expected
                assert len(extra) % 2 == 0, (
                    f"branch {branch}: partial commit visible: {sorted(extra)}"
                )
        finally:
            reopened.close()
