"""The engine-lint rule framework.

A lint rule is a small class that inspects one parsed source module (or, for
:class:`ProjectRule`, all of them at once) and reports
:class:`Violation` records.  Rules carry their id, a one-line *rationale*
(why the invariant exists) and a *fix hint* (what to do when it fires), so a
violation message is actionable without reading the rule's source.

The framework is deliberately tiny: modules are parsed once with
:mod:`ast`, each rule walks the tree it cares about, and
:func:`run_rules` aggregates the findings sorted by file and line.
``scripts/lint.py`` is the command-line front end.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule_id: str
    path: str
    line: int
    message: str
    fix_hint: str

    def render(self) -> str:
        """The violation as a one-line compiler-style diagnostic."""
        return (
            f"{self.path}:{self.line}: [{self.rule_id}] {self.message}"
            f" (fix: {self.fix_hint})"
        )


@dataclass
class SourceModule:
    """One Python source file, parsed lazily."""

    path: Path
    relpath: str
    source: str
    _tree: ast.Module | None = field(default=None, repr=False)

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=self.relpath)
        return self._tree

    @classmethod
    def load(cls, path: Path, root: Path) -> "SourceModule":
        return cls(
            path=path,
            relpath=path.relative_to(root).as_posix(),
            source=path.read_text(),
        )


class LintRule:
    """Base class for per-module rules.

    Subclasses set :attr:`id`, :attr:`rationale` and :attr:`fix_hint`, and
    implement :meth:`check` returning the violations found in one module.
    """

    #: Stable rule identifier (``REPROnnn``), referenced in config and tests.
    id: str = ""
    #: Why the invariant exists -- one sentence.
    rationale: str = ""
    #: What to do when the rule fires -- one sentence.
    fix_hint: str = ""

    def check(self, module: SourceModule) -> list[Violation]:
        raise NotImplementedError

    def violation(self, module: SourceModule, line: int, message: str) -> Violation:
        return Violation(self.id, module.relpath, line, message, self.fix_hint)


class ProjectRule(LintRule):
    """A rule that needs to see every module at once (cross-file parity)."""

    def check(self, module: SourceModule) -> list[Violation]:
        return []

    def check_project(self, modules: Sequence[SourceModule]) -> list[Violation]:
        raise NotImplementedError


def collect_modules(root: Path, package: str = "repro") -> list[SourceModule]:
    """Parse every ``.py`` file under ``root / package`` (sorted order)."""
    base = root / package
    return [
        SourceModule.load(path, root)
        for path in sorted(base.rglob("*.py"))
    ]


def run_rules(
    modules: Sequence[SourceModule], rules: Iterable[LintRule]
) -> list[Violation]:
    """Run every rule over every module; project rules see the whole set."""
    violations: list[Violation] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            violations.extend(rule.check_project(modules))
        else:
            for module in modules:
                violations.extend(rule.check(module))
    return sorted(violations, key=lambda v: (v.path, v.line, v.rule_id))
