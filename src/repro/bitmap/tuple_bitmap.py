"""Tuple-oriented bitmap index.

One bitmap row per tuple; bit ``i`` of tuple T's row says whether T is live in
branch ``i``.  All rows live in a single logical block of memory (paper
Section 3.1): here a flat ``bytearray`` of fixed-width rows that is doubled
(and every row re-copied) when the number of branches outgrows the current
row width -- exactly the expansion cost the paper attributes to branching
under this orientation.

Multi-branch queries are cheap: a single pass over the rows yields, for each
tuple, the set of branches containing it.  Assembling the full bitmap of one
branch, by contrast, requires scanning every row, which is why single-branch
scans underperform with this orientation.
"""

from __future__ import annotations

from typing import Iterator

from repro.bitmap.base import BitmapIndex, BitmapOrientation
from repro.bitmap.bitmap import Bitmap
from repro.errors import BranchExistsError


class TupleOrientedBitmapIndex(BitmapIndex):
    """A single block of per-tuple branch-membership rows."""

    orientation = BitmapOrientation.TUPLE

    def __init__(self, initial_row_bytes: int = 1):
        self._branch_slots: dict[str, int] = {}
        self._row_bytes = max(1, initial_row_bytes)
        self._rows = bytearray()
        self._num_tuples = 0
        #: Number of whole-block expansions performed (exposed for the
        #: orientation ablation benchmark).
        self.expansions = 0

    # -- branch management ----------------------------------------------------

    def add_branch(self, branch: str, clone_from: str | None = None) -> None:
        if branch in self._branch_slots:
            raise BranchExistsError(f"branch {branch!r} already in index")
        slot = len(self._branch_slots)
        if slot >= self._row_bytes * 8:
            self._expand_rows()
        self._branch_slots[branch] = slot
        if clone_from is not None:
            self._require_branch(clone_from)
            source = self._branch_slots[clone_from]
            for tuple_index in range(self._num_tuples):
                if self._get_bit(tuple_index, source):
                    self._set_bit(tuple_index, slot)

    def has_branch(self, branch: str) -> bool:
        return branch in self._branch_slots

    def branches(self) -> list[str]:
        return list(self._branch_slots)

    # -- bit manipulation -----------------------------------------------------

    def set(self, tuple_index: int, branch: str) -> None:
        self._require_branch(branch)
        self._ensure_tuple(tuple_index)
        self._set_bit(tuple_index, self._branch_slots[branch])

    def clear(self, tuple_index: int, branch: str) -> None:
        self._require_branch(branch)
        self._ensure_tuple(tuple_index)
        self._clear_bit(tuple_index, self._branch_slots[branch])

    def is_set(self, tuple_index: int, branch: str) -> bool:
        self._require_branch(branch)
        if tuple_index >= self._num_tuples:
            return False
        return self._get_bit(tuple_index, self._branch_slots[branch])

    # -- whole-branch views ---------------------------------------------------

    def branch_bitmap(self, branch: str) -> Bitmap:
        self._require_branch(branch)
        slot = self._branch_slots[branch]
        # The entire block must be scanned: the bits of one branch are spread
        # across every tuple's row.  The scan tests the slot's byte directly
        # and builds the result through the bitmap's bulk path.
        rows = self._rows
        row_bytes = self._row_bytes
        slot_byte = slot >> 3
        mask = 1 << (slot & 7)
        return Bitmap.from_indices(
            [
                tuple_index
                for tuple_index in range(self._num_tuples)
                if rows[tuple_index * row_bytes + slot_byte] & mask
            ],
            num_bits=self._num_tuples,
        )

    def restore_branch(self, branch: str, bitmap: Bitmap) -> None:
        self._require_branch(branch)
        slot = self._branch_slots[branch]
        top = max(self._num_tuples, len(bitmap))
        if top:
            self._ensure_tuple(top - 1)
        for tuple_index in range(self._num_tuples):
            if bitmap.get(tuple_index):
                self._set_bit(tuple_index, slot)
            else:
                self._clear_bit(tuple_index, slot)

    def num_tuples(self) -> int:
        return self._num_tuples

    def size_bytes(self) -> int:
        return len(self._rows)

    # -- tuple-major iteration (the strength of this orientation) -------------

    def iter_rows(self) -> Iterator[tuple[int, list[str]]]:
        """Yield ``(tuple_index, [branches containing it])`` in one pass."""
        slot_to_branch = {slot: name for name, slot in self._branch_slots.items()}
        for tuple_index in range(self._num_tuples):
            base = tuple_index * self._row_bytes
            row = self._rows[base : base + self._row_bytes]
            members = []
            for byte_index, byte in enumerate(row):
                while byte:
                    low = byte & -byte
                    slot = byte_index * 8 + low.bit_length() - 1
                    byte ^= low
                    name = slot_to_branch.get(slot)
                    if name is not None:
                        members.append(name)
            yield tuple_index, members

    # -- internals ------------------------------------------------------------

    def _ensure_tuple(self, tuple_index: int) -> None:
        if tuple_index < self._num_tuples:
            return
        new_count = tuple_index + 1
        self._rows.extend(
            b"\x00" * ((new_count - self._num_tuples) * self._row_bytes)
        )
        self._num_tuples = new_count

    def _expand_rows(self) -> None:
        new_row_bytes = self._row_bytes * 2
        new_rows = bytearray(self._num_tuples * new_row_bytes)
        for tuple_index in range(self._num_tuples):
            old_base = tuple_index * self._row_bytes
            new_base = tuple_index * new_row_bytes
            new_rows[new_base : new_base + self._row_bytes] = self._rows[
                old_base : old_base + self._row_bytes
            ]
        self._rows = new_rows
        self._row_bytes = new_row_bytes
        self.expansions += 1

    def _set_bit(self, tuple_index: int, slot: int) -> None:
        offset = tuple_index * self._row_bytes + (slot >> 3)
        self._rows[offset] |= 1 << (slot & 7)

    def _clear_bit(self, tuple_index: int, slot: int) -> None:
        offset = tuple_index * self._row_bytes + (slot >> 3)
        self._rows[offset] &= ~(1 << (slot & 7)) & 0xFF

    def _get_bit(self, tuple_index: int, slot: int) -> bool:
        offset = tuple_index * self._row_bytes + (slot >> 3)
        return bool(self._rows[offset] & (1 << (slot & 7)))
