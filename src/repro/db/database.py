"""The Decibel facade: datasets of versioned relations plus a SQL entry point.

This is the layer a user of the reproduction interacts with.  A
:class:`Decibel` instance manages a directory containing one or more
versioned relations; each relation is backed by one of the storage engines
(hybrid by default) and shares the facade's catalog.  Branch, commit, and
merge operations may be issued per relation or across the whole dataset
(applied to every relation in lockstep, mirroring the paper's notion that a
version snapshots all relations of a dataset together).

Versioned queries in the SQL dialect of the paper's Table 1 are executed via
:meth:`Decibel.query`, which delegates to :mod:`repro.query`.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Iterable, Iterator

from repro.core.buffer_pool import BufferPool
from repro.core.catalog import Catalog
from repro.core.durable import drain_recovery_notes
from repro.core.locks import LockManager
from repro.core.page import DEFAULT_PAGE_SIZE
from repro.core.predicates import Predicate
from repro.core.record import Record
from repro.core.schema import Schema
from repro.core.transactions import TransactionManager, redo_write
from repro.core.wal import LogRecord, LogRecordType, RecoveryReport, WriteAheadLog
from repro.errors import CorruptionError, DatabaseClosedError, StorageError
from repro.storage import create_engine
from repro.storage.base import MergeResult, StorageEngineKind, VersionedStorageEngine
from repro.versioning.conflicts import MergePolicy
from repro.versioning.diff import DiffResult
from repro.versioning.session import Session
from repro.versioning.snapshots import Snapshot, SnapshotManager


class VersionedRelation:
    """One versioned relation: a thin, user-friendly wrapper over an engine."""

    def __init__(self, name: str, engine: VersionedStorageEngine):
        self.name = name
        self.engine = engine

    # -- properties -------------------------------------------------------------

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self.engine.schema

    @property
    def graph(self):
        """The relation's version graph."""
        return self.engine.graph

    # -- versioning -------------------------------------------------------------

    def init(self, records: Iterable[Record] = (), message: str = "init") -> str:
        """Create the master branch and load the initial records."""
        return self.engine.init(records, message=message)

    def branch(self, name: str, from_branch: str | None = None, from_commit: str | None = None) -> None:
        """Create a branch off a branch head or a historical commit."""
        self.engine.create_branch(name, from_branch=from_branch, from_commit=from_commit)

    def commit(self, branch: str = "master", message: str = "") -> str:
        """Commit the current state of ``branch``."""
        return self.engine.commit(branch, message=message)

    def checkout(self, commit_id: str) -> list[Record]:
        """Materialize a historical commit."""
        return self.engine.checkout(commit_id)

    def merge(
        self,
        target_branch: str,
        source_branch: str,
        *,
        policy: MergePolicy | None = None,
        three_way: bool = True,
        message: str = "",
    ) -> MergeResult:
        """Merge ``source_branch`` into ``target_branch``."""
        return self.engine.merge(
            target_branch,
            source_branch,
            policy=policy,
            three_way=three_way,
            message=message,
        )

    def diff(self, branch_a: str, branch_b: str) -> DiffResult:
        """Positive/negative difference between two branch heads."""
        return self.engine.diff(branch_a, branch_b)

    def session(self, branch: str = "master") -> Session:
        """Open a session positioned on ``branch``."""
        return Session(self.engine, branch=branch)

    # -- data -----------------------------------------------------------------------

    def insert(self, branch: str, record: Record | tuple) -> None:
        """Insert a record (or a plain value tuple) into ``branch``."""
        self.engine.insert(branch, self._coerce(record))

    def update(self, branch: str, record: Record | tuple) -> None:
        """Update (by primary key) a record in ``branch``."""
        self.engine.update(branch, self._coerce(record))

    def delete(self, branch: str, key: int) -> None:
        """Delete the record with primary key ``key`` from ``branch``."""
        self.engine.delete(branch, key)

    def scan(self, branch: str = "master", predicate: Predicate | None = None) -> Iterator[Record]:
        """Iterate the live records of ``branch``."""
        return self.engine.scan_branch(branch, predicate)

    def scan_heads(self, predicate: Predicate | None = None):
        """Iterate ``(record, branches)`` pairs over all branch heads."""
        return self.engine.scan_heads(predicate)

    def _coerce(self, record: Record | tuple) -> Record:
        if isinstance(record, Record):
            return record
        return Record(tuple(record))


class Decibel:
    """A directory of versioned relations sharing a catalog.

    Parameters
    ----------
    directory:
        Where data, commit histories and the catalog live.
    engine:
        Default storage engine kind for new relations: ``"hybrid"``,
        ``"tuple-first"`` or ``"version-first"`` (or a
        :class:`StorageEngineKind`).
    page_size:
        Page size passed to every engine.
    """

    def __init__(
        self,
        directory: str,
        engine: StorageEngineKind | str = StorageEngineKind.HYBRID,
        page_size: int = DEFAULT_PAGE_SIZE,
    ):
        self.directory = directory
        self.default_engine_kind = (
            StorageEngineKind(engine) if isinstance(engine, str) else engine
        )
        self.page_size = page_size
        self.buffer_pool = BufferPool()
        os.makedirs(directory, exist_ok=True)
        self.catalog = Catalog(directory)
        self._relations: dict[str, VersionedRelation] = {}
        #: Database-level write-ahead log shared by all relations.
        self.wal = WriteAheadLog(os.path.join(directory, "wal.log"))
        self.lock_manager = LockManager()
        self._transaction_managers: dict[str, TransactionManager] = {}
        #: Report of the last :meth:`recover` run, if any.
        self.last_recovery: RecoveryReport | None = None
        #: Snapshot-isolated read views (pinned branch heads) for the
        #: serving layer and anyone else who wants a stable read state.
        self.snapshot_manager = SnapshotManager(self)
        # Close protocol: operations register with _begin_operation /
        # _end_operation; close() drains them before tearing engines down
        # and is idempotent (a second close is a no-op).
        self._closed = False
        self._closing = False
        self._active_operations = 0
        self._drain = threading.Condition()
        self._close_lock = threading.Lock()

    @classmethod
    def open(
        cls,
        directory: str,
        engine: StorageEngineKind | str = StorageEngineKind.HYBRID,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> "Decibel":
        """Open an existing (or new) dataset directory and run recovery.

        Reloads every cataloged relation from its persisted state, replays
        the write-ahead log (redoing committed-but-unapplied transactions and
        discarding losers), and verifies catalog / engine consistency.  The
        recovery report is left in :attr:`last_recovery`.
        """
        db = cls(directory, engine=engine, page_size=page_size)
        db.recover()
        return db

    # -- recovery -----------------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Bring the dataset to a consistent state after a crash.

        1. Every cataloged relation with persisted state is reloaded at its
           branch heads -- uncommitted effects are invisible (tuple-first,
           hybrid: bitmaps reset to the head-commit snapshots) or physically
           discarded (version-first: head segments truncated to the committed
           offset).
        2. The WAL is replayed: committed transactions missing their APPLIED
           confirmation are redone write by write (idempotently) and
           re-committed on each branch they changed; in-flight and aborted
           transactions are ignored -- step 1 already erased them.
        3. Catalog/engine consistency is verified and the log is
           checkpointed.
        """
        known = set(self.relations())
        for name in sorted(known):
            relation = self.relation(name)
            if relation.engine.has_persistent_state():
                relation.engine.load_persistent_state()
        report = self.wal.replay()
        for txn_id in sorted(report.needs_redo):
            touched: dict[str, set[str]] = {}
            for record in self.wal.writes_for(txn_id):
                if record.relation is None or record.relation not in known:
                    report.notes.append(
                        f"skipped redo of transaction {txn_id}: write targets "
                        f"unknown relation {record.relation!r}"
                    )
                    continue
                engine = self.relation(record.relation).engine
                assert record.branch is not None
                if redo_write(engine, record.branch, record.payload):
                    touched.setdefault(record.relation, set()).add(record.branch)
            for name in sorted(touched):
                engine = self.relation(name).engine
                for branch in sorted(touched[name]):
                    engine.commit(
                        branch, message=f"recovered transaction {txn_id}"
                    )
            self.wal.append(LogRecord(LogRecordType.APPLIED, txn_id))
        report.notes.extend(drain_recovery_notes())
        self._verify_consistency()
        if report.committed or report.losers:
            self.wal.checkpoint()
        self.last_recovery = report
        return report

    def _verify_consistency(self) -> None:
        """Cross-check catalog, version graphs, and index structures."""
        for name in self.relations():
            engine = self.relation(name).engine
            if not engine.graph.initialized:
                continue
            for branch in engine.graph.branch_names():
                head = engine.graph.head(branch)
                if head is not None and not engine.graph.has_commit(head):
                    raise CorruptionError(
                        os.path.join(engine.directory, "version_graph.json"),
                        f"branch {branch!r} of relation {name!r} heads "
                        f"unknown commit {head!r}",
                    )
                pk_index = getattr(engine, "pk_index", None)
                if pk_index is None or not pk_index.branch_loaded(branch):
                    # Unloaded branches hydrate (and are verified against
                    # storage) lazily on first touch; forcing a load here
                    # would defeat lazy cold opens.
                    continue
                indexed = pk_index.live_count(branch)
                live = engine.count_branch(branch)
                if indexed != live:
                    raise CorruptionError(
                        engine.directory,
                        f"primary-key index of relation {name!r} branch "
                        f"{branch!r} disagrees with live records",
                        expected=live,
                        actual=indexed,
                    )

    def transactions(self, relation: str) -> TransactionManager:
        """The transaction manager for ``relation``, sharing the database WAL.

        Records written through it are stamped with the relation name so
        :meth:`recover` can route redo back to the right engine.
        """
        manager = self._transaction_managers.get(relation)
        if manager is None:
            manager = TransactionManager(
                self.relation(relation).engine,
                wal=self.wal,
                lock_manager=self.lock_manager,
                relation=relation,
            )
            self._transaction_managers[relation] = manager
        return manager

    # -- relation management ------------------------------------------------------------

    def create_relation(
        self,
        name: str,
        schema: Schema,
        engine: StorageEngineKind | str | None = None,
        indexes: tuple[str, ...] = (),
    ) -> VersionedRelation:
        """Create (and register) a new versioned relation.

        ``indexes`` declares secondary indexes on the named columns; the
        primary key is always hash-indexed and need not be listed.
        """
        kind = self.default_engine_kind if engine is None else (
            StorageEngineKind(engine) if isinstance(engine, str) else engine
        )
        self.catalog.create_relation(name, schema, kind.value, indexes=indexes)
        relation = self._open_relation(name, schema, kind, indexes=indexes)
        return relation

    def create_index(self, relation: str, column: str) -> None:
        """Declare a secondary index on ``relation.column``.

        Idempotent; the index is built lazily per branch the first time the
        optimizer (or a direct lookup) needs it, and maintained incrementally
        afterwards.
        """
        engine = self.relation(relation).engine
        engine.index_hook.declare(column)
        self.catalog.add_index(relation, column)

    def relation(self, name: str) -> VersionedRelation:
        """Fetch a relation, opening it from the catalog if needed."""
        if name in self._relations:
            return self._relations[name]
        info = self.catalog.relation(name)
        return self._open_relation(
            name,
            info.schema,
            StorageEngineKind(info.engine_kind),
            indexes=info.indexes,
        )

    def relations(self) -> list[str]:
        """Names of all registered relations."""
        return [info.name for info in self.catalog.relations()]

    def drop_relation(self, name: str) -> None:
        """Remove a relation and its on-disk data."""
        relation = self.relation(name)
        relation.engine.destroy()
        self.catalog.drop_relation(name)
        self._relations.pop(name, None)

    def _open_relation(
        self,
        name: str,
        schema: Schema,
        kind: StorageEngineKind,
        indexes: tuple[str, ...] = (),
    ) -> VersionedRelation:
        engine = create_engine(
            kind,
            os.path.join(self.directory, name),
            schema,
            page_size=self.page_size,
            buffer_pool=self.buffer_pool,
        )
        for column in indexes:
            engine.index_hook.declare(column)
        relation = VersionedRelation(name, engine)
        self._relations[name] = relation
        return relation

    # -- dataset-wide versioning ----------------------------------------------------------

    def branch_all(self, name: str, from_branch: str | None = None) -> None:
        """Create branch ``name`` on every relation of the dataset."""
        for relation_name in self.relations():
            self.relation(relation_name).branch(name, from_branch=from_branch)

    def commit_all(self, branch: str = "master", message: str = "") -> dict[str, str]:
        """Commit every relation on ``branch``; returns per-relation commit ids."""
        return {
            relation_name: self.relation(relation_name).commit(branch, message=message)
            for relation_name in self.relations()
        }

    # -- queries -----------------------------------------------------------------------------

    def query(self, sql: str) -> "QueryResult":
        """Execute a versioned SQL query (the dialect of the paper's Table 1)."""
        from repro.query.executor import execute_query

        self._begin_operation()
        try:
            return execute_query(self, sql)
        finally:
            self._end_operation()

    def snapshot(self, relations: list[str] | None = None) -> Snapshot:
        """Pin every branch head and return a snapshot-isolated read view.

        Queries run through ``snapshot.database`` see the pinned state no
        matter what concurrent writers commit; see
        :mod:`repro.versioning.snapshots`.
        """
        self._begin_operation()
        try:
            return self.snapshot_manager.acquire(relations)
        finally:
            self._end_operation()

    def explain(self, sql: str) -> str:
        """The optimized logical plan for ``sql``, rendered as text.

        Shows the plan the executor would run: scans with their pushed-down
        predicates, ``NOT IN`` shapes rewritten to engine diffs, joins,
        aggregation, ordering and limits.
        """
        from repro.query.executor import explain_query

        return explain_query(self, sql)

    # -- lifecycle ------------------------------------------------------------------------------

    def flush(self) -> None:
        """Flush every open relation."""
        for relation in self._relations.values():
            relation.engine.flush()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has completed."""
        return self._closed

    def _begin_operation(self) -> None:
        """Register an in-flight operation; raises once close has started."""
        with self._drain:
            if self._closing or self._closed:
                raise DatabaseClosedError(
                    f"database at {self.directory!r} is closed"
                )
            self._active_operations += 1

    def _end_operation(self) -> None:
        with self._drain:
            self._active_operations -= 1
            if self._active_operations == 0:
                self._drain.notify_all()

    def close(self, drain_timeout_s: float = 30.0) -> None:
        """Flush and drop cached pages for every open relation.

        Safe to call concurrently with in-flight queries and with itself:
        the first close stops admitting new operations
        (:class:`~repro.errors.DatabaseClosedError`), waits up to
        ``drain_timeout_s`` for in-flight ones to drain, then tears engines
        down exactly once.  Any further close() is a no-op that returns
        after the first one has finished (it shares the same lock).
        """
        with self._close_lock:
            if self._closed:
                return
            with self._drain:
                self._closing = True
                deadline = time.monotonic() + drain_timeout_s
                while self._active_operations > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._drain.wait(remaining)
            for relation in self._relations.values():
                relation.engine.close()
            self._closed = True

    def __enter__(self) -> "Decibel":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
