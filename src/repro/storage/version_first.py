"""The version-first storage engine.

Each branch's modifications are stored in that branch's own segment file,
chained to ancestor segments by branch-point offsets (paper Section 3.3).
Reading a branch traverses the chain from the branch's own segment back
towards the root, newest records first, suppressing keys that were already
emitted (or tombstoned) by a nearer segment.  Because data of one branch is
clustered in its lineage, single-branch scans are cheap; operations that
compare many branches (diff, Query 4) must scan whole chains and keep
in-memory key tables, which is the weakness the evaluation exposes.

Commits map a commit id to the byte position -- here, the record ordinal -- of
the latest record active in the committing branch's segment file, stored in an
external structure (paper Section 3.3, *Commit*).
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.core.buffer_pool import BufferPool
from repro.core.columns import (
    ColumnBatch,
    column_container,
    regroup_column_batches,
)
from repro.core.page import DEFAULT_PAGE_SIZE
from repro.core.predicates import (
    Predicate,
    compile_column_filter,
    compile_predicate,
)
from repro.core.durable import (
    add_recovery_note,
    dump_json_atomic,
    load_checked_json,
    strict_recovery,
)
from repro.core.record import Record
from repro.core.schema import Schema
from repro.errors import CommitNotFoundError, CorruptionError, StorageError
from repro.storage.base import (
    ChangeMap,
    DEFAULT_SCAN_BATCH_SIZE,
    StorageEngineKind,
    VersionedStorageEngine,
    regroup_chunks,
)
from repro.storage.pk_index import PrimaryKeyIndex
from repro.storage.segments import ParentPointer, SegmentSet
from repro.versioning.diff import DiffResult
from repro.versioning.version_graph import MASTER_BRANCH


class VersionFirstEngine(VersionedStorageEngine):
    """One segment file per branch, chained by branch points."""

    kind = StorageEngineKind.VERSION_FIRST

    def __init__(
        self,
        directory: str,
        schema: Schema,
        *,
        page_size: int = DEFAULT_PAGE_SIZE,
        buffer_pool: BufferPool | None = None,
    ):
        super().__init__(
            directory, schema, page_size=page_size, buffer_pool=buffer_pool
        )
        self.segments = SegmentSet(
            os.path.join(directory, "segments"),
            schema,
            self.buffer_pool,
            page_size=page_size,
        )
        #: branch name -> id of the segment the branch currently writes to.
        self._head_segment: dict[str, str] = {}
        #: commit id -> (segment id, record-count offset at commit time).
        self._commit_locations: dict[str, tuple[str, int]] = {}
        #: Per-branch primary-key index mapping each live key to the
        #: ``(segment id, ordinal)`` of its newest copy, maintained
        #: incrementally on every write.  An in-memory acceleration structure,
        #: not part of the on-disk layout (the paper's version-first design
        #: has no index): it lets multi-branch locate passes and batched
        #: single-branch scans become bulk index probes instead of
        #: per-record chain walks, while :meth:`scan_branch` remains the
        #: chain-walking reference implementation.  Owned by the index
        #: subsystem facade, which also persists it per branch (snapshot +
        #: delta log) and hydrates branches lazily on first touch.
        self.pk_index: PrimaryKeyIndex[tuple[str, int]] = self.index_hook.pk
        self.index_hook.bind(
            self._pk_entries_for_branch,
            self.scan_branch,
            lambda branch: self.graph.head(branch),
            decode=tuple,
        )
        #: Columnar scan acceleration: segment id -> (record count at build
        #: time, per-column containers concatenated over the segment's pages
        #: in ordinal order).  Staleness-checked against the segment heap's
        #: record count and dropped with the page caches.
        self._segment_column_cache: dict[str, tuple[int, tuple]] = {}

    # -- engine hooks -------------------------------------------------------------

    def _prepare_master(self) -> None:
        segment = self.segments.create(owner_branch=MASTER_BRANCH)
        self._head_segment[MASTER_BRANCH] = segment.segment_id
        self.index_hook.branch_created(MASTER_BRANCH)

    def _materialize_branch(
        self, name: str, parent_branch: str, from_commit: str, at_head: bool
    ) -> None:
        if at_head:
            parent_segment_id = self._head_segment[parent_branch]
            limit = self.segments.get(parent_segment_id).record_count
            # Every parent location is visible through the branch point, so
            # the child's index is a straight clone.
            self.index_hook.branch_created(name, clone_from=parent_branch)
        else:
            parent_segment_id, limit = self._commit_location(from_commit)
            pk_position = self.schema.primary_key_index
            entries = {
                record.values[pk_position]: (seg_id, ordinal)
                for seg_id, ordinal, record in self._locate_chain(
                    parent_segment_id, limit
                )
            }
            self.index_hook.branch_rebuilt(name, entries)
        segment = self.segments.create(
            owner_branch=name,
            parents=(ParentPointer(parent_segment_id, limit),),
        )
        self._head_segment[name] = segment.segment_id

    def _record_commit_state(self, branch: str, commit_id: str) -> None:
        segment_id = self._head_segment[branch]
        offset = self.segments.get(segment_id).record_count
        self._commit_locations[commit_id] = (segment_id, offset)
        self._persist_commit_locations()

    def _flush_storage(self) -> None:
        self.segments.flush()
        self.segments.save_metadata()

    def _load_storage(self) -> None:
        """Rebuild segment topology, then roll each branch back to its head.

        Visibility in version-first is physical -- a branch's state is its
        segment's content -- so recovery *truncates* each branch's segment to
        the record offset its head commit recorded.  The truncation floor is
        raised by any persisted child branch point into the segment: a child
        created off this branch durably references the parent's records below
        its pointer limit, so those records must survive even if the parent
        itself never committed past them.
        """
        self.segments.load_metadata()
        self._load_commit_locations()
        orphans = [
            commit_id
            for commit_id in self._commit_locations
            if not self.graph.has_commit(commit_id)
        ]
        for commit_id in orphans:
            del self._commit_locations[commit_id]
        if orphans:
            add_recovery_note(
                f"discarded {len(orphans)} orphan commit location(s) the "
                f"version graph never referenced"
            )
        for segment in self.segments.all():
            if segment.owner_branch is not None and not segment.frozen:
                self._head_segment[segment.owner_branch] = segment.segment_id
        pinned: dict[str, int] = {}
        for segment in self.segments.all():
            for pointer in segment.parents:
                pinned[pointer.segment_id] = max(
                    pinned.get(pointer.segment_id, 0), pointer.limit
                )
        for branch in self.graph.branch_names():
            segment_id = self._head_segment.get(branch)
            if segment_id is None:
                error = CorruptionError(
                    os.path.join(self.segments.directory, "segments.json"),
                    f"no head segment recorded for branch {branch!r}",
                )
                if strict_recovery():
                    raise error
                add_recovery_note(f"branch {branch!r} unrecoverable: {error}")
                continue
            head_commit = self.graph.head(branch)
            location = self._commit_locations.get(head_commit)
            committed = (
                location[1]
                if location is not None and location[0] == segment_id
                else 0
            )
            floor = max(committed, pinned.get(segment_id, 0))
            segment = self.segments.get(segment_id)
            if segment.record_count > floor:
                segment.heap.truncate_records(floor)
        # Primary-key maps hydrate lazily on first touch: from the persisted
        # per-branch index files when their epoch matches the recovered
        # head, otherwise by the chain walk below.
        self.index_hook.attach_lazy(self.graph.branch_names())

    def _pk_entries_for_branch(self, branch: str) -> dict[int, tuple[str, int]]:
        """Derive a branch's full pk map by chain walk (index rebuild)."""
        segment_id = self._head_segment.get(branch)
        if segment_id is None:
            return {}
        pk_position = self.schema.primary_key_index
        return {
            record.values[pk_position]: (seg_id, ordinal)
            for seg_id, ordinal, record in self._locate_chain(segment_id, None)
        }

    # -- data operations -------------------------------------------------------------

    def insert(self, branch: str, record: Record) -> None:
        segment = self._head(branch)
        ordinal = segment.append(record)
        self.index_hook.applied(
            branch, record.key(self.schema), (segment.segment_id, ordinal), record
        )
        self.stats.records_inserted += 1
        self._dirty_writes = True

    def update(self, branch: str, record: Record) -> None:
        # Updates append a new copy with the same primary key; scans ignore
        # the earlier copy (paper Section 3.3, *Data Modification*).  The
        # index is repointed at the new copy.
        segment = self._head(branch)
        ordinal = segment.append(record)
        self.index_hook.applied(
            branch, record.key(self.schema), (segment.segment_id, ordinal), record
        )
        self.stats.records_updated += 1
        self._dirty_writes = True

    def delete(self, branch: str, key: int) -> None:
        if not self.pk_index.contains(branch, key):
            raise StorageError(f"key {key} is not live in branch {branch!r}")
        self._head(branch).append(Record.deleted(self.schema, key))
        self.index_hook.removed(branch, key)
        self.stats.records_deleted += 1
        self._dirty_writes = True

    def branch_contains_key(self, branch: str, key: int) -> bool:
        return self.pk_index.contains(branch, key)

    def record_for_key(self, branch: str, key: int) -> Record | None:
        location = self.pk_index.get(branch, key)
        if location is None:
            return None
        segment_id, ordinal = location
        return self.segments.get(segment_id).record_at(ordinal)

    def records_for_keys(self, branch: str, keys) -> list[Record]:
        """Index-scan fetch: each touched page is fetched once, in key order."""
        out: list[Record] = []
        heaps: dict[str, object] = {}
        pages: dict[tuple[str, int], object] = {}
        for key in keys:
            location = self.pk_index.get(branch, key)
            if location is None:
                continue
            segment_id, ordinal = location
            heap = heaps.get(segment_id)
            if heap is None:
                heap = heaps[segment_id] = self.segments.get(segment_id).heap
            page_number, slot = divmod(ordinal, heap.records_per_page)
            page = pages.get((segment_id, page_number))
            if page is None:
                if len(pages) > 64:
                    pages.clear()  # bound decoded-page references per fetch
                page = pages[(segment_id, page_number)] = heap.page(page_number)
            out.append(page.record_at(slot))
        return out

    def _head(self, branch: str):
        try:
            segment_id = self._head_segment[branch]
        except KeyError:
            raise StorageError(f"branch {branch!r} has no head segment") from None
        return self.segments.get(segment_id)

    # -- chain traversal ----------------------------------------------------------------

    def _chain(
        self, segment_id: str, limit: int | None
    ) -> list[tuple[str, int | None]]:
        """Segments to visit (leaf to root) with their visibility limits.

        Segments reachable by multiple paths (after merges) are visited once,
        at the first -- highest precedence -- position they appear.
        """
        order: list[tuple[str, int | None]] = []
        seen: set[str] = set()

        def visit(current_id: str, current_limit: int | None) -> None:
            if current_id in seen:
                return
            seen.add(current_id)
            order.append((current_id, current_limit))
            segment = self.segments.get(current_id)
            for pointer in segment.parents:
                visit(pointer.segment_id, pointer.limit)

        visit(segment_id, limit)
        return order

    def _scan_chain(
        self,
        segment_id: str,
        limit: int | None,
        predicate: Predicate | None = None,
        segment_cache: dict[str, list[Record]] | None = None,
    ) -> Iterator[Record]:
        """Scan a segment chain, emitting each live key's newest record."""
        schema = self.schema
        pk_position = schema.primary_key_index
        emitted: set[int] = set()
        for seg_id, seg_limit in self._chain(segment_id, limit):
            records = self._segment_records(seg_id, segment_cache)
            upto = len(records) if seg_limit is None else min(seg_limit, len(records))
            # Newest records within a segment shadow older copies of the same
            # key, so the segment is read in reverse.
            for ordinal in range(upto - 1, -1, -1):
                record = records[ordinal]
                self.stats.records_scanned += 1
                key = record.values[pk_position]
                if key in emitted:
                    continue
                emitted.add(key)
                if record.tombstone:
                    continue
                if predicate is None or predicate.evaluate(record, schema):
                    yield record

    def _segment_records(
        self, segment_id: str, cache: dict[str, list[Record]] | None
    ) -> list[Record]:
        if cache is not None and segment_id in cache:
            return cache[segment_id]
        records = list(self.segments.get(segment_id).heap.scan_records())
        if cache is not None:
            cache[segment_id] = records
        return records

    def _locate_chain(
        self, segment_id: str, limit: int | None
    ) -> Iterator[tuple[str, int, Record]]:
        """Yield ``(segment id, ordinal, record)`` of each live key's newest copy.

        The locating twin of :meth:`_scan_chain`, used where physical
        positions are needed (rebuilding the primary-key index for a branch
        created off a historical commit).
        """
        pk_position = self.schema.primary_key_index
        emitted: set[int] = set()
        for seg_id, seg_limit in self._chain(segment_id, limit):
            records = self._segment_records(seg_id, None)
            upto = len(records) if seg_limit is None else min(seg_limit, len(records))
            for ordinal in range(upto - 1, -1, -1):
                record = records[ordinal]
                self.stats.records_scanned += 1
                key = record.values[pk_position]
                if key in emitted:
                    continue
                emitted.add(key)
                if record.tombstone:
                    continue
                yield seg_id, ordinal, record

    def _branch_segment_ordinals(self, branch: str) -> dict[str, list[int]]:
        """The branch's live locations grouped by segment (a bulk index probe)."""
        by_segment: dict[str, list[int]] = {}
        for seg_id, ordinal in self.pk_index.locations(branch):
            ordinals = by_segment.get(seg_id)
            if ordinals is None:
                by_segment[seg_id] = [ordinal]
            else:
                ordinals.append(ordinal)
        return by_segment

    # -- scans -----------------------------------------------------------------------------

    def scan_branch(
        self, branch: str, predicate: Predicate | None = None
    ) -> Iterator[Record]:
        segment_id = self._head_segment[branch]
        yield from self._scan_chain(segment_id, None, predicate)

    def scan_branch_batched(
        self,
        branch: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[Record]]:
        """Batched :meth:`scan_branch`, driven by the primary-key index.

        The index already knows each live key's newest ``(segment, ordinal)``
        location, so the key-shadowing chain walk collapses to one bulk index
        probe plus a tight per-segment gather: segments are visited in chain
        order (leaf to root) and each segment's located ordinals are read
        newest-first, which reproduces :meth:`scan_branch`'s record order
        exactly while touching only live records (shadowed copies and
        tombstones are never decoded against the predicate).
        """

        def segment_hits() -> Iterator[list[Record]]:
            matches = compile_predicate(predicate, self.schema)
            by_segment = self._branch_segment_ordinals(branch)
            for seg_id, _ in self._chain(self._head_segment[branch], None):
                ordinals = by_segment.get(seg_id)
                if not ordinals:
                    continue
                records = self._segment_records(seg_id, None)
                ordinals.sort(reverse=True)
                self.stats.records_scanned += len(ordinals)
                if matches is None:
                    hits = [records[ordinal] for ordinal in ordinals]
                else:
                    hits = [
                        record
                        for ordinal in ordinals
                        if matches((record := records[ordinal]).values)
                    ]
                if hits:
                    yield hits

        yield from regroup_chunks(segment_hits(), batch_size)

    def _segment_columns(self, segment_id: str) -> tuple:
        """One segment's values as per-column containers, ordinal-indexed.

        Pages decode straight into typed arrays (:meth:`Page.columns_view`)
        and are concatenated in page order; since every page but the tail is
        full, position ``i`` of each container is the segment's ordinal ``i``
        -- the same addressing the primary-key index uses.  Cached per
        segment until the segment grows (segments are append-only, so a
        record-count match means the prefix is unchanged).
        """
        heap = self.segments.get(segment_id).heap
        cached = self._segment_column_cache.get(segment_id)
        if cached is not None and cached[0] == heap.num_records:
            return cached[1]
        combined = [
            column_container(column.type) for column in self.schema.columns
        ]
        transient = heap.scan_exceeds_pool()
        for page_number in range(heap.num_pages):
            page_columns = heap.page(
                page_number, transient=transient
            ).columns_view()
            for accumulator, values in zip(combined, page_columns):
                accumulator.extend(values)
        columns = tuple(combined)
        self._segment_column_cache[segment_id] = (heap.num_records, columns)
        return columns

    def scan_branch_columns(
        self,
        branch: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
        columns: tuple[str, ...] | None = None,
    ) -> Iterator[ColumnBatch]:
        """Columnar :meth:`scan_branch_batched`: bulk index probe, column gather.

        Visits segments in chain order and gathers each segment's live
        ordinals (newest-first, reproducing the row scan's record order)
        straight out of the cached per-segment column containers
        (:meth:`_segment_columns`); no :class:`Record` is ever built.
        Predicates run as compiled column selections where possible.  With
        ``columns`` (projection pushdown) only the named columns are
        gathered into the output batches.
        """
        schema = self.schema
        if columns is None:
            out_positions = None
            out_schema = schema
        else:
            out_positions = [schema.index_of(name) for name in columns]
            out_schema = schema.project(list(columns))

        def segment_hits() -> Iterator[ColumnBatch]:
            select = compile_column_filter(predicate, schema)
            matches = (
                compile_predicate(predicate, schema)
                if select is None
                else None
            )
            by_segment = self._branch_segment_ordinals(branch)
            for seg_id, _ in self._chain(self._head_segment[branch], None):
                ordinals = by_segment.get(seg_id)
                if not ordinals:
                    continue
                containers = self._segment_columns(seg_id)
                ordinals.sort(reverse=True)
                self.stats.records_scanned += len(ordinals)
                segment_batch = ColumnBatch(schema, containers)
                if select is not None:
                    # Run the compiled selection over the full cached segment
                    # columns first and intersect with the live ordinals, so
                    # each segment costs one column gather instead of two.
                    selected = set(
                        select(segment_batch.columns, segment_batch.num_rows)
                    )
                    hits = [o for o in ordinals if o in selected]
                elif predicate is None:
                    hits = ordinals
                else:
                    gathered = segment_batch.take(ordinals)
                    hits = [
                        ordinal
                        for ordinal, values in zip(ordinals, gathered.rows())
                        if matches(values)
                    ]
                if not hits:
                    continue
                if out_positions is None:
                    yield segment_batch.take(hits)
                else:
                    yield ColumnBatch(
                        out_schema,
                        [containers[position] for position in out_positions],
                    ).take(hits)

        yield from regroup_column_batches(segment_hits(), batch_size, out_schema)

    def drop_caches(self) -> None:
        """Drop page caches and the per-segment column cache."""
        super().drop_caches()
        self._segment_column_cache.clear()

    def count_branch(self, branch: str, predicate: Predicate | None = None) -> int:
        if predicate is None:
            # The primary-key index holds exactly the live keys.
            return self.pk_index.live_count(branch)
        return super().count_branch(branch, predicate)

    def scan_commit(
        self, commit_id: str, predicate: Predicate | None = None
    ) -> Iterator[Record]:
        segment_id, offset = self._commit_location(commit_id)
        yield from self._scan_chain(segment_id, offset, predicate)

    def scan_branches(
        self, branches: list[str], predicate: Predicate | None = None
    ) -> Iterator[tuple[Record, frozenset[str]]]:
        """Two-pass multi-branch scan (paper Section 3.3).

        The first pass builds in-memory tables of the (segment, ordinal)
        locations of the records live in each branch -- originally a chain
        walk per branch, now a bulk probe of the per-branch primary-key
        index (:meth:`_locate_branch_records`).  The second pass reads the
        relevant segment files and emits each located record annotated with
        the branches it belongs to.  The second full pass over the files is
        the extra work the paper attributes to version-first multi-branch
        scans; the index removes only the locate-pass chain walks.
        """
        schema = self.schema
        located, members_of = self._locate_branch_records(branches)
        for seg_id in sorted(located):
            records = self._segment_records(seg_id, None)
            by_ordinal = located[seg_id]
            for ordinal in sorted(by_ordinal):
                record = records[ordinal]
                self.stats.records_scanned += 1
                if predicate is not None and not predicate.evaluate(record, schema):
                    continue
                yield record, members_of[by_ordinal[ordinal]]

    def _locate_branch_records(
        self, branches: list[str]
    ) -> tuple[dict[str, dict[int, int]], dict[int, frozenset[str]]]:
        """Pass one of the multi-branch scan: locate each branch's live records.

        The primary-key index already maps every live key of every branch to
        its newest ``(segment, ordinal)``, so the per-record chain walks the
        paper describes collapse into one bulk probe over each branch's
        index entries.  Membership is tracked as a bitmask over ``branches``
        (one shared ``frozenset`` per distinct combination, via the returned
        lookup table) instead of allocating a set per located record.
        """
        located: dict[str, dict[int, int]] = {}
        for branch_bit, branch in enumerate(branches):
            bit = 1 << branch_bit
            for seg_id, ordinal in self.pk_index.locations(branch):
                by_ordinal = located.get(seg_id)
                if by_ordinal is None:
                    located[seg_id] = {ordinal: bit}
                else:
                    by_ordinal[ordinal] = by_ordinal.get(ordinal, 0) | bit
        masks = {
            mask
            for by_ordinal in located.values()
            for mask in by_ordinal.values()
        }
        members_of = {
            mask: frozenset(
                branch
                for branch_bit, branch in enumerate(branches)
                if (mask >> branch_bit) & 1
            )
            for mask in masks
        }
        return located, members_of

    def scan_branches_batched(
        self,
        branches: list[str],
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[tuple[Record, frozenset[str]]]]:
        """Batched :meth:`scan_branches`: the second pass emits per-segment lists."""

        def segment_hits() -> Iterator[list[tuple[Record, frozenset[str]]]]:
            matches = compile_predicate(predicate, self.schema)
            located, members_of = self._locate_branch_records(branches)
            for seg_id in sorted(located):
                records = self._segment_records(seg_id, None)
                by_ordinal = located[seg_id]
                ordinals = sorted(by_ordinal)
                self.stats.records_scanned += len(ordinals)
                if matches is None:
                    yield [
                        (records[ordinal], members_of[by_ordinal[ordinal]])
                        for ordinal in ordinals
                    ]
                else:
                    yield [
                        (record, members_of[by_ordinal[ordinal]])
                        for ordinal in ordinals
                        if matches((record := records[ordinal]).values)
                    ]

        yield from regroup_chunks(segment_hits(), batch_size)

    # -- diff --------------------------------------------------------------------------------

    def diff(self, branch_a: str, branch_b: str) -> DiffResult:
        """Compare the two branches by materializing both heads.

        Version-first has no incremental structure tracking differences from a
        common ancestor, so both chains are scanned in full (sharing segment
        reads) and joined by key -- the multiple passes the paper calls out in
        its Query 2 discussion.
        """
        self.stats.diffs += 1
        segment_cache: dict[str, list[Record]] = {}
        pk_position = self.schema.primary_key_index
        map_a = {
            record.values[pk_position]: record
            for record in self._scan_chain(
                self._head_segment[branch_a], None, None, segment_cache
            )
        }
        map_b = {
            record.values[pk_position]: record
            for record in self._scan_chain(
                self._head_segment[branch_b], None, None, segment_cache
            )
        }
        return DiffResult.from_record_maps(branch_a, branch_b, map_a, map_b)

    # -- merge inputs -----------------------------------------------------------------------------

    def _collect_merge_inputs(
        self, target_branch: str, source_branch: str, lca_commit: str, three_way: bool
    ) -> tuple[ChangeMap, ChangeMap, dict[int, Record]]:
        """Scan both heads (and, for three-way, the whole LCA commit).

        The LCA commit must be scanned in its entirety to determine conflicts
        (paper Section 5.4), which is why version-first underperforms most in
        the three-way mode.
        """
        segment_cache: dict[str, list[Record]] = {}
        pk_position = self.schema.primary_key_index
        target_map = {
            record.values[pk_position]: record
            for record in self._scan_chain(
                self._head_segment[target_branch], None, None, segment_cache
            )
        }
        source_map = {
            record.values[pk_position]: record
            for record in self._scan_chain(
                self._head_segment[source_branch], None, None, segment_cache
            )
        }
        if not three_way:
            changed_target, changed_source = self._two_way_changes(
                target_map, source_map
            )
            return changed_target, changed_source, {}
        lca_segment, lca_offset = self._commit_location(lca_commit)
        ancestor_map = {
            record.values[pk_position]: record
            for record in self._scan_chain(
                lca_segment, lca_offset, None, segment_cache
            )
        }
        changed_target = self._changes_between(ancestor_map, target_map)
        changed_source = self._changes_between(ancestor_map, source_map)
        wanted = set(changed_target) | set(changed_source)
        ancestors = {
            key: record for key, record in ancestor_map.items() if key in wanted
        }
        return changed_target, changed_source, ancestors

    # -- sizes -------------------------------------------------------------------------------------

    def data_size_bytes(self) -> int:
        return self.segments.total_size_bytes()

    def commit_metadata_bytes(self) -> int:
        return sum(
            len(commit_id) + len(segment_id) + 8
            for commit_id, (segment_id, _) in self._commit_locations.items()
        )

    def segment_count(self) -> int:
        """Number of segment files (exposed for tests and benchmarks)."""
        return len(self.segments)

    # -- commit location persistence -------------------------------------------------------------------

    def _commit_location(self, commit_id: str) -> tuple[str, int]:
        try:
            return self._commit_locations[commit_id]
        except KeyError:
            raise CommitNotFoundError(
                f"commit {commit_id!r} has no recorded segment offset"
            ) from None

    def _persist_commit_locations(self) -> None:
        dump_json_atomic(
            os.path.join(self.directory, "commit_locations.json"),
            {
                commit_id: {"segment": segment_id, "offset": offset}
                for commit_id, (segment_id, offset) in self._commit_locations.items()
            },
            label="commit-locations",
        )

    def _load_commit_locations(self) -> None:
        path = os.path.join(self.directory, "commit_locations.json")
        if not os.path.exists(path):
            return
        raw = load_checked_json(path)
        if not isinstance(raw, dict):
            raise CorruptionError(path, "commit locations payload is not an object")
        self._commit_locations = {
            commit_id: (entry["segment"], entry["offset"])
            for commit_id, entry in raw.items()
        }
