"""Fixed-size pages holding fixed-width records.

The original Decibel prototype uses 4 MB pages in a conventional buffer-pool
architecture (paper Section 2.1).  Pages here are byte arrays of a configurable
size (the benchmark default is much smaller since datasets are scaled down)
holding a packed array of fixed-width encoded records after a small header.

Page layout::

    [u32 record_count][record 0][record 1]...[record n-1][free space]

Pages loaded from disk decode lazily, into whichever representation a scan
first asks for: :meth:`Page.records_view` materializes the row array (one
batch unpack sweep), :meth:`Page.columns_view` decodes straight into typed
column arrays without ever constructing a :class:`Record`.  Columnar scans
over cold data therefore skip per-row object construction entirely -- the
core of the columnar execution path's speedup.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.columns import column_payload_bytes, columns_from_rows
from repro.core.record import Record, RecordCodec
from repro.errors import PageError

_PAGE_HEADER = struct.Struct("<I")

#: Bytes of page header before the packed record array (the record count).
PAGE_HEADER_SIZE = _PAGE_HEADER.size

#: Default page size in bytes.  The paper uses 4 MB pages over 100 GB of data;
#: this reproduction scales datasets down by ~1000x so the default page keeps
#: roughly the same records-per-page ratio.
DEFAULT_PAGE_SIZE = 64 * 1024


@dataclass(frozen=True)
class PageId:
    """Identity of a page: the owning file's name and the page's ordinal."""

    file_name: str
    page_number: int

    def __str__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.file_name}#{self.page_number}"


class Page:
    """An in-memory image of one on-disk page.

    Pages are created either empty (for appends) or from raw bytes read from
    disk.  The buffer pool tracks dirtiness and pin counts; the page itself
    only manages its record array and cached column view.
    """

    def __init__(
        self,
        page_id: PageId,
        codec: RecordCodec,
        page_size: int = DEFAULT_PAGE_SIZE,
        data: bytes | None = None,
    ):
        if page_size <= _PAGE_HEADER.size + codec.record_size:
            raise PageError(
                f"page size {page_size} cannot hold even one record "
                f"of size {codec.record_size}"
            )
        self.page_id = page_id
        self.page_size = page_size
        self._codec = codec
        self._records: list[Record] | None = []
        self._data: bytes | None = None
        self._disk_count = 0
        self._columns: tuple | None = None
        self._columns_bytes = 0
        if data is not None:
            if len(data) != page_size:
                raise PageError(
                    f"expected {page_size} bytes for page {page_id}, got {len(data)}"
                )
            (count,) = _PAGE_HEADER.unpack_from(data, 0)
            if count > self.capacity:
                raise PageError(f"corrupt page {page_id}: count {count}")
            # Decode lazily: row scans and column scans want different
            # representations, and eagerly building rows would make every
            # columnar page load pay for record objects it never touches.
            self._data = data
            self._disk_count = count
            self._records = None

    # -- capacity -------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Maximum number of records this page can hold."""
        return (self.page_size - _PAGE_HEADER.size) // self._codec.record_size

    @property
    def num_records(self) -> int:
        """Number of records currently stored on the page."""
        if self._records is not None:
            return len(self._records)
        return self._disk_count

    @property
    def is_full(self) -> bool:
        """True when no further record fits on this page."""
        return self.num_records >= self.capacity

    def _decoded(self) -> list[Record]:
        """The row array, decoding from raw bytes on first access."""
        if self._records is None:
            data = self._data
            if data is None:  # pragma: no cover - empty pages start decoded
                self._records = []
            else:
                # One unpack sweep for the whole record array instead of one
                # decode call per slot.
                self._records = self._codec.decode_batch(
                    data, _PAGE_HEADER.size, self._disk_count
                )
        return self._records

    # -- record access --------------------------------------------------------

    def append(self, record: Record) -> int:
        """Append ``record`` and return its slot number within the page."""
        if self.is_full:
            raise PageError(f"page {self.page_id} is full")
        records = self._decoded()
        records.append(record)
        # The raw image and the column view no longer match the record array.
        self._data = None
        self._columns = None
        self._columns_bytes = 0
        return len(records) - 1

    def record_at(self, slot: int) -> Record:
        """The record stored in ``slot``."""
        try:
            return self._decoded()[slot]
        except IndexError:
            raise PageError(
                f"slot {slot} out of range on page {self.page_id}"
            ) from None

    def records(self) -> list[Record]:
        """All records on the page, in slot order."""
        return list(self._decoded())

    def records_view(self) -> list[Record]:
        """The page's record array itself, without copying.

        Callers must treat the list as read-only; batched scans use it to
        index many slots of one page without a per-page copy.
        """
        return self._decoded()

    # -- column access --------------------------------------------------------

    def columns_view(self) -> tuple:
        """The page's values as one container per column, without copying.

        Disk-loaded pages decode straight from the raw image
        (:meth:`RecordCodec.decode_batch_columns` -- no :class:`Record` is
        ever built); pages with an in-memory record array (the heap tail
        page, pages touched by ``append``) pivot their rows instead.  The
        view is cached until the page mutates.  Callers must treat the
        containers as read-only; columnar scans slice and gather from them
        but never write.
        """
        if self._columns is None:
            data = self._data
            if self._records is None and data is not None:
                self._columns = self._codec.decode_batch_columns(
                    data, _PAGE_HEADER.size, self._disk_count
                )
            else:
                self._columns = columns_from_rows(
                    self._codec.schema,
                    [record.values for record in self._decoded()],
                )
            self._columns_bytes = column_payload_bytes(
                self._codec.schema, self._columns
            )
        return self._columns

    @property
    def cached_columns(self) -> tuple | None:
        """The column view if one is already decoded, without decoding."""
        return self._columns

    def raw_data(self) -> bytes | None:
        """The on-disk image when no record array was materialized.

        ``None`` for pages with in-memory rows (the heap tail, appended
        pages); those decode through :meth:`columns_view` instead.  Scan
        paths use the raw image for late materialization: decode the
        predicate's columns only, then just the selected records.
        """
        if self._records is None:
            return self._data
        return None

    def memory_footprint(self) -> int:
        """Bytes this page pins in memory: the page image plus any cached
        column payload.  The buffer pool charges this (not a flat
        ``page_size``) so the byte budget stays meaningful when columnar
        scans cache decoded column arrays alongside the raw image."""
        return self.page_size + self._columns_bytes

    # -- serialization --------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize the page to exactly ``page_size`` bytes."""
        if self._records is None and self._data is not None:
            return self._data
        records = self._decoded()
        parts = [_PAGE_HEADER.pack(len(records))]
        parts.extend(self._codec.encode(record) for record in records)
        payload = b"".join(parts)
        return payload + b"\x00" * (self.page_size - len(payload))
