"""Table 5: build (load) times per strategy, branch count and engine.

Paper shape: version-first loads fastest (no bitmap index maintenance) except
under curation, where its merge handling makes it the slowest by far;
tuple-first is the slowest of the three elsewhere; hybrid tracks
version-first closely.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import table5_build_times


def test_table5_build_times(benchmark, workdir, scale):
    table = run_once(
        benchmark,
        table5_build_times,
        workdir,
        scale=scale,
        branch_counts=(4, scale.num_branches),
    )
    table.print()
    assert len(table.rows) == 8  # 4 strategies x 2 branch counts
    for strategy, branches, vf, tf, hy, data_mb in table.rows:
        assert vf > 0 and tf > 0 and hy > 0
        assert data_mb > 0
    # Load times are in the same ballpark across engines (well within an order
    # of magnitude) -- the paper's Table 5 spread is below 5x.
    for strategy, branches, vf, tf, hy, data_mb in table.rows:
        slowest = max(vf, tf, hy)
        fastest = min(vf, tf, hy)
        assert slowest / fastest < 10
