"""Behaviour every versioned storage engine must share.

These tests run against all three engines (the ``engine`` fixture is
parametrized over version-first, tuple-first and hybrid) and cover the paper's
core operations: init, branch, commit, checkout, data modification on branch
heads, single- and multi-branch scans, diff, and merge.
"""

import pytest

from repro.core.predicates import ColumnPredicate
from repro.core.record import Record
from repro.errors import StorageError, VersionError
from repro.versioning.conflicts import PrecedencePolicy, ThreeWayPolicy

from tests.conftest import make_records


def keys_of(engine, branch):
    return sorted(r.key(engine.schema) for r in engine.scan_branch(branch))


class TestInitAndBasicScans:
    def test_init_loads_master(self, engine, records):
        commit_id = engine.init(records)
        assert engine.graph.initialized
        assert keys_of(engine, "master") == list(range(20))
        assert engine.graph.head("master") == commit_id

    def test_double_init_rejected(self, loaded_engine, records):
        with pytest.raises(VersionError):
            loaded_engine.init(records)

    def test_empty_init(self, engine):
        engine.init([])
        assert keys_of(engine, "master") == []

    def test_scan_with_predicate(self, loaded_engine):
        predicate = ColumnPredicate("id", "<", 5)
        keys = sorted(
            r.key(loaded_engine.schema)
            for r in loaded_engine.scan_branch("master", predicate)
        )
        assert keys == [0, 1, 2, 3, 4]

    def test_record_values_preserved(self, loaded_engine):
        record = next(iter(loaded_engine.scan_branch("master")))
        key = record.values[0]
        assert record.values == (key, key * 10, key * 100, 7)


class TestDataModification:
    def test_insert_visible_in_branch(self, loaded_engine):
        loaded_engine.insert("master", Record((100, 1, 2, 3)))
        assert 100 in keys_of(loaded_engine, "master")

    def test_update_replaces_values(self, loaded_engine):
        loaded_engine.update("master", Record((5, 111, 222, 333)))
        values = {r.values[0]: r.values for r in loaded_engine.scan_branch("master")}
        assert values[5] == (5, 111, 222, 333)
        assert len(values) == 20  # no duplicate logical record

    def test_delete_removes_key(self, loaded_engine):
        loaded_engine.delete("master", 7)
        assert 7 not in keys_of(loaded_engine, "master")
        assert len(keys_of(loaded_engine, "master")) == 19

    def test_delete_missing_key_rejected(self, loaded_engine):
        with pytest.raises(StorageError):
            loaded_engine.delete("master", 9999)

    def test_branch_contains_key(self, loaded_engine):
        assert loaded_engine.branch_contains_key("master", 3)
        loaded_engine.delete("master", 3)
        assert not loaded_engine.branch_contains_key("master", 3)

    def test_reinsert_after_delete(self, loaded_engine):
        loaded_engine.delete("master", 4)
        loaded_engine.insert("master", Record((4, 9, 9, 9)))
        values = {r.values[0]: r.values for r in loaded_engine.scan_branch("master")}
        assert values[4] == (4, 9, 9, 9)

    def test_stats_track_modifications(self, loaded_engine):
        loaded_engine.insert("master", Record((200, 0, 0, 0)))
        loaded_engine.update("master", Record((200, 1, 1, 1)))
        loaded_engine.delete("master", 200)
        assert loaded_engine.stats.records_inserted >= 21
        assert loaded_engine.stats.records_updated >= 1
        assert loaded_engine.stats.records_deleted >= 1


class TestBranching:
    def test_branch_sees_parent_data(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        assert keys_of(loaded_engine, "dev") == list(range(20))

    def test_branch_isolation_child_changes_invisible_to_parent(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.insert("dev", Record((500, 0, 0, 0)))
        loaded_engine.update("dev", Record((1, 42, 42, 42)))
        loaded_engine.delete("dev", 2)
        assert 500 not in keys_of(loaded_engine, "master")
        master_values = {
            r.values[0]: r.values for r in loaded_engine.scan_branch("master")
        }
        assert master_values[1] == (1, 10, 100, 7)
        assert 2 in master_values

    def test_branch_isolation_parent_changes_invisible_to_child(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.insert("master", Record((600, 0, 0, 0)))
        loaded_engine.update("master", Record((3, 9, 9, 9)))
        assert 600 not in keys_of(loaded_engine, "dev")
        dev_values = {r.values[0]: r.values for r in loaded_engine.scan_branch("dev")}
        assert dev_values[3] == (3, 30, 300, 7)

    def test_branch_of_branch(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.insert("dev", Record((700, 0, 0, 0)))
        loaded_engine.commit("dev")
        loaded_engine.create_branch("feature", from_branch="dev")
        assert 700 in keys_of(loaded_engine, "feature")
        loaded_engine.insert("feature", Record((701, 0, 0, 0)))
        assert 701 not in keys_of(loaded_engine, "dev")

    def test_branch_from_historical_commit(self, loaded_engine):
        snapshot_commit = loaded_engine.commit("master", "snapshot")
        loaded_engine.insert("master", Record((800, 0, 0, 0)))
        loaded_engine.commit("master", "after snapshot")
        loaded_engine.create_branch("from-past", from_commit=snapshot_commit)
        assert 800 not in keys_of(loaded_engine, "from-past")
        assert keys_of(loaded_engine, "from-past") == list(range(20))

    def test_branch_default_parent_is_master(self, loaded_engine):
        loaded_engine.create_branch("anything")
        assert keys_of(loaded_engine, "anything") == list(range(20))

    def test_stats_track_branches(self, loaded_engine):
        loaded_engine.create_branch("dev")
        assert loaded_engine.stats.branches_created == 1


class TestCommitsAndCheckout:
    def test_checkout_returns_committed_state(self, loaded_engine):
        loaded_engine.insert("master", Record((900, 0, 0, 0)))
        commit_id = loaded_engine.commit("master", "with 900")
        loaded_engine.delete("master", 900)
        loaded_engine.insert("master", Record((901, 0, 0, 0)))
        loaded_engine.commit("master", "with 901")
        checked_out = sorted(r.values[0] for r in loaded_engine.checkout(commit_id))
        assert 900 in checked_out and 901 not in checked_out

    def test_initial_commit_checkout(self, engine, records):
        commit_id = engine.init(records)
        engine.insert("master", Record((1000, 0, 0, 0)))
        engine.commit("master")
        assert sorted(r.values[0] for r in engine.checkout(commit_id)) == list(range(20))

    def test_scan_commit_with_predicate(self, loaded_engine):
        commit_id = loaded_engine.commit("master")
        keys = sorted(
            r.values[0]
            for r in loaded_engine.scan_commit(commit_id, ColumnPredicate("id", ">=", 15))
        )
        assert keys == [15, 16, 17, 18, 19]

    def test_updates_between_commits_preserved_in_history(self, loaded_engine):
        loaded_engine.update("master", Record((2, 1, 1, 1)))
        first = loaded_engine.commit("master")
        loaded_engine.update("master", Record((2, 2, 2, 2)))
        second = loaded_engine.commit("master")
        first_values = {r.values[0]: r.values for r in loaded_engine.checkout(first)}
        second_values = {r.values[0]: r.values for r in loaded_engine.checkout(second)}
        assert first_values[2] == (2, 1, 1, 1)
        assert second_values[2] == (2, 2, 2, 2)

    def test_commit_graph_advances(self, loaded_engine):
        before = loaded_engine.graph.head("master")
        commit_id = loaded_engine.commit("master")
        assert loaded_engine.graph.head("master") == commit_id != before


class TestMultiBranchScan:
    def test_scan_branches_annotates_membership(self, loaded_engine, schema):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.insert("dev", Record((1100, 0, 0, 0)))
        loaded_engine.insert("master", Record((1101, 0, 0, 0)))
        rows = list(loaded_engine.scan_branches(["master", "dev"]))
        by_key = {}
        for record, branches in rows:
            by_key.setdefault(record.values[0], set()).update(branches)
        assert by_key[0] == {"master", "dev"}
        assert by_key[1100] == {"dev"}
        assert by_key[1101] == {"master"}

    def test_scan_heads_covers_all_branches(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.insert("dev", Record((1200, 0, 0, 0)))
        keys = {record.values[0] for record, _ in loaded_engine.scan_heads()}
        assert 1200 in keys and 0 in keys

    def test_scan_branches_with_predicate(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        rows = list(
            loaded_engine.scan_branches(["master", "dev"], ColumnPredicate("id", "=", 3))
        )
        assert all(record.values[0] == 3 for record, _ in rows)
        assert rows


class TestDiff:
    def test_diff_detects_inserts_updates_deletes(self, loaded_engine, schema):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.insert("dev", Record((1300, 0, 0, 0)))
        loaded_engine.update("dev", Record((5, 1, 1, 1)))
        loaded_engine.delete("dev", 6)
        diff = loaded_engine.diff("dev", "master")
        positive_keys = {r.values[0] for r in diff.positive}
        negative_keys = {r.values[0] for r in diff.negative}
        assert 1300 in positive_keys
        assert 5 in positive_keys  # dev's new copy of key 5
        assert 5 in negative_keys  # master's old copy of key 5
        assert 6 in negative_keys  # present in master, deleted in dev
        assert 1300 not in negative_keys

    def test_diff_of_identical_branches_is_empty(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        diff = loaded_engine.diff("dev", "master")
        assert diff.is_empty

    def test_diff_is_antisymmetric(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.insert("dev", Record((1400, 0, 0, 0)))
        forward = loaded_engine.diff("dev", "master")
        backward = loaded_engine.diff("master", "dev")
        assert {r.values[0] for r in forward.positive} == {
            r.values[0] for r in backward.negative
        }


class TestMerge:
    def _diverge(self, engine):
        engine.create_branch("dev", from_branch="master")
        engine.insert("dev", Record((2000, 1, 1, 1)))
        engine.update("dev", Record((5, 50, 500, 5000)))
        engine.delete("dev", 6)
        engine.commit("dev", "dev work")
        engine.insert("master", Record((2001, 2, 2, 2)))
        engine.update("master", Record((7, 70, 700, 7000)))
        engine.commit("master", "master work")

    def test_three_way_merge_combines_changes(self, loaded_engine):
        self._diverge(loaded_engine)
        result = loaded_engine.merge("master", "dev", message="merge dev")
        values = {r.values[0]: r.values for r in loaded_engine.scan_branch("master")}
        assert 2000 in values and 2001 in values
        assert values[5] == (5, 50, 500, 5000)   # dev's update merged in
        assert values[7] == (7, 70, 700, 7000)   # master's own update kept
        assert 6 not in values                    # dev's delete propagated
        assert result.commit_id == loaded_engine.graph.head("master")
        assert result.policy == "three-way"

    def test_merge_leaves_source_untouched(self, loaded_engine):
        self._diverge(loaded_engine)
        loaded_engine.merge("master", "dev")
        dev_keys = keys_of(loaded_engine, "dev")
        assert 2001 not in dev_keys
        assert 2000 in dev_keys

    def test_merge_conflict_resolved_by_target_preference(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.update("dev", Record((3, 333, 300, 7)))
        loaded_engine.commit("dev")
        loaded_engine.update("master", Record((3, 111, 300, 7)))
        loaded_engine.commit("master")
        result = loaded_engine.merge("master", "dev")
        assert result.num_conflicts == 1
        values = {r.values[0]: r.values for r in loaded_engine.scan_branch("master")}
        assert values[3][1] == 111  # target branch wins the conflicting field

    def test_merge_conflict_source_preference_policy(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.update("dev", Record((3, 333, 300, 7)))
        loaded_engine.commit("dev")
        loaded_engine.update("master", Record((3, 111, 300, 7)))
        loaded_engine.commit("master")
        loaded_engine.merge("master", "dev", policy=ThreeWayPolicy(prefer="b"))
        values = {r.values[0]: r.values for r in loaded_engine.scan_branch("master")}
        assert values[3][1] == 333

    def test_field_level_auto_merge_of_disjoint_updates(self, loaded_engine):
        loaded_engine.create_branch("dev", from_branch="master")
        loaded_engine.update("dev", Record((4, 40, 999, 7)))     # changes c2
        loaded_engine.commit("dev")
        loaded_engine.update("master", Record((4, 40, 400, 888)))  # changes c3
        loaded_engine.commit("master")
        result = loaded_engine.merge("master", "dev")
        assert result.num_conflicts == 0
        values = {r.values[0]: r.values for r in loaded_engine.scan_branch("master")}
        assert values[4] == (4, 40, 999, 888)

    def test_two_way_merge_with_precedence(self, loaded_engine):
        self._diverge(loaded_engine)
        result = loaded_engine.merge(
            "master", "dev", three_way=False, policy=PrecedencePolicy(prefer="a")
        )
        assert result.policy == "precedence"
        values = {r.values[0]: r.values for r in loaded_engine.scan_branch("master")}
        assert 2000 in values         # dev's new record still arrives
        assert values[7] == (7, 70, 700, 7000)

    def test_merge_reports_diff_bytes(self, loaded_engine):
        self._diverge(loaded_engine)
        result = loaded_engine.merge("master", "dev")
        assert result.diff_bytes > 0
        assert result.records_applied > 0

    def test_merge_then_continue_working(self, loaded_engine):
        self._diverge(loaded_engine)
        loaded_engine.merge("master", "dev")
        loaded_engine.insert("master", Record((3000, 0, 0, 0)))
        loaded_engine.commit("master")
        assert 3000 in keys_of(loaded_engine, "master")

    def test_queries_after_merge_remain_consistent(self, loaded_engine):
        self._diverge(loaded_engine)
        loaded_engine.merge("master", "dev")
        heads = list(loaded_engine.scan_heads())
        master_keys = set(keys_of(loaded_engine, "master"))
        head_keys = {record.values[0] for record, branches in heads if "master" in branches}
        assert head_keys == master_keys


class TestSizes:
    def test_data_size_grows_with_inserts(self, loaded_engine):
        loaded_engine.flush()
        before = loaded_engine.data_size_bytes()
        for record in make_records(200, start=5000):
            loaded_engine.insert("master", record)
        loaded_engine.flush()
        assert loaded_engine.data_size_bytes() > before

    def test_commit_metadata_is_small(self, loaded_engine):
        for i in range(5):
            loaded_engine.insert("master", Record((4000 + i, 0, 0, 0)))
            loaded_engine.commit("master")
        loaded_engine.flush()
        assert loaded_engine.commit_metadata_bytes() < max(
            loaded_engine.data_size_bytes(), 1
        )

    def test_drop_caches_preserves_data(self, loaded_engine):
        loaded_engine.flush()
        loaded_engine.drop_caches()
        assert keys_of(loaded_engine, "master") == list(range(20))
