"""Figure 10: Query 4 (scan every branch head under a weak predicate).

Paper shape: tuple-first and hybrid offer the best, comparable performance --
they scan each record once and use bitmaps to attribute it to branches --
while version-first must make multiple passes, and degrades most on the
merge-heavy curation strategy.
"""

from benchmarks.conftest import run_once
from repro.bench.experiments import figure10_query4


def test_fig10_query4(benchmark, workdir, scale):
    table = run_once(benchmark, figure10_query4, workdir, scale=scale)
    table.print()
    assert [row[0] for row in table.rows] == ["deep", "flat", "science", "curation"]
    for strategy, vf, tf, hy in table.rows:
        # Version-first is never meaningfully faster than the bitmap engines.
        assert vf >= min(tf, hy) * 0.8, f"unexpected Q4 ordering on {strategy}"
    rows = {row[0]: row[1:] for row in table.rows}
    # Curation (with merges) is where version-first suffers the most relative
    # to hybrid.
    cur_vf, _, cur_hy = rows["curation"]
    assert cur_vf >= cur_hy
