"""Predicates evaluated against records during scans.

The benchmark queries (paper Table 1 and Section 4.3) apply simple column
predicates -- equality and range comparisons -- optionally combined with
boolean connectives.  Predicates are small immutable objects with an
``evaluate(record, schema)`` method so operators and storage engines can apply
them without knowing their structure; ``selectivity_hint`` lets benchmarks
describe the non-selective predicates used by Query 4.
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.core.record import Record
from repro.core.schema import Schema
from repro.errors import QueryError

_OPERATORS = {
    "=": operator.eq,
    "==": operator.eq,
    "!=": operator.ne,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


#: A compiled predicate: called with a record's raw ``values`` tuple.
CompiledPredicate = Callable[[tuple], bool]


class Predicate(ABC):
    """Base class for record predicates."""

    @abstractmethod
    def evaluate(self, record: Record, schema: Schema) -> bool:
        """True if ``record`` satisfies this predicate under ``schema``."""

    def _compile(self, schema: Schema) -> CompiledPredicate:
        """A closure over column ordinals, equivalent to :meth:`evaluate`.

        Subclasses override this with a lookup-free closure; the fallback
        keeps custom predicate classes working by routing through
        :meth:`evaluate` on a temporary record.
        """
        return lambda values: self.evaluate(Record(values), schema)

    def _expr(self, schema: Schema, values: str, constants: list) -> str | None:
        """A Python expression equivalent to :meth:`evaluate`, or ``None``.

        ``values`` is the source text of the values tuple; constants are
        appended to ``constants`` and referenced as ``_c[i]`` (never
        ``repr``-ed into the source, so arbitrary objects are safe).  The
        batch filter compiler inlines this expression into a list
        comprehension, removing the per-record function call entirely.
        ``None`` means "not expressible" and falls back to the closure.
        """
        return None

    def _column_expr(
        self, schema: Schema, constants: list, used: "set[int]"
    ) -> str | None:
        """A column-vector expression equivalent to :meth:`evaluate`.

        References the row-``_i`` value of column ``j`` as ``_cols[j][_i]``
        and records every touched column index in ``used``; constants bind
        through ``_c[i]`` exactly as in :meth:`_expr`.  The columnar filter
        compiler inlines this into an index-selection comprehension over
        whole column arrays.  ``None`` means "not expressible" -- columnar
        callers then fall back to row-at-a-time evaluation at the batch
        boundary.
        """
        return None

    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


#: Comparison-operator source text for the expression compiler.
_OPERATOR_SOURCE = {
    "=": "==",
    "==": "==",
    "!=": "!=",
    "<>": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


@lru_cache(maxsize=512)
def _compile_cached(schema: Schema, predicate: Predicate) -> CompiledPredicate:
    return predicate._compile(schema)


@lru_cache(maxsize=512)
def _compile_batch_cached(schema: Schema, predicate: Predicate):
    constants: list = []
    expr = predicate._expr(schema, "record.values", constants)
    if expr is None:
        return None
    source = f"lambda records, _c: [record for record in records if {expr}]"
    # The source is assembled only from validated operator symbols, integer
    # column indexes and ``_c[i]`` references, never from value reprs.
    filter_fn = eval(source, {"__builtins__": {}}, {})  # noqa: S307
    bound = tuple(constants)
    return lambda records: filter_fn(records, bound)


@lru_cache(maxsize=512)
def _compile_column_cached(schema: Schema, predicate: Predicate):
    constants: list = []
    used: set[int] = set()
    expr = predicate._column_expr(schema, constants, used)
    if expr is None:
        return None
    if len(used) == 1:
        # Single-column predicates (the common scan shape) iterate that one
        # array directly instead of indexing into it per row.
        (index,) = used
        body = expr.replace(f"_cols[{index}][_i]", "_v")
        source = (
            "lambda _cols, _n, _c: "
            f"[_i for _i, _v in enumerate(_cols[{index}]) if {body}]"
        )
    else:
        source = f"lambda _cols, _n, _c: [_i for _i in range(_n) if {expr}]"
    # As with the batch filter, the source is assembled only from validated
    # operator symbols, integer column indexes and ``_c[i]`` references.
    select_fn = eval(  # noqa: S307
        source,
        {"__builtins__": {"enumerate": enumerate, "range": range}},
        {},
    )
    bound = tuple(constants)
    return lambda columns, num_rows: select_fn(columns, num_rows, bound)


@lru_cache(maxsize=512)
def _column_uses_cached(
    schema: Schema, predicate: Predicate
) -> "frozenset[int] | None":
    constants: list = []
    used: set[int] = set()
    if predicate._column_expr(schema, constants, used) is None:
        return None
    return frozenset(used)


def column_filter_columns(
    predicate: Predicate | None, schema: Schema
) -> "frozenset[int] | None":
    """The column indexes a compiled column selection reads.

    ``None`` whenever :func:`compile_column_filter` would return ``None``
    (no predicate, or no column-vector form).  Scan paths use this to
    decode only the predicate's columns before running the selection (late
    materialization), deferring the rest to the records it keeps.
    """
    if predicate is None:
        return None
    try:
        return _column_uses_cached(schema, predicate)
    except TypeError:  # unhashable constant: skip the cache
        return None


def compile_column_filter(predicate: Predicate | None, schema: Schema):
    """Compile ``predicate`` into a selection over whole column arrays.

    Returns a callable ``select(columns, num_rows) -> list[int]`` yielding
    the indexes of matching rows in order.  The predicate expression is
    inlined into the selection comprehension and single-column predicates
    stream one array with ``enumerate`` -- no row tuple, record object or
    per-row function call exists anywhere on the path.  Returns ``None``
    when ``predicate`` is ``None`` or has no column-vector form; columnar
    callers then fall back to row-at-a-time evaluation at the batch
    boundary.
    """
    if predicate is None:
        return None
    try:
        return _compile_column_cached(schema, predicate)
    except TypeError:  # unhashable constant: skip the cache
        return None


def compile_batch_filter(predicate: Predicate | None, schema: Schema):
    """Compile ``predicate`` into a whole-list filter over records.

    Returns a callable ``filter(records) -> list[Record]`` whose predicate
    expression is inlined into the comprehension, so matching costs no
    per-record Python function call.  Returns ``None`` when ``predicate``
    is ``None`` or not expressible (custom predicate classes) -- callers
    then fall back to the per-record :func:`compile_predicate` closure.
    """
    if predicate is None:
        return None
    try:
        return _compile_batch_cached(schema, predicate)
    except TypeError:  # unhashable constant: skip the cache
        return None


def compile_predicate(
    predicate: Predicate | None, schema: Schema
) -> CompiledPredicate | None:
    """Compile ``predicate`` into a closure over column ordinals.

    The compiled form is called with a record's ``values`` tuple, so the hot
    loop pays no per-row schema/dict lookups, attribute fetches or operator
    table probes.  Results are memoized per (schema, predicate) -- both are
    frozen/hashable -- so repeated scans of the same shape reuse one closure.
    ``None`` compiles to ``None`` (unfiltered scan).
    """
    if predicate is None:
        return None
    try:
        return _compile_cached(schema, predicate)
    except TypeError:  # unhashable constant (e.g. a list value): skip the cache
        return predicate._compile(schema)


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """A predicate satisfied by every record (used for unfiltered scans)."""

    def evaluate(self, record: Record, schema: Schema) -> bool:
        return True

    def _compile(self, schema: Schema) -> CompiledPredicate:
        return lambda values: True

    def _expr(self, schema: Schema, values: str, constants: list) -> str | None:
        return "True"

    def _column_expr(
        self, schema: Schema, constants: list, used: "set[int]"
    ) -> str | None:
        return "True"


@dataclass(frozen=True)
class ColumnPredicate(Predicate):
    """Compare one column against a constant.

    Parameters
    ----------
    column:
        Column name.
    op:
        One of ``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=`` (and their
        aliases ``==`` / ``<>``).
    value:
        The constant to compare against.
    """

    column: str
    op: str
    value: object

    def __post_init__(self) -> None:
        if self.op not in _OPERATORS:
            raise QueryError(f"unsupported comparison operator: {self.op!r}")

    def evaluate(self, record: Record, schema: Schema) -> bool:
        return _OPERATORS[self.op](record.value(schema, self.column), self.value)

    def _compile(self, schema: Schema) -> CompiledPredicate:
        index = schema.index_of(self.column)
        compare = _OPERATORS[self.op]
        constant = self.value
        return lambda values: compare(values[index], constant)

    def _expr(self, schema: Schema, values: str, constants: list) -> str | None:
        index = schema.index_of(self.column)
        constants.append(self.value)
        symbol = _OPERATOR_SOURCE[self.op]
        return f"({values}[{index}] {symbol} _c[{len(constants) - 1}])"

    def _column_expr(
        self, schema: Schema, constants: list, used: "set[int]"
    ) -> str | None:
        index = schema.index_of(self.column)
        used.add(index)
        constants.append(self.value)
        symbol = _OPERATOR_SOURCE[self.op]
        return f"(_cols[{index}][_i] {symbol} _c[{len(constants) - 1}])"


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def evaluate(self, record: Record, schema: Schema) -> bool:
        return self.left.evaluate(record, schema) and self.right.evaluate(
            record, schema
        )

    def _compile(self, schema: Schema) -> CompiledPredicate:
        left = self.left._compile(schema)
        right = self.right._compile(schema)
        return lambda values: left(values) and right(values)

    def _expr(self, schema: Schema, values: str, constants: list) -> str | None:
        left = self.left._expr(schema, values, constants)
        right = self.right._expr(schema, values, constants)
        if left is None or right is None:
            return None
        return f"({left} and {right})"

    def _column_expr(
        self, schema: Schema, constants: list, used: "set[int]"
    ) -> str | None:
        left = self.left._column_expr(schema, constants, used)
        right = self.right._column_expr(schema, constants, used)
        if left is None or right is None:
            return None
        return f"({left} and {right})"


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def evaluate(self, record: Record, schema: Schema) -> bool:
        return self.left.evaluate(record, schema) or self.right.evaluate(
            record, schema
        )

    def _compile(self, schema: Schema) -> CompiledPredicate:
        left = self.left._compile(schema)
        right = self.right._compile(schema)
        return lambda values: left(values) or right(values)

    def _expr(self, schema: Schema, values: str, constants: list) -> str | None:
        left = self.left._expr(schema, values, constants)
        right = self.right._expr(schema, values, constants)
        if left is None or right is None:
            return None
        return f"({left} or {right})"

    def _column_expr(
        self, schema: Schema, constants: list, used: "set[int]"
    ) -> str | None:
        left = self.left._column_expr(schema, constants, used)
        right = self.right._column_expr(schema, constants, used)
        if left is None or right is None:
            return None
        return f"({left} or {right})"


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of a predicate."""

    inner: Predicate

    def evaluate(self, record: Record, schema: Schema) -> bool:
        return not self.inner.evaluate(record, schema)

    def _compile(self, schema: Schema) -> CompiledPredicate:
        inner = self.inner._compile(schema)
        return lambda values: not inner(values)

    def _expr(self, schema: Schema, values: str, constants: list) -> str | None:
        inner = self.inner._expr(schema, values, constants)
        if inner is None:
            return None
        return f"(not {inner})"

    def _column_expr(
        self, schema: Schema, constants: list, used: "set[int]"
    ) -> str | None:
        inner = self.inner._column_expr(schema, constants, used)
        if inner is None:
            return None
        return f"(not {inner})"


def conjunction_terms(predicate: Predicate | None) -> list[Predicate]:
    """The top-level AND-ed conjuncts of ``predicate``.

    ``And`` nodes are split recursively; every other predicate (including
    ``Or``/``Not`` subtrees) is one opaque conjunct.  The optimizer's
    index-scan selection uses this to find a :class:`ColumnPredicate` term
    an index can answer, and the plan verifier uses it to prove the chosen
    term really is a conjunct of the scan's predicate (dropping a
    disjunction branch would change results).
    """
    if predicate is None:
        return []
    if isinstance(predicate, And):
        return conjunction_terms(predicate.left) + conjunction_terms(
            predicate.right
        )
    return [predicate]


def non_selective_predicate(column: str, modulus: int = 10) -> Predicate:
    """A deliberately non-selective predicate for Query 4 style scans.

    The paper uses "a very non-selective predicate such that sequential scans
    are the preferred approach" (Section 5.2).  This helper returns a
    predicate that passes whenever ``column % modulus != 0``, i.e. roughly
    ``(modulus - 1) / modulus`` of uniformly random integers.
    """
    return ModuloPredicate(column, modulus)


@dataclass(frozen=True)
class ModuloPredicate(Predicate):
    """True when ``column % modulus != 0`` -- a cheap, tunable selectivity."""

    column: str
    modulus: int

    def evaluate(self, record: Record, schema: Schema) -> bool:
        return record.value(schema, self.column) % self.modulus != 0

    def _compile(self, schema: Schema) -> CompiledPredicate:
        index = schema.index_of(self.column)
        modulus = self.modulus
        return lambda values: values[index] % modulus != 0

    def _expr(self, schema: Schema, values: str, constants: list) -> str | None:
        index = schema.index_of(self.column)
        constants.append(self.modulus)
        return f"({values}[{index}] % _c[{len(constants) - 1}] != 0)"

    def _column_expr(
        self, schema: Schema, constants: list, used: "set[int]"
    ) -> str | None:
        index = schema.index_of(self.column)
        used.add(index)
        constants.append(self.modulus)
        return f"(_cols[{index}][_i] % _c[{len(constants) - 1}] != 0)"
