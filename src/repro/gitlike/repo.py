"""A minimal git-like repository: blobs, trees, commits, branches, repack.

The repository stores *files* (named byte strings).  A commit captures a tree
(the mapping of file names to blob ids), its parent commits and a message.
Branches are named refs pointing at commits.  As in git, committing hashes
every file in the working tree -- cost proportional to the dataset size --
and ``repack`` performs the delta-compression pass whose runtime the paper's
Table 6 reports separately.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass

from repro.errors import StorageError, VersionError
from repro.gitlike.object_store import ObjectStore
from repro.gitlike.packfile import PackFile, repack


@dataclass
class RepackReport:
    """Outcome of a repack: how long it took and how much space it saved."""

    seconds: float
    objects_packed: int
    loose_bytes_before: int
    pack_bytes_after: int


class GitLikeRepo:
    """Blobs + trees + commits + refs over an :class:`ObjectStore`."""

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.objects = ObjectStore(os.path.join(directory, "objects"))
        self._refs: dict[str, str] = {}
        self._packs: list[PackFile] = []
        self._refs_path = os.path.join(directory, "refs.json")
        if os.path.exists(self._refs_path):
            with open(self._refs_path, "r", encoding="utf-8") as handle:
                self._refs = json.load(handle)

    # -- refs -------------------------------------------------------------------

    def branches(self) -> list[str]:
        """All branch names."""
        return sorted(self._refs)

    def head_of(self, branch: str) -> str:
        """The commit id a branch points to."""
        try:
            return self._refs[branch]
        except KeyError:
            raise VersionError(f"unknown branch: {branch!r}") from None

    def create_branch(self, name: str, from_branch: str) -> None:
        """Create branch ``name`` at ``from_branch``'s current head."""
        if name in self._refs:
            raise VersionError(f"branch {name!r} already exists")
        self._refs[name] = self.head_of(from_branch)
        self._save_refs()

    def _save_refs(self) -> None:
        with open(self._refs_path, "w", encoding="utf-8") as handle:
            json.dump(self._refs, handle, indent=2)

    # -- object plumbing -----------------------------------------------------------

    def _read_object(self, object_id: str) -> bytes:
        if self.objects.contains(object_id):
            return self.objects.get(object_id)
        for pack in self._packs:
            if object_id in pack:
                return pack.get(object_id)
        raise StorageError(f"object {object_id} not found (loose or packed)")

    # -- commits ----------------------------------------------------------------------

    def commit(
        self,
        branch: str,
        files: dict[str, bytes],
        message: str = "",
        parents: list[str] | None = None,
    ) -> str:
        """Commit the full working tree ``files`` onto ``branch``.

        Every file is hashed (and stored if new), a tree object is built, and
        a commit object referencing the tree and the branch's previous head is
        written; the branch ref then advances.  ``parents`` may be supplied
        for merge commits.
        """
        tree = {
            name: self.objects.put(content, "blob")
            for name, content in sorted(files.items())
        }
        tree_id = self.objects.put(
            json.dumps(tree, sort_keys=True).encode("utf-8"), "tree"
        )
        if parents is None:
            parents = [self._refs[branch]] if branch in self._refs else []
        commit_payload = json.dumps(
            {"tree": tree_id, "parents": parents, "message": message},
            sort_keys=True,
        ).encode("utf-8")
        commit_id = self.objects.put(commit_payload, "commit")
        self._refs[branch] = commit_id
        self._save_refs()
        return commit_id

    def commit_info(self, commit_id: str) -> dict:
        """The decoded commit object."""
        return json.loads(self._read_object(commit_id))

    def tree_of(self, commit_id: str) -> dict[str, str]:
        """The ``{file name -> blob id}`` tree of a commit."""
        info = self.commit_info(commit_id)
        return json.loads(self._read_object(info["tree"]))

    def checkout(self, commit_id: str) -> dict[str, bytes]:
        """Materialize every file of a commit."""
        return {
            name: self._read_object(blob_id)
            for name, blob_id in self.tree_of(commit_id).items()
        }

    def log(self, branch: str) -> list[str]:
        """Commit ids reachable from the branch head, newest first."""
        result = []
        seen = set()
        stack = [self.head_of(branch)]
        while stack:
            commit_id = stack.pop()
            if commit_id in seen:
                continue
            seen.add(commit_id)
            result.append(commit_id)
            stack.extend(self.commit_info(commit_id)["parents"])
        return result

    # -- diff ----------------------------------------------------------------------------

    def diff(self, commit_a: str, commit_b: str) -> dict[str, list[str]]:
        """File-level diff: names added, removed and modified from A to B."""
        tree_a = self.tree_of(commit_a)
        tree_b = self.tree_of(commit_b)
        added = [name for name in tree_b if name not in tree_a]
        removed = [name for name in tree_a if name not in tree_b]
        modified = [
            name
            for name in tree_a
            if name in tree_b and tree_a[name] != tree_b[name]
        ]
        return {"added": added, "removed": removed, "modified": modified}

    # -- repack -----------------------------------------------------------------------------

    def repack(self, window: int = 10) -> RepackReport:
        """Delta-compress all loose objects into a packfile."""
        start = time.perf_counter()
        loose_before = self.objects.size_bytes()
        loose_ids = self.objects.all_ids()
        pack = repack(self.objects, loose_ids, window=window)
        pack_path = os.path.join(
            self.directory, f"pack-{len(self._packs):04d}.pack"
        )
        pack.save(pack_path)
        self._packs.append(pack)
        for object_id in loose_ids:
            self.objects.remove(object_id)
        return RepackReport(
            seconds=time.perf_counter() - start,
            objects_packed=len(loose_ids),
            loose_bytes_before=loose_before,
            pack_bytes_after=pack.size_bytes(),
        )

    # -- sizes --------------------------------------------------------------------------------

    def repo_size_bytes(self) -> int:
        """Loose objects plus packfiles (the paper's "Repo Size")."""
        return self.objects.size_bytes() + sum(
            pack.size_bytes() for pack in self._packs
        )
