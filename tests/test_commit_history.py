"""Tests for delta-compressed commit histories."""

import pytest

from repro.bitmap.bitmap import Bitmap
from repro.bitmap.delta import CommitHistory
from repro.errors import CommitNotFoundError, StorageError


def snapshots(count: int, stride: int = 5) -> list[Bitmap]:
    """A growing series of bitmaps, each extending the previous one."""
    result = []
    bitmap = Bitmap()
    for i in range(count):
        bitmap = bitmap.copy()
        for bit in range(i * stride, (i + 1) * stride):
            bitmap.set(bit)
        result.append(bitmap)
    return result


class TestCommitHistory:
    def test_checkout_reconstructs_every_snapshot(self):
        history = CommitHistory()
        series = snapshots(20)
        for i, snapshot in enumerate(series):
            history.record_commit(f"c{i}", snapshot)
        for i, snapshot in enumerate(series):
            assert history.checkout(f"c{i}") == snapshot

    def test_checkout_with_bit_clears(self):
        history = CommitHistory()
        first = Bitmap.from_indices([1, 2, 3, 4])
        second = first.copy()
        second.clear(2)
        second.set(10)
        history.record_commit("a", first)
        history.record_commit("b", second)
        assert history.checkout("a") == first
        assert history.checkout("b") == second

    def test_latest_snapshot(self):
        history = CommitHistory()
        series = snapshots(3)
        for i, snapshot in enumerate(series):
            history.record_commit(f"c{i}", snapshot)
        assert history.latest_snapshot() == series[-1]

    def test_duplicate_commit_rejected(self):
        history = CommitHistory()
        history.record_commit("a", Bitmap.from_indices([1]))
        with pytest.raises(StorageError):
            history.record_commit("a", Bitmap.from_indices([2]))

    def test_unknown_commit_rejected(self):
        history = CommitHistory()
        with pytest.raises(CommitNotFoundError):
            history.checkout("missing")

    def test_contains_and_len(self):
        history = CommitHistory()
        history.record_commit("a", Bitmap())
        assert "a" in history and "b" not in history
        assert len(history) == 1
        assert history.commit_ids == ["a"]

    def test_composite_layer_present(self):
        history = CommitHistory(layer_interval=4)
        for i, snapshot in enumerate(snapshots(12)):
            history.record_commit(f"c{i}", snapshot)
        # 12 base deltas and 3 composites.
        assert history.size_bytes() > history.base_delta_bytes()

    def test_flat_chain_when_layering_disabled(self):
        history = CommitHistory(layer_interval=0)
        series = snapshots(10)
        for i, snapshot in enumerate(series):
            history.record_commit(f"c{i}", snapshot)
        assert history.size_bytes() >= history.base_delta_bytes()
        for i, snapshot in enumerate(series):
            assert history.checkout(f"c{i}") == snapshot

    def test_layered_and_flat_agree(self):
        layered = CommitHistory(layer_interval=3)
        flat = CommitHistory(layer_interval=0)
        series = snapshots(17, stride=3)
        for i, snapshot in enumerate(series):
            layered.record_commit(f"c{i}", snapshot)
            flat.record_commit(f"c{i}", snapshot)
        for i in range(len(series)):
            assert layered.checkout(f"c{i}") == flat.checkout(f"c{i}")

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "history.hist")
        history = CommitHistory(path=path, layer_interval=4)
        series = snapshots(9)
        for i, snapshot in enumerate(series):
            history.record_commit(f"c{i}", snapshot)
        reloaded = CommitHistory(path=path, layer_interval=4)
        reloaded.rebind_commit_ids([f"c{i}" for i in range(len(series))])
        assert reloaded.latest_snapshot() == series[-1]
        for i, snapshot in enumerate(series):
            assert reloaded.checkout(f"c{i}") == snapshot

    def test_rebind_length_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "history.hist")
        history = CommitHistory(path=path)
        history.record_commit("a", Bitmap.from_indices([1]))
        reloaded = CommitHistory(path=path)
        with pytest.raises(StorageError):
            reloaded.rebind_commit_ids(["a", "b"])

    def test_size_is_small_relative_to_raw_snapshots(self):
        history = CommitHistory()
        series = snapshots(30, stride=50)
        for i, snapshot in enumerate(series):
            history.record_commit(f"c{i}", snapshot)
        raw = sum(len(s.to_bytes()) for s in series)
        assert history.size_bytes() < raw
