"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.analysis.plan_check import set_default_verify
from repro.core.buffer_pool import BufferPool
from repro.core.columns import set_debug_validation
from repro.core.record import Record
from repro.core.schema import Column, ColumnType, Schema
from repro.storage.hybrid import HybridEngine
from repro.storage.tuple_first import TupleFirstEngine
from repro.storage.version_first import VersionFirstEngine

#: The engine classes under test, keyed by their short benchmark label.
ENGINE_CLASSES = {
    "version-first": VersionFirstEngine,
    "tuple-first": TupleFirstEngine,
    "hybrid": HybridEngine,
}

#: A small page size so multi-page behaviour is exercised by small datasets.
SMALL_PAGE_SIZE = 4096

# Every plan executed by the test suite runs through the static plan
# verifier, so an invariant regression fails the first query that hits it.
set_default_verify(True)

# Every ColumnBatch constructed by the test suite validates its arity /
# length / dtype invariants, so a malformed batch fails at its birthplace.
set_debug_validation(True)


@pytest.fixture
def schema() -> Schema:
    """A 4-column integer schema (id plus three payload columns)."""
    return Schema.of_ints(4)

@pytest.fixture
def wide_schema() -> Schema:
    """A schema with integer and string columns for mixed-type tests."""
    return Schema(
        (
            Column("id", ColumnType.INT),
            Column("count", ColumnType.INT32),
            Column("name", ColumnType.STRING, width=16),
        ),
        primary_key="id",
    )


@pytest.fixture
def buffer_pool() -> BufferPool:
    """A buffer pool with a small capacity to exercise eviction."""
    return BufferPool(capacity_pages=16)


def make_records(count: int, start: int = 0, payload: int = 7) -> list[Record]:
    """``count`` records over the 4-column integer schema."""
    return [
        Record((key, key * 10, key * 100, payload))
        for key in range(start, start + count)
    ]


@pytest.fixture
def records() -> list[Record]:
    """Twenty deterministic records for the 4-column schema."""
    return make_records(20)


@pytest.fixture(params=sorted(ENGINE_CLASSES))
def engine_kind(request) -> str:
    """Parametrize a test over all three storage engine kinds."""
    return request.param


@pytest.fixture
def engine(engine_kind, schema, tmp_path):
    """A freshly constructed (uninitialized) engine of the current kind."""
    cls = ENGINE_CLASSES[engine_kind]
    return cls(str(tmp_path / "engine"), schema, page_size=SMALL_PAGE_SIZE)


@pytest.fixture
def loaded_engine(engine, records):
    """An engine initialized with twenty records on master."""
    engine.init(records, message="initial data")
    return engine


def engine_factory(kind: str, schema: Schema, directory: str, **kwargs):
    """Create an engine of ``kind`` rooted at ``directory``."""
    cls = ENGINE_CLASSES[kind]
    kwargs.setdefault("page_size", SMALL_PAGE_SIZE)
    return cls(directory, schema, **kwargs)
