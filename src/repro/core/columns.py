"""Typed column batches: the engine's columnar execution representation.

A :class:`ColumnBatch` carries a batch of rows as one container per schema
column instead of a list of :class:`~repro.core.record.Record` objects:
``array('q')`` / ``array('i')`` / ``array('d')`` for INT / INT32 / FLOAT
columns and plain lists for STRING (and for derived columns whose values are
not native numbers -- SQL NULLs from empty aggregates, the hidden branch
annotation column).  Operators move whole columns with C-level slicing,
``array.extend`` and ``map`` instead of constructing per-row objects; rows
exist only at the declared boundaries (:meth:`ColumnBatch.from_records` /
:meth:`ColumnBatch.to_records` / :meth:`ColumnBatch.rows`), which lint rule
REPRO008 enforces.

Invariants (checked by :meth:`ColumnBatch.validate`, and on every
construction when debug validation is on -- tests enable it globally):

- the batch has exactly one container per schema column (``"arity"``),
- every container holds exactly ``num_rows`` values (``"length"``),
- a typed ``array`` container's typecode matches the schema column's
  :class:`~repro.core.schema.ColumnType` (``"dtype"``).  Plain lists are
  always legal: they are the escape hatch for STRING data and for derived
  values a fixed-width array cannot hold.

The checks are O(columns), not O(rows), so keeping them on in debug/verify
mode costs nothing measurable.
"""

from __future__ import annotations

import os
from array import array
from operator import itemgetter
from typing import Callable, Iterable, Iterator, Sequence

from repro.core.record import Record
from repro.core.schema import ColumnType, Schema
from repro.errors import ColumnBatchError

#: One column's container: a typed array for native numerics, a list otherwise.
ColumnData = "array | list"

#: Environment flag that turns on per-construction validation.
ENV_FLAG = "REPRO_VALIDATE_COLUMNS"

_debug_validation: bool | None = None


def debug_validation() -> bool:
    """Whether every :class:`ColumnBatch` construction validates itself."""
    if _debug_validation is not None:
        return _debug_validation
    return os.environ.get(ENV_FLAG, "").strip().lower() in ("1", "true", "yes")


def set_debug_validation(enabled: bool | None) -> None:
    """Force debug validation on/off; ``None`` re-reads the environment."""
    global _debug_validation
    _debug_validation = enabled


def column_container(column_type: ColumnType) -> "array | list":
    """An empty container of the right flavour for ``column_type``."""
    typecode = column_type.typecode
    if typecode is None:
        return []
    return array(typecode)


def mutable_copy(values: "array | list") -> "array | list":
    """A same-flavour mutable copy of one column's container."""
    if isinstance(values, array):
        return array(values.typecode, values)
    return list(values)


def columns_from_rows(
    schema: Schema, rows: Sequence[tuple]
) -> tuple["array | list", ...]:
    """Pivot value tuples into per-column lists.

    Always builds plain lists, never typed arrays: row tuples arriving at
    this boundary may carry values no fixed-width array accepts (SQL NULLs
    from empty aggregates, ``float`` averages in an INT-declared slot, the
    hidden branch column's frozensets).  Columnar *scan* paths build typed
    arrays directly from the codec instead.
    """
    if rows:
        return tuple(list(column) for column in zip(*rows))
    return tuple([] for _ in schema.columns)


def column_payload_bytes(
    schema: Schema, columns: Sequence["array | list"]
) -> int:
    """Approximate payload bytes held by ``columns``.

    Typed arrays are exact (``len * itemsize``); list columns are charged
    their declared on-disk width, which understates Python object overhead
    but keeps the buffer-pool budget proportional to the data actually
    cached.
    """
    total = 0
    for column, values in zip(schema.columns, columns):
        if isinstance(values, array):
            total += len(values) * values.itemsize
        else:
            total += len(values) * column.byte_width
    return total


class ColumnBatch:
    """A batch of rows stored column-wise.

    Parameters
    ----------
    schema:
        The schema the columns follow, in order.
    columns:
        One container per schema column.  Typed arrays for native numeric
        columns, lists otherwise.  Containers are owned by the batch's
        producer; consumers must not mutate them (``take``/``slice`` copy).
    num_rows:
        Row count.  Defaults to the first column's length.
    """

    __slots__ = ("schema", "columns", "num_rows")

    def __init__(
        self,
        schema: Schema,
        columns: Iterable["array | list"],
        num_rows: int | None = None,
    ):
        self.schema = schema
        self.columns = tuple(columns)
        if num_rows is None:
            num_rows = len(self.columns[0]) if self.columns else 0
        self.num_rows = num_rows
        if debug_validation():
            self.validate()

    # -- boundaries (the only places rows exist) ------------------------------

    @classmethod
    def from_records(cls, schema: Schema, records: Sequence[Record]) -> "ColumnBatch":
        """Pivot a record batch into columns (row -> column boundary)."""
        return cls(
            schema,
            columns_from_rows(schema, [record.values for record in records]),
            len(records),
        )

    @classmethod
    def from_rows(cls, schema: Schema, rows: Sequence[tuple]) -> "ColumnBatch":
        """Pivot value tuples into columns (row -> column boundary)."""
        return cls(schema, columns_from_rows(schema, rows), len(rows))

    def rows(self) -> list[tuple]:
        """Materialize value tuples (column -> row boundary)."""
        if not self.columns:
            return [() for _ in range(self.num_rows)]
        return list(zip(*self.columns))

    def to_records(self) -> list[Record]:
        """Materialize :class:`Record` objects (column -> row boundary)."""
        return [Record(values) for values in self.rows()]

    # -- columnar transforms --------------------------------------------------

    def take(self, indexes: Sequence[int]) -> "ColumnBatch":
        """A new batch gathering ``indexes`` from every column, in order."""
        count = len(indexes)
        if count == 0:
            return ColumnBatch(
                self.schema,
                tuple(
                    array(values.typecode) if isinstance(values, array) else []
                    for values in self.columns
                ),
                0,
            )
        if count == 1:
            return self.slice(indexes[0], indexes[0] + 1)
        # One itemgetter shared across all columns: a single C call per
        # column replaces a Python-level __getitem__ call per element.
        getter = itemgetter(*indexes)
        picked: list = []
        for values in self.columns:
            taken = getter(values)
            if isinstance(values, array):
                picked.append(array(values.typecode, taken))
            else:
                picked.append(list(taken))
        return ColumnBatch(self.schema, picked, count)

    def slice(self, start: int, stop: int) -> "ColumnBatch":
        """A new batch over rows ``start:stop`` of every column."""
        stop = min(stop, self.num_rows)
        start = min(start, stop)
        return ColumnBatch(
            self.schema,
            tuple(values[start:stop] for values in self.columns),
            stop - start,
        )

    def head(self, n: int) -> "ColumnBatch":
        """The first ``n`` rows (the whole batch if ``n >= num_rows``)."""
        if n >= self.num_rows:
            return self
        return self.slice(0, n)

    def select_columns(
        self, positions: Sequence[int], schema: Schema
    ) -> "ColumnBatch":
        """Reorder/subset columns by position without copying any values."""
        return ColumnBatch(
            schema,
            tuple(self.columns[position] for position in positions),
            self.num_rows,
        )

    # -- invariants -----------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`ColumnBatchError` if any invariant is violated."""
        columns = self.schema.columns
        if len(self.columns) != len(columns):
            raise ColumnBatchError(
                "arity",
                None,
                f"schema has {len(columns)} columns but the batch carries "
                f"{len(self.columns)}",
            )
        for column, values in zip(columns, self.columns):
            if len(values) != self.num_rows:
                raise ColumnBatchError(
                    "length",
                    column.name,
                    f"column holds {len(values)} values but num_rows is "
                    f"{self.num_rows}",
                )
            if isinstance(values, array):
                expected = column.type.typecode
                if expected is None:
                    raise ColumnBatchError(
                        "dtype",
                        column.name,
                        f"{column.type.value} columns must be lists, got "
                        f"array({values.typecode!r})",
                    )
                if values.typecode != expected:
                    raise ColumnBatchError(
                        "dtype",
                        column.name,
                        f"array typecode {values.typecode!r} does not match "
                        f"{column.type.value} (expected {expected!r})",
                    )

    def payload_bytes(self) -> int:
        """Approximate payload bytes held by this batch's columns."""
        return column_payload_bytes(self.schema, self.columns)

    def __len__(self) -> int:
        return self.num_rows

    def __repr__(self) -> str:
        return (
            f"ColumnBatch({self.num_rows} rows x "
            f"{len(self.columns)} columns)"
        )


def regroup_column_batches(
    chunks: Iterable[ColumnBatch],
    batch_size: int,
    schema: Schema,
) -> Iterator[ColumnBatch]:
    """Regroup variable-size column chunks into ~``batch_size``-row batches.

    The columnar sibling of :func:`repro.storage.base.regroup_chunks`: chunks
    at or above *half* the target that arrive on an empty buffer pass
    through untouched (zero copy -- the common full- or mostly-full-page
    case; ``batch_size`` is a target, not a contract, and re-copying a
    near-target array chunk costs a real memcpy per column), smaller chunks
    are accumulated with ``array.extend``/``list.extend`` (C-level appends,
    no per-row Python work) and flushed once the buffer reaches the target.
    """
    pass_through = max(2, batch_size // 2)
    pending: list["array | list"] | None = None
    count = 0
    for chunk in chunks:
        if not chunk.num_rows:
            continue
        if pending is None:
            if chunk.num_rows >= pass_through:
                yield chunk
                continue
            pending = [mutable_copy(values) for values in chunk.columns]
            count = chunk.num_rows
        else:
            for accumulator, values in zip(pending, chunk.columns):
                accumulator.extend(values)
            count += chunk.num_rows
        if count >= batch_size:
            yield ColumnBatch(schema, tuple(pending), count)
            pending = None
            count = 0
    if pending is not None and count:
        yield ColumnBatch(schema, tuple(pending), count)
