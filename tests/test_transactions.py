"""Tests for transactions over branches."""

import pytest

from repro.core.locks import LockManager
from repro.core.record import Record
from repro.core.transactions import TransactionManager, TransactionState
from repro.errors import TransactionError

from tests.conftest import make_records


@pytest.fixture
def manager(loaded_engine):
    # A short lock timeout keeps the lock-contention test fast.
    return TransactionManager(loaded_engine, lock_manager=LockManager(timeout=0.2))


class TestTransaction:
    def test_commit_applies_buffered_writes(self, manager, loaded_engine, schema):
        txn = manager.begin()
        txn.insert("master", Record((100, 1, 2, 3)))
        txn.update("master", Record((5, 9, 9, 9)))
        txn.delete("master", 3)
        assert txn.pending_writes == 3
        # Nothing is visible until commit.
        keys_before = {r.key(schema) for r in loaded_engine.scan_branch("master")}
        assert 100 not in keys_before and 3 in keys_before
        commits = txn.commit("batch of changes")
        assert "master" in commits
        keys_after = {r.key(schema) for r in loaded_engine.scan_branch("master")}
        assert 100 in keys_after and 3 not in keys_after
        assert txn.state is TransactionState.COMMITTED

    def test_abort_discards_writes(self, manager, loaded_engine, schema):
        txn = manager.begin()
        txn.insert("master", Record((200, 0, 0, 0)))
        txn.abort()
        keys = {r.key(schema) for r in loaded_engine.scan_branch("master")}
        assert 200 not in keys
        assert txn.state is TransactionState.ABORTED

    def test_operations_after_commit_rejected(self, manager):
        txn = manager.begin()
        txn.insert("master", Record((300, 0, 0, 0)))
        txn.commit()
        with pytest.raises(TransactionError):
            txn.insert("master", Record((301, 0, 0, 0)))
        with pytest.raises(TransactionError):
            txn.commit()

    def test_commit_becomes_atomically_visible_as_one_version(
        self, manager, loaded_engine
    ):
        before_commits = len(loaded_engine.graph.commits())
        txn = manager.begin()
        for record in make_records(5, start=500):
            txn.insert("master", record)
        txn.commit("five inserts")
        # Exactly one new commit despite five writes.
        assert len(loaded_engine.graph.commits()) == before_commits + 1

    def test_concurrent_commits_to_same_branch_blocked(self, manager):
        first = manager.begin()
        second = manager.begin()
        first.insert("master", Record((700, 0, 0, 0)))
        with pytest.raises(TransactionError):
            second.insert("master", Record((701, 0, 0, 0)))
        first.commit()
        # After the first commit releases its locks the second can proceed.
        second.insert("master", Record((701, 0, 0, 0)))
        second.commit()

    def test_transaction_across_branches(self, manager, loaded_engine, schema):
        loaded_engine.create_branch("dev", from_branch="master")
        txn = manager.begin()
        txn.insert("master", Record((800, 0, 0, 0)))
        txn.insert("dev", Record((801, 0, 0, 0)))
        commits = txn.commit()
        assert set(commits) == {"master", "dev"}
        assert 800 in {r.key(schema) for r in loaded_engine.scan_branch("master")}
        assert 801 in {r.key(schema) for r in loaded_engine.scan_branch("dev")}

    def test_wal_records_lifecycle(self, manager):
        txn = manager.begin()
        txn.insert("master", Record((900, 0, 0, 0)))
        txn.commit()
        types = [record.type.value for record in manager.wal.records()]
        assert types == ["begin", "write", "commit", "applied"]

    def test_abort_logged(self, manager):
        txn = manager.begin()
        txn.insert("master", Record((901, 0, 0, 0)))
        txn.abort()
        assert manager.wal.records()[-1].type.value == "abort"
