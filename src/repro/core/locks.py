"""A two-phase-locking lock manager.

Decibel isolates concurrent sessions on the same version through two-phase
locking, and prevents concurrent commits to a branch the same way (paper
Section 2.2.3).  The lock manager here grants shared and exclusive locks on
named resources (branches, in practice) to transaction ids, supports lock
upgrades, and detects deadlocks with a waits-for graph.
"""

from __future__ import annotations

import enum
import threading
from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import TransactionError


class LockMode(enum.Enum):
    """Lock modes: shared for readers, exclusive for writers."""

    SHARED = "shared"
    EXCLUSIVE = "exclusive"


@dataclass
class _ResourceLock:
    holders: dict[int, LockMode] = field(default_factory=dict)
    waiters: list[tuple[int, LockMode]] = field(default_factory=list)


class LockManager:
    """Grants shared/exclusive locks on named resources under 2PL.

    Locks are requested with :meth:`acquire` and released all at once with
    :meth:`release_all` (strict two-phase locking).  A request that cannot be
    granted immediately either waits (bounded by ``timeout``) or raises
    :class:`TransactionError` if waiting would create a deadlock.
    """

    def __init__(self, timeout: float = 5.0):
        self.timeout = timeout
        self._resources: dict[str, _ResourceLock] = defaultdict(_ResourceLock)
        self._held_by: dict[int, set[str]] = defaultdict(set)
        self._condition = threading.Condition()

    # -- public API -----------------------------------------------------------

    def acquire(
        self,
        transaction_id: int,
        resource: str,
        mode: LockMode,
        *,
        timeout: float | None = None,
    ) -> None:
        """Acquire ``resource`` in ``mode`` for ``transaction_id``.

        ``timeout`` overrides the manager-wide default for this call -- the
        serving layer passes the request's remaining deadline budget so no
        lock wait outlives the request that asked for it.

        Raises :class:`TransactionError` on deadlock or timeout.
        """
        wait_budget = self.timeout if timeout is None else timeout
        with self._condition:
            deadline = None
            while True:
                if self._try_grant(transaction_id, resource, mode):
                    self._held_by[transaction_id].add(resource)
                    return
                if self._would_deadlock(transaction_id, resource):
                    raise TransactionError(
                        f"deadlock: transaction {transaction_id} waiting on "
                        f"{resource!r}"
                    )
                if deadline is None:
                    import time

                    deadline = time.monotonic() + wait_budget
                entry = (transaction_id, mode)
                lock = self._resources[resource]
                if entry not in lock.waiters:
                    lock.waiters.append(entry)
                import time

                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._condition.wait(remaining):
                    if entry in lock.waiters:
                        lock.waiters.remove(entry)
                    # A departing exclusive waiter may unblock readers that
                    # queued behind it for fairness.
                    self._condition.notify_all()
                    raise TransactionError(
                        f"timeout: transaction {transaction_id} could not lock "
                        f"{resource!r} in {mode.value} mode"
                    )
                if entry in lock.waiters:
                    lock.waiters.remove(entry)

    def release_all(self, transaction_id: int) -> None:
        """Release every lock held by ``transaction_id`` (end of 2PL phase 2)."""
        with self._condition:
            for resource in self._held_by.pop(transaction_id, set()):
                lock = self._resources[resource]
                lock.holders.pop(transaction_id, None)
                if not lock.holders and not lock.waiters:
                    del self._resources[resource]
            self._condition.notify_all()

    def holds(self, transaction_id: int, resource: str, mode: LockMode) -> bool:
        """True if the transaction holds ``resource`` at least as strongly."""
        with self._condition:
            held = self._resources.get(resource)
            if held is None:
                return False
            current = held.holders.get(transaction_id)
            if current is None:
                return False
            if mode is LockMode.SHARED:
                return True
            return current is LockMode.EXCLUSIVE

    def locked_resources(self, transaction_id: int) -> set[str]:
        """Resources currently locked by ``transaction_id``."""
        with self._condition:
            return set(self._held_by.get(transaction_id, set()))

    # -- internals ------------------------------------------------------------

    def _try_grant(self, transaction_id: int, resource: str, mode: LockMode) -> bool:
        lock = self._resources[resource]
        current = lock.holders.get(transaction_id)
        if current is LockMode.EXCLUSIVE:
            return True
        if current is LockMode.SHARED and mode is LockMode.SHARED:
            return True
        others = {
            holder: held
            for holder, held in lock.holders.items()
            if holder != transaction_id
        }
        if mode is LockMode.SHARED:
            # Writer fairness: a *new* reader queues behind a waiting
            # exclusive request instead of joining the current shared
            # holders -- otherwise a steady stream of readers starves the
            # writer forever.  (Re-grants and upgrades never reach this
            # branch: they early-return above or request EXCLUSIVE.)
            writer_waiting = any(
                waiting_mode is LockMode.EXCLUSIVE
                and waiter != transaction_id
                for waiter, waiting_mode in lock.waiters
            )
            if current is None and writer_waiting:
                return False
            if all(held is LockMode.SHARED for held in others.values()):
                lock.holders[transaction_id] = current or LockMode.SHARED
                return True
            return False
        # Exclusive request (possibly an upgrade from shared).
        if not others:
            lock.holders[transaction_id] = LockMode.EXCLUSIVE
            return True
        return False

    def _would_deadlock(self, requester: int, resource: str) -> bool:
        """Detect a cycle in the waits-for graph rooted at ``requester``."""
        waits_for: dict[int, set[int]] = defaultdict(set)
        for name, lock in self._resources.items():
            holders = set(lock.holders)
            for waiter, _ in lock.waiters:
                waits_for[waiter] |= holders - {waiter}
        waits_for[requester] |= set(self._resources[resource].holders) - {requester}
        seen: set[int] = set()
        stack = list(waits_for[requester])
        while stack:
            txn = stack.pop()
            if txn == requester:
                return True
            if txn in seen:
                continue
            seen.add(txn)
            stack.extend(waits_for.get(txn, ()))
        return False
