"""Tests specific to the tuple-first engine."""

import pytest

from repro.bitmap import BitmapOrientation
from repro.core.record import Record
from repro.errors import CommitNotFoundError
from repro.storage.tuple_first import TupleFirstEngine

from tests.conftest import SMALL_PAGE_SIZE, make_records


@pytest.fixture(params=["branch", "tuple"])
def tf_engine(request, schema, tmp_path):
    """A tuple-first engine in each bitmap orientation."""
    return TupleFirstEngine(
        str(tmp_path / f"tf_{request.param}"),
        schema,
        page_size=SMALL_PAGE_SIZE,
        bitmap_orientation=request.param,
    )


class TestTupleFirstLayout:
    def test_single_shared_heap_file(self, tf_engine, records):
        tf_engine.init(records)
        tf_engine.create_branch("dev", from_branch="master")
        tf_engine.insert("dev", Record((100, 0, 0, 0)))
        tf_engine.insert("master", Record((101, 0, 0, 0)))
        # All records, from every branch, live in the one heap file.
        assert tf_engine.heap.num_records == 22

    def test_update_appends_rather_than_overwrites(self, tf_engine, records):
        tf_engine.init(records)
        before = tf_engine.heap.num_records
        tf_engine.update("master", Record((0, 9, 9, 9)))
        assert tf_engine.heap.num_records == before + 1

    def test_delete_only_clears_bit(self, tf_engine, records):
        tf_engine.init(records)
        before = tf_engine.heap.num_records
        tf_engine.delete("master", 0)
        assert tf_engine.heap.num_records == before
        assert not tf_engine.bitmap_index.is_set(0, "master")

    def test_branch_clones_bitmap(self, tf_engine, records):
        tf_engine.init(records)
        tf_engine.create_branch("dev", from_branch="master")
        assert (
            tf_engine.bitmap_index.branch_bitmap("dev").to_indices()
            == tf_engine.bitmap_index.branch_bitmap("master").to_indices()
        )

    def test_bitmap_orientation_respected(self, schema, tmp_path):
        engine = TupleFirstEngine(
            str(tmp_path / "oriented"),
            schema,
            bitmap_orientation=BitmapOrientation.TUPLE,
        )
        assert engine.bitmap_index.orientation is BitmapOrientation.TUPLE

    def test_bitmap_index_bytes_positive(self, tf_engine, records):
        tf_engine.init(records)
        assert tf_engine.bitmap_index_bytes() > 0


class TestTupleFirstCommitHistory:
    def test_commit_history_grows_per_branch(self, tf_engine, records):
        tf_engine.init(records)
        tf_engine.create_branch("dev", from_branch="master")
        tf_engine.insert("dev", Record((300, 0, 0, 0)))
        tf_engine.commit("dev")
        assert len(tf_engine.commit_history("dev")) == 1
        assert len(tf_engine.commit_history("master")) == 1  # the init commit

    def test_checkout_commit_bitmap_matches_scan(self, tf_engine, records, schema):
        tf_engine.init(records)
        tf_engine.insert("master", Record((400, 0, 0, 0)))
        commit_id = tf_engine.commit("master")
        tf_engine.delete("master", 400)
        snapshot = tf_engine.checkout_commit_bitmap(commit_id)
        scanned_keys = {r.key(schema) for r in tf_engine.scan_commit(commit_id)}
        assert snapshot.count() == len(scanned_keys)
        assert 400 in scanned_keys

    def test_checkout_unknown_commit_rejected(self, tf_engine, records):
        tf_engine.init(records)
        with pytest.raises(CommitNotFoundError):
            list(tf_engine.scan_commit("v099999"))

    def test_commit_metadata_bytes_grow_with_commits(self, tf_engine, records):
        tf_engine.init(records)
        first = tf_engine.commit_metadata_bytes()
        for i in range(5):
            tf_engine.insert("master", Record((500 + i, 0, 0, 0)))
            tf_engine.commit("master")
        assert tf_engine.commit_metadata_bytes() > first

    def test_historical_branch_point(self, tf_engine, records, schema):
        tf_engine.init(records)
        commit_id = tf_engine.commit("master", "snapshot")
        for i in range(3):
            tf_engine.insert("master", Record((600 + i, 0, 0, 0)))
        tf_engine.commit("master")
        tf_engine.create_branch("past", from_commit=commit_id)
        past_keys = {r.key(schema) for r in tf_engine.scan_branch("past")}
        assert past_keys == set(range(20))
        # The new branch can evolve independently.
        tf_engine.insert("past", Record((700, 0, 0, 0)))
        assert tf_engine.branch_contains_key("past", 700)


class TestTupleFirstMergeSharing:
    def test_merge_shares_source_tuples(self, tf_engine, records):
        tf_engine.init(records)
        tf_engine.create_branch("dev", from_branch="master")
        tf_engine.insert("dev", Record((800, 1, 2, 3)))
        tf_engine.commit("dev")
        tf_engine.commit("master")
        heap_before = tf_engine.heap.num_records
        tf_engine.merge("master", "dev")
        # The merged-in record is shared via the bitmap, not copied.
        assert tf_engine.heap.num_records == heap_before
        assert tf_engine.pk_index.get("master", 800) == tf_engine.pk_index.get(
            "dev", 800
        )

    def test_merge_with_field_conflict_appends_resolved_copy(self, tf_engine, records):
        tf_engine.init(records)
        tf_engine.create_branch("dev", from_branch="master")
        tf_engine.update("dev", Record((1, 10, 999, 7)))
        tf_engine.commit("dev")
        tf_engine.update("master", Record((1, 10, 100, 888)))
        tf_engine.commit("master")
        heap_before = tf_engine.heap.num_records
        tf_engine.merge("master", "dev")
        # The field-level merged record matches neither side, so it is new.
        assert tf_engine.heap.num_records == heap_before + 1
        values = {
            r.values[0]: r.values for r in tf_engine.scan_branch("master")
        }
        assert values[1] == (1, 10, 999, 888)
