"""Decibel reproduction: a relational dataset branching system.

This package reproduces the system described in *Decibel: The Relational
Dataset Branching System* (Maddox et al., PVLDB 9(9), 2016).  It provides:

* ``repro.core`` -- a small relational storage substrate (pages, heap files,
  buffer pool, iterators) standing in for MIT SimpleDB.
* ``repro.versioning`` -- the version graph, commits, branches and sessions.
* ``repro.bitmap`` -- bitmaps, bitmap indexes and delta-compressed commit
  histories.
* ``repro.storage`` -- the three versioned storage engines evaluated in the
  paper: tuple-first, version-first and hybrid.
* ``repro.gitlike`` -- a from-scratch git-like baseline used in the paper's
  Section 5.7 comparison.
* ``repro.query`` -- a minimal versioned SQL (VQuel-style) front end.
* ``repro.db`` -- the user-facing ``Decibel`` facade.
* ``repro.bench`` -- the versioning benchmark (branching strategies, data
  generator, driver, and per-figure/table experiments).
"""

from repro.core.schema import Column, ColumnType, Schema
from repro.core.record import Record
from repro.versioning.version_graph import VersionGraph
from repro.storage.base import MergeResult, StorageEngineKind, VersionedStorageEngine
from repro.storage.tuple_first import TupleFirstEngine
from repro.storage.version_first import VersionFirstEngine
from repro.storage.hybrid import HybridEngine
from repro.db.database import Decibel

__version__ = "1.0.0"

__all__ = [
    "Column",
    "ColumnType",
    "Schema",
    "Record",
    "VersionGraph",
    "MergeResult",
    "StorageEngineKind",
    "VersionedStorageEngine",
    "TupleFirstEngine",
    "VersionFirstEngine",
    "HybridEngine",
    "Decibel",
    "__version__",
]
