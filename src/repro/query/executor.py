"""Planner and executor for the versioned SQL dialect.

The executor maps each parsed query onto storage-engine primitives:

* a single table bound to one version -> a single-version scan (Query 1);
* a ``NOT IN`` subquery over another version of the same relation -> a
  positive diff (Query 2);
* two table references joined on a column -> two version scans feeding a hash
  join (Query 3);
* ``HEAD(R.Version) = true`` -> a multi-branch scan over all branch heads,
  with each output row annotated with the branches it is live in (Query 4).

Column predicates are applied as filters on the appropriate side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.core.operators import Filter, HashJoin, SeqScan
from repro.core.predicates import ColumnPredicate, Predicate, TruePredicate
from repro.core.record import Record
from repro.core.schema import Schema
from repro.errors import QueryError
from repro.query.parser import SelectQuery, TableRef, parse_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Decibel, VersionedRelation


@dataclass
class QueryResult:
    """Rows produced by a versioned query.

    ``columns`` names the output columns; ``rows`` holds plain value tuples;
    ``branch_annotations`` (parallel to ``rows``) carries the set of branches
    each row is live in for HEAD() queries, and is empty otherwise.
    """

    columns: list[str]
    rows: list[tuple] = field(default_factory=list)
    branch_annotations: list[frozenset[str]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def to_dicts(self) -> list[dict]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]


def execute_query(db: "Decibel", sql: str) -> QueryResult:
    """Parse and execute ``sql`` against the relations registered in ``db``."""
    query = parse_query(sql)
    return _Planner(db, query).run()


class _Planner:
    def __init__(self, db: "Decibel", query: SelectQuery):
        self.db = db
        self.query = query

    # -- entry point ------------------------------------------------------------

    def run(self) -> QueryResult:
        query = self.query
        if query.head_conditions:
            return self._run_head_scan()
        if query.not_in_subqueries:
            return self._run_positive_diff()
        if len(query.tables) == 2:
            return self._run_join()
        if len(query.tables) == 1:
            return self._run_single_scan()
        raise QueryError("queries over more than two table references are not supported")

    # -- helpers ------------------------------------------------------------------

    def _relation_for(self, table: TableRef) -> "VersionedRelation":
        return self.db.relation(table.relation)

    def _resolve_version(self, relation: "VersionedRelation", version: str):
        """A version string may name a branch or a commit id."""
        graph = relation.graph
        if graph.has_branch(version):
            return ("branch", version)
        if graph.has_commit(version):
            return ("commit", version)
        raise QueryError(
            f"{version!r} is neither a branch nor a commit of {relation.name!r}"
        )

    def _scan_version(
        self,
        relation: "VersionedRelation",
        version: str,
        predicate: Predicate | None,
    ) -> Iterator[Record]:
        kind, name = self._resolve_version(relation, version)
        if kind == "branch":
            return relation.engine.scan_branch(name, predicate)
        return relation.engine.scan_commit(name, predicate)

    def _predicate_for(self, alias: str, schema: Schema) -> Predicate | None:
        """AND together the column comparisons that apply to ``alias``."""
        predicate: Predicate | None = None
        for comparison in self.query.column_comparisons:
            if comparison.alias not in (alias, None):
                continue
            if comparison.column not in schema.column_names:
                raise QueryError(
                    f"unknown column {comparison.column!r} in predicate"
                )
            term = ColumnPredicate(comparison.column, comparison.op, comparison.value)
            predicate = term if predicate is None else (predicate & term)
        return predicate

    def _project(self, schema: Schema, records: Iterator[Record]) -> QueryResult:
        if self.query.is_star:
            columns = list(schema.column_names)
            result = QueryResult(columns=columns)
            result.rows = [record.values for record in records]
            return result
        columns = list(self.query.columns)
        indexes = [schema.index_of(name) for name in columns]
        result = QueryResult(columns=columns)
        result.rows = [
            tuple(record.values[i] for i in indexes) for record in records
        ]
        return result

    # -- query shapes ----------------------------------------------------------------

    def _run_single_scan(self) -> QueryResult:
        table = self.query.tables[0]
        relation = self._relation_for(table)
        version = self.query.version_for(table.alias)
        if version is None:
            raise QueryError(
                "a single-table query must bind the table to a version "
                "(R.Version = '...') or use HEAD(R.Version)"
            )
        predicate = self._predicate_for(table.alias, relation.schema)
        records = self._scan_version(relation, version, predicate)
        return self._project(relation.schema, records)

    def _run_positive_diff(self) -> QueryResult:
        query = self.query
        if len(query.tables) != 1 or len(query.not_in_subqueries) != 1:
            raise QueryError("NOT IN queries must have exactly one outer table")
        table = query.tables[0]
        relation = self._relation_for(table)
        outer_version = query.version_for(table.alias)
        sub = query.not_in_subqueries[0]
        inner_table = sub.subquery.tables[0]
        inner_version = sub.subquery.version_for(inner_table.alias)
        if outer_version is None or inner_version is None:
            raise QueryError("both sides of the diff must be bound to versions")
        key_column = sub.column
        schema = relation.schema
        key_index = schema.index_of(key_column)
        outer_kind, outer_name = self._resolve_version(relation, outer_version)
        inner_kind, inner_name = self._resolve_version(relation, inner_version)
        predicate = self._predicate_for(table.alias, schema)
        if (
            outer_kind == "branch"
            and inner_kind == "branch"
            and key_column == schema.primary_key
        ):
            # Engine diffs are content-level: an updated record shows up on
            # both sides.  The SQL NOT IN shape is key-level, so modified keys
            # (present in both versions) are filtered back out.
            diff = relation.engine.diff(outer_name, inner_name)
            modified = diff.modified_keys(schema)
            records: Iterator[Record] = (
                record
                for record in diff.positive
                if record.values[key_index] not in modified
            )
        else:
            inner_keys = {
                record.values[key_index]
                for record in self._scan_version(relation, inner_version, None)
            }
            records = (
                record
                for record in self._scan_version(relation, outer_version, None)
                if record.values[key_index] not in inner_keys
            )
        if predicate is not None:
            records = (
                record for record in records if predicate.evaluate(record, schema)
            )
        return self._project(schema, records)

    def _run_join(self) -> QueryResult:
        query = self.query
        if not query.join_conditions:
            raise QueryError("two-table queries must have a join condition")
        join = query.join_conditions[0]
        left_table = self._table_by_alias(join.left_alias)
        right_table = self._table_by_alias(join.right_alias)
        left_relation = self._relation_for(left_table)
        right_relation = self._relation_for(right_table)
        left_version = query.version_for(left_table.alias)
        right_version = query.version_for(right_table.alias)
        if left_version is None or right_version is None:
            raise QueryError("both sides of a join must be bound to versions")
        left_predicate = self._predicate_for(left_table.alias, left_relation.schema)
        right_predicate = self._predicate_for(right_table.alias, right_relation.schema)
        left_scan = SeqScan(
            self._scan_version(left_relation, left_version, left_predicate),
            left_relation.schema,
        )
        right_scan = SeqScan(
            self._scan_version(right_relation, right_version, right_predicate),
            right_relation.schema,
        )
        joined = HashJoin(left_scan, right_scan, join.left_column, join.right_column)
        records = iter(joined)
        if self.query.is_star:
            result = QueryResult(columns=list(joined.schema.column_names))
            result.rows = [record.values for record in records]
            return result
        return self._project(joined.schema, records)

    def _run_head_scan(self) -> QueryResult:
        query = self.query
        if len(query.tables) != 1:
            raise QueryError("HEAD() queries must reference exactly one table")
        table = query.tables[0]
        relation = self._relation_for(table)
        head = query.head_conditions[0]
        if not head.value:
            raise QueryError("HEAD(R.Version) = false is not a meaningful query")
        predicate = self._predicate_for(table.alias, relation.schema)
        schema = relation.schema
        columns = (
            list(schema.column_names) if query.is_star else list(query.columns)
        )
        indexes = (
            list(range(len(schema.columns)))
            if query.is_star
            else [schema.index_of(name) for name in columns]
        )
        result = QueryResult(columns=columns)
        for record, branches in relation.engine.scan_heads(predicate):
            result.rows.append(tuple(record.values[i] for i in indexes))
            result.branch_annotations.append(branches)
        return result

    def _table_by_alias(self, alias: str) -> TableRef:
        for table in self.query.tables:
            if table.alias == alias:
                return table
        raise QueryError(f"unknown table alias {alias!r} in join condition")
