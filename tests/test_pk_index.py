"""Tests for the per-branch primary-key index."""

import pytest

from repro.errors import BranchNotFoundError
from repro.storage.pk_index import PrimaryKeyIndex


@pytest.fixture
def index():
    index = PrimaryKeyIndex()
    index.add_branch("master")
    return index


class TestPrimaryKeyIndex:
    def test_put_get(self, index):
        index.put("master", 1, 42)
        assert index.get("master", 1) == 42
        assert index.get("master", 2) is None

    def test_contains(self, index):
        index.put("master", 1, 0)
        assert index.contains("master", 1)
        assert not index.contains("master", 9)

    def test_remove(self, index):
        index.put("master", 1, 0)
        index.remove("master", 1)
        assert not index.contains("master", 1)
        index.remove("master", 1)  # idempotent

    def test_clone_on_add_branch(self, index):
        index.put("master", 1, 10)
        index.put("master", 2, 20)
        index.add_branch("dev", clone_from="master")
        assert index.get("dev", 1) == 10
        index.put("dev", 3, 30)
        index.remove("dev", 1)
        # The parent is unaffected by child modifications.
        assert index.contains("master", 1)
        assert not index.contains("master", 3)

    def test_unknown_branch_rejected(self, index):
        with pytest.raises(BranchNotFoundError):
            index.get("missing", 1)
        with pytest.raises(BranchNotFoundError):
            index.put("missing", 1, 1)

    def test_add_branch_without_clone_is_empty(self, index):
        index.add_branch("empty")
        assert index.live_count("empty") == 0

    def test_replace_branch(self, index):
        index.put("master", 1, 10)
        index.replace_branch("master", {5: 50, 6: 60})
        assert not index.contains("master", 1)
        assert index.get("master", 6) == 60

    def test_entries_returns_copy(self, index):
        index.put("master", 1, 10)
        entries = index.entries("master")
        entries[2] = 20
        assert not index.contains("master", 2)

    def test_keys_and_live_count(self, index):
        for key in (3, 1, 2):
            index.put("master", key, key)
        assert sorted(index.keys("master")) == [1, 2, 3]
        assert index.live_count("master") == 3

    def test_drop_branch(self, index):
        index.add_branch("dev")
        index.drop_branch("dev")
        assert not index.has_branch("dev")
        with pytest.raises(BranchNotFoundError):
            index.drop_branch("dev")

    def test_generic_location_type(self):
        index: PrimaryKeyIndex[tuple[str, int]] = PrimaryKeyIndex()
        index.add_branch("b")
        index.put("b", 7, ("seg00001", 3))
        assert index.get("b", 7) == ("seg00001", 3)
