"""Iterator-style query operators.

Decibel delegates general SQL processing (joins, aggregates) to the query
layer of the host database while its storage engines expose iterators over
single versions of a dataset (paper Section 2.1).  These operators mirror
that split: each takes child iterators of :class:`~repro.core.record.Record`
objects and produces records lazily, so benchmark queries and the small SQL
executor can be composed out of them regardless of which storage engine the
records came from.
"""

from __future__ import annotations

import heapq

from collections import Counter, defaultdict
from typing import Callable, Iterable, Iterator, Sequence

from operator import itemgetter

from repro.core.columns import ColumnBatch
from repro.core.predicates import (
    Predicate,
    compile_column_filter,
    compile_predicate,
)
from repro.core.record import Record
from repro.core.schema import Column, ColumnType, Schema
from repro.core.sort import ExternalRunSorter, make_sort_key, make_values_sort_key
from repro.core.cancel import checkpoint
from repro.errors import QueryError

#: Records per batch moved between batch-aware operators.
DEFAULT_BATCH_SIZE = 1024


def chunk_iterable(items: Iterable, batch_size: int) -> Iterator[list]:
    """Group an iterable into lists of at most ``batch_size`` items.

    The shared fallback used wherever a tuple-at-a-time source must present
    the batch protocol; flattening the chunks reproduces the iteration
    exactly.
    """
    batch: list = []
    append = batch.append
    for item in items:
        append(item)
        if len(batch) >= batch_size:
            checkpoint()
            yield batch
            batch = []
            append = batch.append
    if batch:
        yield batch


def join_schema(left: Schema, right: Schema) -> Schema:
    """The output schema of an equi-join: left columns then right columns.

    Right-side column names that collide with a left-side name are suffixed
    with ``_r``, which matches how the benchmark's Query 3 joins a relation
    with itself across two versions.
    """
    left_names = set(left.column_names)
    out_columns: list[Column] = list(left.columns)
    for column in right.columns:
        name = column.name if column.name not in left_names else f"{column.name}_r"
        out_columns.append(
            Column(name, column.type, column.width)
            if column.type is ColumnType.STRING
            else Column(name, column.type)
        )
    return Schema(tuple(out_columns), primary_key=left.primary_key)


def _as_columns(columns: str | Sequence[str]) -> list[str]:
    """Normalize a join-key spec (one name or a sequence) to a list."""
    if isinstance(columns, str):
        return [columns]
    return list(columns)


def aggregate_output_column(
    name: str, function: str, argument: str, child_schema: Schema
) -> Column:
    """The output column of one aggregate expression.

    ``count`` (and ``count(*)``) produce INT; ``avg`` always produces FLOAT
    (true division emits fractions even over integer inputs); ``min``/``max``
    inherit the argument column's type (including STRING); ``sum`` inherits
    numeric argument types and falls back to INT otherwise.  This is the
    single source of truth for aggregate output typing, shared by the
    logical planner and the physical operators.
    """
    if function == "count" or argument == "*":
        return Column(name, ColumnType.INT)
    source = child_schema.column(argument)
    if function == "avg":
        return Column(name, ColumnType.FLOAT)
    if function in ("min", "max"):
        return Column(name, source.type, source.width)
    agg_type = ColumnType.INT if source.type is ColumnType.STRING else source.type
    return Column(name, agg_type)


class Operator:
    """Base class: an operator is an iterable of records with a schema.

    Operators expose two equivalent consumption modes: :meth:`__iter__`
    yields records one at a time (the original Volcano-style contract), and
    :meth:`batches` yields the same records, in the same order, grouped into
    lists.  Every operator overrides :meth:`batches` with a native
    batch-at-a-time implementation, so whole record lists move through the
    pipeline and per-record interpreter overhead is paid only where the
    semantics require it (hash probes, group folds).

    :meth:`count` is the count-only consumption mode: it returns the number
    of records the operator would produce without requiring the consumer to
    materialize them, so ``COUNT(*)``-shaped work can ride on batch lengths
    (and, at the scan layer, bitmap popcounts) instead of record lists.
    """

    schema: Schema

    def __iter__(self) -> Iterator[Record]:  # pragma: no cover - interface
        raise NotImplementedError

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        """Yield the operator's output as lists of records.

        The default implementation chunks :meth:`__iter__`; flattening the
        batches always reproduces the per-record iteration exactly.
        """
        yield from chunk_iterable(self, batch_size)

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Yield the operator's output as :class:`ColumnBatch`es.

        The third consumption mode: the same rows, in the same order, carried
        as typed column arrays.  The default adapts :meth:`batches` at the
        declared row/column boundary; operators with a native columnar path
        override it to move whole columns without building row objects, and
        the optimizer only selects columnar execution for plans where every
        operator has such an override (see
        ``repro.query.optimizer.select_execution_mode``).
        """
        schema = self.schema
        for batch in self.batches(batch_size):
            yield ColumnBatch.from_records(schema, batch)

    def count(self) -> int:
        """Number of records this operator produces (cardinality only).

        The default sums batch lengths.  Operators that can answer without
        running their full pipeline (projections, sorts, scans with an
        engine-side counter) override this.
        """
        return sum(len(batch) for batch in self.batches())


class SeqScan(Operator):
    """Sequential scan over any iterable of records (e.g. a branch scan).

    ``batch_source`` may supply an iterable of record *lists* (such as a
    storage engine's ``scan_branch_batched``); it feeds :meth:`batches`
    directly and is flattened for :meth:`__iter__`.  ``column_source`` may
    supply an iterable of :class:`ColumnBatch`es (an engine's
    ``scan_branch_columns``) feeding :meth:`column_batches` the same way.
    Exactly one of the sources is consumed per execution, and like the plain
    record iterator each is single-shot.  ``count_source`` optionally
    supplies an engine-side cardinality shortcut (e.g. a bitmap popcount)
    used by :meth:`count` instead of consuming the scan.
    """

    def __init__(
        self,
        source: Iterable[Record] | None,
        schema: Schema,
        batch_source: Iterable[list[Record]] | None = None,
        count_source: Callable[[], int] | None = None,
        column_source: Iterable[ColumnBatch] | None = None,
    ):
        self.source = source
        self.schema = schema
        self.batch_source = batch_source
        self.count_source = count_source
        self.column_source = column_source

    def __iter__(self) -> Iterator[Record]:
        if self.batch_source is not None:
            for batch in self.batch_source:
                checkpoint()
                yield from batch
            return
        yield from self.source

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        # The scan is where all data enters the operator tree, so a
        # cancellation checkpoint per batch here bounds a cancelled query's
        # remaining work to one batch in every execution mode.
        if self.batch_source is not None:
            for batch in self.batch_source:
                checkpoint()
                yield batch
            return
        yield from super().batches(batch_size)

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Engine column scans pass through; record sources pivot at the
        scan, which is the columnar pipeline's declared source boundary."""
        if self.column_source is not None:
            for column_batch in self.column_source:
                checkpoint()
                yield column_batch
            return
        yield from super().column_batches(batch_size)

    def count(self) -> int:
        if self.count_source is not None:
            return self.count_source()
        return super().count()


class Filter(Operator):
    """Emit only the child records satisfying a predicate."""

    def __init__(self, child: Operator, predicate: Predicate):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema

    def __iter__(self) -> Iterator[Record]:
        schema = self.schema
        predicate = self.predicate
        for record in self.child:
            if predicate.evaluate(record, schema):
                yield record

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        matches = compile_predicate(self.predicate, self.schema)
        for batch in self.child.batches(batch_size):
            kept = [record for record in batch if matches(record.values)]
            if kept:
                yield kept

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Vectorized selection: the compiled column filter returns matching
        row indexes straight off the column arrays; a full-match batch passes
        through untouched and a partial match gathers once per column."""
        select = compile_column_filter(self.predicate, self.schema)
        matches = (
            compile_predicate(self.predicate, self.schema)
            if select is None
            else None
        )
        for batch in self.child.column_batches(batch_size):
            if select is not None:
                selection = select(batch.columns, batch.num_rows)
            else:
                # Custom predicate without a column-vector form: evaluate
                # row values at the batch boundary (tuples, not records).
                selection = [
                    i
                    for i, values in enumerate(batch.rows())
                    if matches(values)
                ]
            if not selection:
                continue
            if len(selection) == batch.num_rows:
                yield batch
            else:
                yield batch.take(selection)


def project_schema(child_schema: Schema, columns: Sequence[str]) -> Schema:
    """The output schema of a projection onto ``columns``.

    A column may be listed more than once; repeated names are disambiguated
    positionally (``id``, ``id_2``) since schemas require unique names, while
    the projected values repeat as listed.
    """
    if len(set(columns)) == len(columns):
        return child_schema.project(list(columns))
    out_columns = []
    counts: dict[str, int] = {}
    for name in columns:
        source = child_schema.column(name)
        counts[name] = counts.get(name, 0) + 1
        out_name = name if counts[name] == 1 else f"{name}_{counts[name]}"
        out_columns.append(Column(out_name, source.type, source.width))
    return Schema.derived(tuple(out_columns))


class Project(Operator):
    """Project child records onto a subset of columns (duplicates allowed)."""

    def __init__(self, child: Operator, columns: list[str]):
        self.child = child
        self.columns = list(columns)
        self._indexes = [child.schema.index_of(name) for name in self.columns]
        self.schema = project_schema(child.schema, self.columns)

    def __iter__(self) -> Iterator[Record]:
        for record in self.child:
            yield Record(tuple(record.values[i] for i in self._indexes))

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        indexes = self._indexes
        if len(indexes) == 1:
            only = indexes[0]
            for batch in self.child.batches(batch_size):
                yield [Record((record.values[only],)) for record in batch]
            return
        pick = itemgetter(*indexes)
        for batch in self.child.batches(batch_size):
            yield [Record(pick(record.values)) for record in batch]

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Zero-copy projection: reorder/subset the column containers."""
        indexes = self._indexes
        schema = self.schema
        for batch in self.child.column_batches(batch_size):
            yield batch.select_columns(indexes, schema)

    def count(self) -> int:
        # Projection never changes cardinality; skip building output records.
        return self.child.count()


class Limit(Operator):
    """Emit at most ``n`` child records."""

    def __init__(self, child: Operator, n: int):
        if n < 0:
            raise QueryError("LIMIT must be non-negative")
        self.child = child
        self.n = n
        self.schema = child.schema

    def __iter__(self) -> Iterator[Record]:
        remaining = self.n
        if remaining == 0:
            return
        for record in self.child:
            yield record
            remaining -= 1
            if remaining == 0:
                return

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        remaining = self.n
        if remaining == 0:
            return
        for batch in self.child.batches(batch_size):
            if len(batch) < remaining:
                yield batch
                remaining -= len(batch)
            else:
                yield batch[:remaining]
                return

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        remaining = self.n
        if remaining == 0:
            return
        for batch in self.child.column_batches(batch_size):
            if batch.num_rows < remaining:
                yield batch
                remaining -= batch.num_rows
            else:
                yield batch.head(remaining)
                return

    def count(self) -> int:
        # The limit caps the child's cardinality; engine-side count shortcuts
        # (scan popcounts, pass-through projections) answer without running
        # the child pipeline at all.
        return min(self.n, self.child.count())


class HashJoin(Operator):
    """Equi-join of two operators on one or more columns from each side.

    The build side (left) is materialized into a hash table keyed by the
    tuple of join-column values; the probe side (right) streams.  A composite
    key applies every equi-join condition of a multi-condition join at once.
    The output schema is the concatenation of both input schemas with
    right-side duplicate column names suffixed by ``_r`` (see
    :func:`join_schema`).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        left_column: str | Sequence[str],
        right_column: str | Sequence[str],
    ):
        self.left = left
        self.right = right
        self.left_columns = _as_columns(left_column)
        self.right_columns = _as_columns(right_column)
        if len(self.left_columns) != len(self.right_columns):
            raise QueryError(
                "join requires the same number of key columns on both sides"
            )
        if not self.left_columns:
            raise QueryError("join requires at least one key column")
        self.schema = join_schema(left.schema, right.schema)

    def __iter__(self) -> Iterator[Record]:
        build_indexes = [self.left.schema.index_of(c) for c in self.left_columns]
        probe_indexes = [self.right.schema.index_of(c) for c in self.right_columns]
        table: dict[tuple, list[Record]] = defaultdict(list)
        for record in self.left:
            key = tuple(record.values[i] for i in build_indexes)
            table[key].append(record)
        for probe in self.right:
            key = tuple(probe.values[i] for i in probe_indexes)
            for match in table.get(key, ()):
                yield Record(match.values + probe.values)

    def _build_table(self, batch_size: int) -> dict:
        """Build the hash table from whole left-side batches.

        Single-column joins key the table on the bare value (no per-record
        tuple allocation); composite joins key on the value tuple.
        """
        build_indexes = [self.left.schema.index_of(c) for c in self.left_columns]
        table: dict = {}
        if len(build_indexes) == 1:
            only = build_indexes[0]
            for batch in self.left.batches(batch_size):
                for record in batch:
                    key = record.values[only]
                    bucket = table.get(key)
                    if bucket is None:
                        table[key] = [record]
                    else:
                        bucket.append(record)
            return table
        pick = itemgetter(*build_indexes)
        for batch in self.left.batches(batch_size):
            for record in batch:
                key = pick(record.values)
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [record]
                else:
                    bucket.append(record)
        return table

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        """Batch build, batch probe: one pass over each probe-side batch."""
        probe_indexes = [self.right.schema.index_of(c) for c in self.right_columns]
        table = self._build_table(batch_size)
        get_bucket = table.get
        if len(probe_indexes) == 1:
            only = probe_indexes[0]
            key_of = lambda values: values[only]  # noqa: E731
        else:
            key_of = itemgetter(*probe_indexes)
        out: list[Record] = []
        for batch in self.right.batches(batch_size):
            for probe in batch:
                values = probe.values
                bucket = get_bucket(key_of(values))
                if bucket:
                    out.extend(Record(match.values + values) for match in bucket)
            if len(out) >= batch_size:
                yield out
                out = []
        if out:
            yield out

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Columnar build and probe: hash keys come straight off the key
        column arrays (single-column joins index one array, composite joins
        zip the key columns) -- rows are assembled only for matches, as value
        tuples at the output boundary."""
        build_indexes = [self.left.schema.index_of(c) for c in self.left_columns]
        probe_indexes = [self.right.schema.index_of(c) for c in self.right_columns]
        table: dict = {}
        for batch in self.left.column_batches(batch_size):
            if len(build_indexes) == 1:
                keys = batch.columns[build_indexes[0]]
            else:
                keys = zip(*(batch.columns[i] for i in build_indexes))
            for key, row in zip(keys, batch.rows()):
                bucket = table.get(key)
                if bucket is None:
                    table[key] = [row]
                else:
                    bucket.append(row)
        get_bucket = table.get
        schema = self.schema
        out_rows: list[tuple] = []
        for batch in self.right.column_batches(batch_size):
            if len(probe_indexes) == 1:
                keys = batch.columns[probe_indexes[0]]
            else:
                keys = zip(*(batch.columns[i] for i in probe_indexes))
            for key, row in zip(keys, batch.rows()):
                bucket = get_bucket(key)
                if bucket:
                    out_rows.extend(match + row for match in bucket)
            if len(out_rows) >= batch_size:
                yield ColumnBatch.from_rows(schema, out_rows)
                out_rows = []
        if out_rows:
            yield ColumnBatch.from_rows(schema, out_rows)


class HashAntiJoin(Operator):
    """Anti semi-join: outer records whose key has no match in the inner side.

    This is the generic fallback for the ``NOT IN`` query shape when the
    optimizer cannot rewrite it to a storage-engine ``diff``: the inner side
    is materialized into a key set, the outer side streams through it.
    """

    def __init__(
        self,
        outer: Operator,
        inner: Operator,
        outer_column: str,
        inner_column: str,
    ):
        self.outer = outer
        self.inner = inner
        self.outer_column = outer_column
        self.inner_column = inner_column
        self.schema = outer.schema

    def __iter__(self) -> Iterator[Record]:
        inner_index = self.inner.schema.index_of(self.inner_column)
        outer_index = self.outer.schema.index_of(self.outer_column)
        inner_keys = {record.values[inner_index] for record in self.inner}
        for record in self.outer:
            if record.values[outer_index] not in inner_keys:
                yield record

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        """Build the inner key set from whole batches; filter outer batches."""
        inner_index = self.inner.schema.index_of(self.inner_column)
        outer_index = self.outer.schema.index_of(self.outer_column)
        inner_keys: set = set()
        for batch in self.inner.batches(batch_size):
            inner_keys.update(record.values[inner_index] for record in batch)
        for batch in self.outer.batches(batch_size):
            kept = [
                record
                for record in batch
                if record.values[outer_index] not in inner_keys
            ]
            if kept:
                yield kept

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """The inner key set is filled with ``set.update`` over whole key
        columns; outer batches are filtered by key-column selection."""
        inner_index = self.inner.schema.index_of(self.inner_column)
        outer_index = self.outer.schema.index_of(self.outer_column)
        inner_keys: set = set()
        for batch in self.inner.column_batches(batch_size):
            inner_keys.update(batch.columns[inner_index])
        for batch in self.outer.column_batches(batch_size):
            column = batch.columns[outer_index]
            selection = [
                i for i, key in enumerate(column) if key not in inner_keys
            ]
            if not selection:
                continue
            if len(selection) == batch.num_rows:
                yield batch
            else:
                yield batch.take(selection)


class OrderBy(Operator):
    """Emit the child sorted by one or more keys, under a memory budget.

    ``keys`` is a sequence of ``(column, descending)`` pairs.  The sort is
    stable, so secondary keys break ties left to right.

    Input is accumulated into sorted runs bounded by ``budget_bytes``
    (default :data:`~repro.core.sort.DEFAULT_SORT_BUDGET_BYTES`): once a run
    hits the budget it is sorted and spilled to a temporary file, and the
    output is a k-way ``heapq.merge`` of all runs.  Inputs that fit the
    budget take the classic one-sort fast path.  ``spilled_runs`` records how
    many runs the last execution wrote to disk (0 for fully in-memory
    sorts).
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[tuple[str, bool]],
        budget_bytes: int | None = None,
    ):
        if not keys:
            raise QueryError("ORDER BY requires at least one key")
        self.child = child
        self.keys = [(column, bool(descending)) for column, descending in keys]
        self.schema = child.schema
        self.budget_bytes = budget_bytes
        self.spilled_runs = 0
        self._key = make_sort_key(self.schema, self.keys)

    def _merged(self, batch_size: int) -> Iterator[Record]:
        sorter = ExternalRunSorter(self._key, budget_bytes=self.budget_bytes)
        try:
            for batch in self.child.batches(batch_size):
                sorter.add_batch(batch)
            self.spilled_runs = sorter.spilled_runs
            yield from sorter.merged()
        finally:
            sorter.close()

    def __iter__(self) -> Iterator[Record]:
        yield from self._merged(DEFAULT_BATCH_SIZE)

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        """Sorted runs under the byte budget, merged and re-batched."""
        yield from chunk_iterable(self._merged(batch_size), batch_size)

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Columnar sort pivots through rows: ordering is inherently
        row-wise, so batches cross the declared row boundary into the
        memory-bounded run sorter (keeping the spill machinery and its byte
        budget) and the merged output pivots back to columns."""
        sorter = ExternalRunSorter(self._key, budget_bytes=self.budget_bytes)
        try:
            for batch in self.child.column_batches(batch_size):
                sorter.add_batch(batch.to_records())
            self.spilled_runs = sorter.spilled_runs
            schema = self.schema
            for chunk in chunk_iterable(sorter.merged(), batch_size):
                yield ColumnBatch.from_records(schema, chunk)
        finally:
            sorter.close()

    def count(self) -> int:
        # Ordering never changes cardinality; skip the sort entirely.
        return self.child.count()


class TopN(Operator):
    """The first ``n`` records of the child's sort order, via a bounded heap.

    Substituted by the optimizer for ``Limit`` over ``OrderBy``: instead of
    sorting the full input and discarding all but ``n`` rows, a heap of at
    most ``n`` candidates streams over the child (``heapq.nsmallest``, which
    is stable and equivalent to ``sorted(input)[:n]``), so memory is bounded
    by ``n`` regardless of input size.
    """

    def __init__(self, child: Operator, keys: Sequence[tuple[str, bool]], n: int):
        if n < 0:
            raise QueryError("LIMIT must be non-negative")
        if not keys:
            raise QueryError("Top-N requires at least one sort key")
        self.child = child
        self.keys = [(column, bool(descending)) for column, descending in keys]
        self.n = n
        self.schema = child.schema
        self._key = make_sort_key(self.schema, self.keys)

    def __iter__(self) -> Iterator[Record]:
        if self.n == 0:
            return
        yield from heapq.nsmallest(self.n, self.child, key=self._key)

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        if self.n == 0:
            return
        records = (
            record
            for batch in self.child.batches(batch_size)
            for record in batch
        )
        top = heapq.nsmallest(self.n, records, key=self._key)
        for start in range(0, len(top), batch_size):
            yield top[start : start + batch_size]

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """The bounded heap orders bare value tuples (via
        :func:`make_values_sort_key`, the same key encoding as row mode, so
        ties break identically) -- no record objects anywhere."""
        if self.n == 0:
            return
        key = make_values_sort_key(self.schema, self.keys)
        rows = (
            values
            for batch in self.child.column_batches(batch_size)
            for values in batch.rows()
        )
        top = heapq.nsmallest(self.n, rows, key=key)
        schema = self.schema
        for start in range(0, len(top), batch_size):
            yield ColumnBatch.from_rows(schema, top[start : start + batch_size])

    def count(self) -> int:
        # Cardinality is the child's, capped at n; no heap work needed.
        return min(self.n, self.child.count())


class Distinct(Operator):
    """Drop duplicate rows, keeping the first occurrence of each."""

    def __init__(self, child: Operator):
        self.child = child
        self.schema = child.schema

    def __iter__(self) -> Iterator[Record]:
        seen: set[tuple] = set()
        for record in self.child:
            if record.values not in seen:
                seen.add(record.values)
                yield record

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        seen: set[tuple] = set()
        seen_add = seen.add
        for batch in self.child.batches(batch_size):
            kept: list[Record] = []
            keep = kept.append
            for record in batch:
                values = record.values
                if values not in seen:
                    seen_add(values)
                    keep(record)
            if kept:
                yield kept

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Dedup keys are whole-row value tuples (one ``zip`` per batch);
        surviving row indexes gather the output columns."""
        seen: set[tuple] = set()
        seen_add = seen.add
        for batch in self.child.column_batches(batch_size):
            selection: list[int] = []
            select = selection.append
            for i, values in enumerate(batch.rows()):
                if values not in seen:
                    seen_add(values)
                    select(i)
            if not selection:
                continue
            if len(selection) == batch.num_rows:
                yield batch
            else:
                yield batch.take(selection)


# -- batch aggregation folds ---------------------------------------------------
#
# Grouped aggregation in batch mode slices the group-key column and each
# aggregate's input column out of a batch once, then folds the parallel lists
# into per-group running states with one of these precompiled accumulators.
# Compared to the per-record path (dict-of-record-lists, then one function
# call per group) this touches each record's values tuple at most twice and
# never materializes per-group record lists.

_MISSING = object()


def _fold_count(state: dict, keys: list, values: list | None) -> None:
    # ``count`` states are Counters (see :func:`_fold_state`), whose
    # ``update`` counts a whole key list in C.
    state.update(keys)


def _fold_state(function: str) -> dict:
    """A fresh per-group state for ``function`` (a Counter for ``count``)."""
    return Counter() if function == "count" else {}


def _fold_sum(state: dict, keys: list, values: list) -> None:
    get = state.get
    for key, value in zip(keys, values):
        state[key] = get(key, 0) + value


def _fold_min(state: dict, keys: list, values: list) -> None:
    get = state.get
    for key, value in zip(keys, values):
        current = get(key, _MISSING)
        if current is _MISSING or value < current:
            state[key] = value


def _fold_max(state: dict, keys: list, values: list) -> None:
    get = state.get
    for key, value in zip(keys, values):
        current = get(key, _MISSING)
        if current is _MISSING or value > current:
            state[key] = value


def _fold_avg(state: dict, keys: list, values: list) -> None:
    get = state.get
    for key, value in zip(keys, values):
        pair = get(key)
        if pair is None:
            state[key] = [value, 1]
        else:
            pair[0] += value
            pair[1] += 1


#: Batch fold per aggregate function; the fold mutates a per-group state dict.
_BATCH_FOLDS: dict[str, Callable[[dict, list, list | None], None]] = {
    "count": _fold_count,
    "sum": _fold_sum,
    "min": _fold_min,
    "max": _fold_max,
    "avg": _fold_avg,
}

#: Converts a fold state into the aggregate's output value (identity when
#: absent -- only ``avg`` keeps a compound state).
_BATCH_FINALIZERS: dict[str, Callable] = {
    "avg": lambda pair: pair[0] / pair[1],
}


def _scalar_aggregate(
    batches: Iterable[list[Record]], function: str, value_index: int
):
    """Fold one ungrouped aggregate over record batches.

    Empty input follows SQL semantics: ``count`` is 0, every other function
    is NULL (``None``).
    """
    if function == "count":
        return sum(len(batch) for batch in batches)
    if function in ("min", "max"):
        pick = min if function == "min" else max
        best = _MISSING
        for batch in batches:
            if batch:
                candidate = pick(record.values[value_index] for record in batch)
                best = candidate if best is _MISSING else pick(best, candidate)
        return None if best is _MISSING else best
    total = 0
    n = 0
    for batch in batches:
        total += sum(record.values[value_index] for record in batch)
        n += len(batch)
    if function == "avg":
        return total / n if n else None
    return total if n else None


def _scalar_aggregate_columns(
    batches: Iterable[ColumnBatch], function: str, value_index: int
):
    """Fold one ungrouped aggregate over column batches.

    The array-backed accumulator path: ``sum``/``min``/``max`` reduce the
    typed value arrays directly with the C-implemented builtins -- no value
    is ever lifted into a row.  Empty input follows SQL semantics (``count``
    is 0, everything else NULL), as in :func:`_scalar_aggregate`.
    """
    if function == "count":
        return sum(batch.num_rows for batch in batches)
    if function in ("min", "max"):
        pick = min if function == "min" else max
        best = _MISSING
        for batch in batches:
            if batch.num_rows:
                candidate = pick(batch.columns[value_index])
                best = candidate if best is _MISSING else pick(best, candidate)
        return None if best is _MISSING else best
    total = 0
    n = 0
    for batch in batches:
        total += sum(batch.columns[value_index])
        n += batch.num_rows
    if function == "avg":
        return total / n if n else None
    return total if n else None


class Aggregate(Operator):
    """Grouped aggregation over one column.

    Supports ``count``, ``sum``, ``min``, ``max`` and ``avg``.  With no
    grouping column the whole input forms a single group.  Output records are
    ``(group, value)`` pairs (or ``(value,)`` when ungrouped).  Empty input
    follows SQL semantics: ``count`` is 0, everything else is NULL
    (``None``).
    """

    _FUNCTIONS: dict[str, Callable[[list], object]] = {
        "count": len,
        "sum": sum,
        "min": min,
        "max": max,
        "avg": lambda values: sum(values) / len(values) if values else None,
    }

    def __init__(
        self,
        child: Operator,
        function: str,
        column: str,
        group_by: str | None = None,
    ):
        function = function.lower()
        if function not in self._FUNCTIONS:
            raise QueryError(f"unsupported aggregate function: {function!r}")
        self.child = child
        self.function = function
        self.column = column
        self.group_by = group_by
        out_columns = []
        if group_by is not None:
            # The group key inherits the type of the grouping column, so
            # string-keyed groups carry a correctly typed schema.
            source = child.schema.column(group_by)
            out_columns.append(Column("group_key", source.type, source.width))
        out_columns.append(
            aggregate_output_column("agg_value", function, column, child.schema)
        )
        # Derived: aggregate outputs are never stored, and a FLOAT agg_value
        # (avg) cannot satisfy the stored-schema integer-key requirement.
        self.schema = Schema.derived(tuple(out_columns))

    def __iter__(self) -> Iterator[Record]:
        child_schema = self.child.schema
        value_index = child_schema.index_of(self.column)
        func = self._FUNCTIONS[self.function]
        if self.group_by is None:
            values = [record.values[value_index] for record in self.child]
            # SQL empty-input semantics: count() is 0, the rest are NULL.
            result = (
                func(values)
                if (values or self.function == "count")
                else None
            )
            yield Record((result,))
            return
        group_index = child_schema.index_of(self.group_by)
        groups: dict[object, list] = defaultdict(list)
        for record in self.child:
            groups[record.values[group_index]].append(record.values[value_index])
        for key in sorted(groups):
            yield Record((key, func(groups[key])))

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        """Batch fold: slice the key/input columns per batch, fold, emit once."""
        child_schema = self.child.schema
        value_index = child_schema.index_of(self.column)
        function = self.function
        if self.group_by is None:
            yield [
                Record(
                    (
                        _scalar_aggregate(
                            self.child.batches(batch_size), function, value_index
                        ),
                    )
                )
            ]
            return
        group_index = child_schema.index_of(self.group_by)
        fold = _BATCH_FOLDS[function]
        finalize = _BATCH_FINALIZERS.get(function)
        state: dict = _fold_state(function)
        for batch in self.child.batches(batch_size):
            keys = [record.values[group_index] for record in batch]
            if function == "count":
                fold(state, keys, None)
            else:
                fold(state, keys, [record.values[value_index] for record in batch])
        rows = [
            Record((key, finalize(state[key]) if finalize else state[key]))
            for key in sorted(state)
        ]
        for start in range(0, len(rows), batch_size):
            yield rows[start : start + batch_size]

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Columnar fold: group keys and aggregate inputs are the child's
        column arrays themselves, and the output is built column-wise."""
        child_schema = self.child.schema
        value_index = child_schema.index_of(self.column)
        function = self.function
        schema = self.schema
        if self.group_by is None:
            result = _scalar_aggregate_columns(
                self.child.column_batches(batch_size), function, value_index
            )
            yield ColumnBatch.from_rows(schema, [(result,)])
            return
        group_index = child_schema.index_of(self.group_by)
        fold = _BATCH_FOLDS[function]
        finalize = _BATCH_FINALIZERS.get(function)
        state: dict = _fold_state(function)
        for batch in self.child.column_batches(batch_size):
            fold(
                state,
                batch.columns[group_index],
                None if function == "count" else batch.columns[value_index],
            )
        group_keys = sorted(state)
        out_values = [
            finalize(state[key]) if finalize else state[key]
            for key in group_keys
        ]
        out = ColumnBatch(schema, (group_keys, out_values))
        if out.num_rows <= batch_size:
            if out.num_rows:
                yield out
            return
        for start in range(0, out.num_rows, batch_size):
            yield out.slice(start, start + batch_size)


class GroupAggregate(Operator):
    """Grouped aggregation over any number of keys and aggregate expressions.

    ``group_by`` names zero or more grouping columns; ``aggregates`` is a
    sequence of ``(output_name, function, argument)`` where ``argument`` is a
    child column name, or ``"*"`` for ``count(*)``.  The output schema is the
    grouping columns (inheriting their child types) followed by one column
    per aggregate (typed by :func:`aggregate_output_column`).

    With no grouping columns the whole input forms a single group and exactly
    one row is emitted; for empty input that row follows SQL semantics --
    ``count`` columns are 0, every other aggregate is NULL (``None``), as in
    :class:`Aggregate`.  Groups are emitted in sorted key order.
    """

    _FUNCTIONS = Aggregate._FUNCTIONS

    def __init__(
        self,
        child: Operator,
        group_by: Sequence[str],
        aggregates: Sequence[tuple[str, str, str]],
    ):
        self.child = child
        self.group_by = list(group_by)
        self.aggregates = [
            (name, function.lower(), argument)
            for name, function, argument in aggregates
        ]
        for name, function, argument in self.aggregates:
            if function not in self._FUNCTIONS:
                raise QueryError(f"unsupported aggregate function: {function!r}")
            if argument == "*" and function != "count":
                raise QueryError(f"{function}(*) is not supported; use a column")
        out_columns: list[Column] = []
        for column in self.group_by:
            source = child.schema.column(column)
            out_columns.append(Column(column, source.type, source.width))
        for name, function, argument in self.aggregates:
            out_columns.append(
                aggregate_output_column(name, function, argument, child.schema)
            )
        self.schema = Schema.derived(tuple(out_columns))

    def __iter__(self) -> Iterator[Record]:
        child_schema = self.child.schema
        group_indexes = [child_schema.index_of(c) for c in self.group_by]
        agg_indexes = [
            None if argument == "*" else child_schema.index_of(argument)
            for _, _, argument in self.aggregates
        ]
        groups: dict[tuple, list[Record]] = defaultdict(list)
        for record in self.child:
            key = tuple(record.values[i] for i in group_indexes)
            groups[key].append(record)
        if not self.group_by and not groups:
            groups[()] = []
        for key in sorted(groups):
            rows = groups[key]
            values = list(key)
            for (name, function, argument), index in zip(
                self.aggregates, agg_indexes
            ):
                func = self._FUNCTIONS[function]
                inputs = (
                    [1] * len(rows)
                    if index is None
                    else [record.values[index] for record in rows]
                )
                # SQL empty-input semantics: count() is 0, the rest are NULL.
                values.append(
                    func(inputs) if (inputs or function == "count") else None
                )
            yield Record(tuple(values))

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) -> Iterator[list[Record]]:
        """Grouped column extraction: per batch, slice the group-key column
        and each aggregate's input column out once, then fold the parallel
        lists with the precompiled accumulators.  Output is identical to
        :meth:`__iter__` (groups in sorted key order)."""
        rows = self._folded_rows(batch_size)
        for start in range(0, len(rows), batch_size):
            yield rows[start : start + batch_size]

    def _agg_specs(self) -> tuple[list[tuple], list[dict]]:
        """Per-aggregate ``(fold, finalize, input_index)`` specs and fresh
        fold states, shared by the row-batch and columnar fold loops."""
        child_schema = self.child.schema
        specs: list[tuple] = []
        states: list[dict] = []
        for _, function, argument in self.aggregates:
            index = None if argument == "*" else child_schema.index_of(argument)
            specs.append(
                (_BATCH_FOLDS[function], _BATCH_FINALIZERS.get(function), index)
            )
            states.append(_fold_state(function))
        return specs, states

    def _empty_row(self) -> tuple:
        """The one output row for empty ungrouped input: SQL empty-input
        results (count -> 0, others -> NULL), as in __iter__."""
        return tuple(
            0 if function == "count" else None
            for _, function, _ in self.aggregates
        )

    def _finalized_columns(
        self, specs: list[tuple], states: list[dict], seen: set
    ) -> tuple[list, list[list]]:
        """Sorted group keys plus one finalized output column per aggregate.

        Column-wise emission shared by both batch modes: one finalized list
        per aggregate, aligned with the sorted keys (no per-row state
        probing).  Every fold sees every record, so any one state holds all
        group keys (``seen`` covers the no-aggregates case).
        """
        group_keys = sorted(states[0]) if states else sorted(seen)
        agg_columns: list[list] = []
        for (_, finalize, _), state in zip(specs, states):
            if finalize is None:
                agg_columns.append([state[key] for key in group_keys])
            else:
                agg_columns.append([finalize(state[key]) for key in group_keys])
        return group_keys, agg_columns

    def _folded_rows(self, batch_size: int) -> list[Record]:
        child_schema = self.child.schema
        group_indexes = [child_schema.index_of(c) for c in self.group_by]
        specs, states = self._agg_specs()
        single = len(group_indexes) == 1
        if single:
            group_index = group_indexes[0]
        elif group_indexes:
            pick_key = itemgetter(*group_indexes)
        seen: set = set()  # group keys when there are no aggregates to fold
        for batch in self.child.batches(batch_size):
            if single:
                keys = [record.values[group_index] for record in batch]
            elif group_indexes:
                keys = [pick_key(record.values) for record in batch]
            else:
                keys = [()] * len(batch)
            if not states:
                seen.update(keys)
                continue
            columns: dict[int, list] = {}
            for (fold, _, index), state in zip(specs, states):
                if index is None:
                    fold(state, keys, None)
                else:
                    column = columns.get(index)
                    if column is None:
                        column = [record.values[index] for record in batch]
                        columns[index] = column
                    fold(state, keys, column)
        group_keys, agg_columns = self._finalized_columns(specs, states, seen)
        if not self.group_by and not group_keys:
            return [Record(self._empty_row())]
        if single:
            return [Record(values) for values in zip(group_keys, *agg_columns)]
        if not group_indexes:
            # Exactly one (ungrouped) row; its key contributes no columns.
            return [Record(tuple(column[0] for column in agg_columns))]
        return [
            Record(key + tuple(aggs))
            for key, *aggs in zip(group_keys, *agg_columns)
        ]

    def column_batches(
        self, batch_size: int = DEFAULT_BATCH_SIZE
    ) -> Iterator[ColumnBatch]:
        """Columnar grouped fold: the group-key and aggregate-input columns
        are the child's column arrays themselves (zero extraction work --
        the array-backed accumulator path carried over from the row-batch
        fold), and the output is assembled column-wise.  Groups emit in
        sorted key order, identical to the other modes."""
        child_schema = self.child.schema
        group_indexes = [child_schema.index_of(c) for c in self.group_by]
        specs, states = self._agg_specs()
        single = len(group_indexes) == 1
        seen: set = set()  # group keys when there are no aggregates to fold
        for batch in self.child.column_batches(batch_size):
            columns = batch.columns
            if single:
                keys = columns[group_indexes[0]]
            elif group_indexes:
                keys = list(zip(*(columns[i] for i in group_indexes)))
            else:
                keys = [()] * batch.num_rows
            if not states:
                seen.update(keys)
                continue
            for (fold, _, index), state in zip(specs, states):
                fold(state, keys, None if index is None else columns[index])
        group_keys, agg_columns = self._finalized_columns(specs, states, seen)
        schema = self.schema
        if not self.group_by and not group_keys:
            yield ColumnBatch.from_rows(schema, [self._empty_row()])
            return
        if not group_keys:
            return
        if single:
            out_columns = [list(group_keys), *agg_columns]
        elif group_indexes:
            out_columns = [
                list(part) for part in zip(*group_keys)
            ] + agg_columns
        else:
            # Exactly one (ungrouped) row; its key contributes no columns.
            out_columns = agg_columns
        out = ColumnBatch(schema, out_columns)
        if out.num_rows <= batch_size:
            yield out
            return
        for start in range(0, out.num_rows, batch_size):
            yield out.slice(start, start + batch_size)


def materialize(operator: Operator) -> list[Record]:
    """Run an operator tree to completion and return all output records."""
    return [record for batch in operator.batches() for record in batch]
