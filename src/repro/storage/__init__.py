"""Versioned storage engines.

The three physical representations evaluated in the paper (Section 3):

* :class:`~repro.storage.tuple_first.TupleFirstEngine` -- all branches share
  one heap file; a bitmap index tracks which branches each tuple is live in.
* :class:`~repro.storage.version_first.VersionFirstEngine` -- each branch's
  modifications live in that branch's own segment file, chained to its
  ancestors by branch-point offsets.
* :class:`~repro.storage.hybrid.HybridEngine` -- version-first style segments,
  each with a local bitmap index, plus a global branch-to-segment bitmap.

All engines implement :class:`~repro.storage.base.VersionedStorageEngine`.
"""

from repro.storage.base import (
    EngineStats,
    MergeResult,
    StorageEngineKind,
    VersionedStorageEngine,
)
from repro.storage.pk_index import PrimaryKeyIndex
from repro.storage.segments import Segment, SegmentSet
from repro.storage.tuple_first import TupleFirstEngine
from repro.storage.version_first import VersionFirstEngine
from repro.storage.hybrid import HybridEngine

__all__ = [
    "EngineStats",
    "MergeResult",
    "StorageEngineKind",
    "VersionedStorageEngine",
    "PrimaryKeyIndex",
    "Segment",
    "SegmentSet",
    "TupleFirstEngine",
    "VersionFirstEngine",
    "HybridEngine",
    "create_engine",
]


def create_engine(kind, directory, schema, **kwargs):
    """Create a storage engine by kind.

    ``kind`` may be a :class:`StorageEngineKind` or one of the strings
    ``"tuple-first"``, ``"version-first"``, ``"hybrid"``.
    """
    if isinstance(kind, str):
        kind = StorageEngineKind(kind)
    if kind is StorageEngineKind.TUPLE_FIRST:
        return TupleFirstEngine(directory, schema, **kwargs)
    if kind is StorageEngineKind.VERSION_FIRST:
        return VersionFirstEngine(directory, schema, **kwargs)
    if kind is StorageEngineKind.HYBRID:
        return HybridEngine(directory, schema, **kwargs)
    raise ValueError(f"no engine for kind {kind!r}")
