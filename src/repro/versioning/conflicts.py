"""Field-level conflict detection and merge resolution policies.

Decibel tracks conflicts at the field level (paper Section 2.2.3, *Merge*):
two records conflict when they share a primary key but differ in field values,
and the decision of whether a true conflict exists is made by a three-way
comparison against the lowest common ancestor -- only fields changed on *both*
sides (to different values) conflict.  A record deleted in one branch and
modified in the other also conflicts.

Resolution is pluggable.  The paper's default gives one branch precedence for
conflicting fields while auto-merging non-overlapping field updates; both that
policy (:class:`ThreeWayPolicy`) and the simpler whole-record precedence
(:class:`PrecedencePolicy`) are provided, and callers may supply their own
:class:`MergePolicy`.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.core.record import Record
from repro.core.schema import Schema


@dataclass(frozen=True)
class FieldConflict:
    """A single field updated to different values in both branches."""

    key: int
    column: str
    ancestor_value: object
    value_a: object
    value_b: object


@dataclass
class RecordConflict:
    """All information about one conflicting primary key.

    ``record_a`` / ``record_b`` are the branch-side versions of the record
    (``None`` when the branch deleted it); ``ancestor`` is the LCA version
    (``None`` when the key did not exist at the LCA).
    """

    key: int
    record_a: Record | None
    record_b: Record | None
    ancestor: Record | None
    field_conflicts: list[FieldConflict] = field(default_factory=list)

    @property
    def is_delete_modify(self) -> bool:
        """True when one side deleted the record and the other modified it."""
        return (self.record_a is None) != (self.record_b is None)

    @property
    def has_conflicts(self) -> bool:
        """True when this key genuinely conflicts."""
        return self.is_delete_modify or bool(self.field_conflicts)


def detect_record_conflict(
    schema: Schema,
    key: int,
    record_a: Record | None,
    record_b: Record | None,
    ancestor: Record | None,
) -> RecordConflict:
    """Three-way, field-level conflict detection for one primary key.

    Returns a :class:`RecordConflict`; check :attr:`RecordConflict.has_conflicts`
    to see whether the key needs resolution.  Keys modified on only one side,
    or modified identically on both, never conflict.
    """
    conflict = RecordConflict(
        key=key, record_a=record_a, record_b=record_b, ancestor=ancestor
    )
    if record_a is None or record_b is None:
        # Deletion on at least one side.  Delete+delete is not a conflict;
        # delete+modify is, and is reported via ``is_delete_modify``.
        return conflict
    if record_a.values == record_b.values:
        return conflict
    for index, column in enumerate(schema.columns):
        value_a = record_a.values[index]
        value_b = record_b.values[index]
        if value_a == value_b:
            continue
        ancestor_value = ancestor.values[index] if ancestor is not None else None
        changed_a = ancestor is None or value_a != ancestor_value
        changed_b = ancestor is None or value_b != ancestor_value
        if changed_a and changed_b:
            conflict.field_conflicts.append(
                FieldConflict(
                    key=key,
                    column=column.name,
                    ancestor_value=ancestor_value,
                    value_a=value_a,
                    value_b=value_b,
                )
            )
    return conflict


class ConflictResolution(enum.Enum):
    """Which side a resolved field (or record) was taken from."""

    SIDE_A = "a"
    SIDE_B = "b"
    MERGED = "merged"
    DELETED = "deleted"


class MergePolicy(ABC):
    """Strategy that turns a :class:`RecordConflict` into a merged record."""

    #: Human-readable policy name (used in merge reports).
    name = "abstract"

    @abstractmethod
    def resolve(
        self, schema: Schema, conflict: RecordConflict
    ) -> tuple[Record | None, ConflictResolution]:
        """Resolve one conflicting key.

        Returns the merged record (or ``None`` if the key should be deleted)
        and how the resolution was reached.
        """


@dataclass
class PrecedencePolicy(MergePolicy):
    """Whole-record precedence: the preferred branch wins every conflict.

    This is the paper's "two-way" merge mode (Table 3): no ancestor scan is
    needed because conflicting records from exactly one parent are taken and
    the other parent's are discarded.
    """

    prefer: str = "a"
    name: str = "precedence"

    def resolve(
        self, schema: Schema, conflict: RecordConflict
    ) -> tuple[Record | None, ConflictResolution]:
        if self.prefer == "a":
            winner, side = conflict.record_a, ConflictResolution.SIDE_A
            fallback, fallback_side = conflict.record_b, ConflictResolution.SIDE_B
        else:
            winner, side = conflict.record_b, ConflictResolution.SIDE_B
            fallback, fallback_side = conflict.record_a, ConflictResolution.SIDE_A
        if winner is not None:
            return winner, side
        if fallback is not None:
            # The preferred branch deleted the record; precedence means the
            # deletion wins.
            return None, ConflictResolution.DELETED
        return None, ConflictResolution.DELETED


@dataclass
class ThreeWayPolicy(MergePolicy):
    """Field-level three-way merge with precedence for true conflicts.

    Non-overlapping field updates are auto-merged; fields updated on both
    sides take the value from the preferred branch (paper Section 2.2.3).
    Delete-vs-modify conflicts are resolved in favour of the preferred side.
    """

    prefer: str = "a"
    name: str = "three-way"

    def resolve(
        self, schema: Schema, conflict: RecordConflict
    ) -> tuple[Record | None, ConflictResolution]:
        record_a, record_b, ancestor = (
            conflict.record_a,
            conflict.record_b,
            conflict.ancestor,
        )
        if conflict.is_delete_modify:
            preferred = record_a if self.prefer == "a" else record_b
            if preferred is None:
                return None, ConflictResolution.DELETED
            return preferred, (
                ConflictResolution.SIDE_A
                if self.prefer == "a"
                else ConflictResolution.SIDE_B
            )
        if record_a is None and record_b is None:
            return None, ConflictResolution.DELETED
        assert record_a is not None and record_b is not None
        merged = list(record_a.values)
        used_b = False
        used_a = False
        for index in range(len(schema.columns)):
            value_a = record_a.values[index]
            value_b = record_b.values[index]
            if value_a == value_b:
                merged[index] = value_a
                continue
            ancestor_value = ancestor.values[index] if ancestor is not None else None
            changed_a = ancestor is None or value_a != ancestor_value
            changed_b = ancestor is None or value_b != ancestor_value
            if changed_a and not changed_b:
                merged[index] = value_a
                used_a = True
            elif changed_b and not changed_a:
                merged[index] = value_b
                used_b = True
            else:
                # Both sides changed the field: the preferred branch wins.
                merged[index] = value_a if self.prefer == "a" else value_b
                used_a = used_a or self.prefer == "a"
                used_b = used_b or self.prefer == "b"
        if used_a and used_b:
            resolution = ConflictResolution.MERGED
        elif used_b:
            resolution = ConflictResolution.SIDE_B
        else:
            resolution = ConflictResolution.SIDE_A
        return Record(tuple(merged)), resolution
