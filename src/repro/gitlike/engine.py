"""The Decibel API implemented on top of the git-like repository.

The paper's Section 5.7 implements the Decibel API with git as the storage
manager in two layouts -- a single heap file for all records ("git 1 file")
and one file per tuple ("git file/tup") -- each in CSV and binary record
formats.  This adapter reproduces those four configurations over
:class:`~repro.gitlike.repo.GitLikeRepo` and exposes the operations the
benchmark measures: insert/update/delete on a branch's working copy, commit,
checkout, branch, scan, repack, and repository size.
"""

from __future__ import annotations

import enum

from repro.core.record import Record, RecordCodec
from repro.core.schema import ColumnType, Schema
from repro.errors import StorageError, VersionError
from repro.gitlike.repo import GitLikeRepo, RepackReport


class GitStorageLayout(enum.Enum):
    """How records are mapped to files in the repository."""

    SINGLE_FILE = "single-file"
    FILE_PER_TUPLE = "file-per-tuple"


class GitRecordFormat(enum.Enum):
    """How a record is serialized inside a file."""

    CSV = "csv"
    BINARY = "binary"


class GitVersionedStore:
    """A versioned relation stored in a git-like repository."""

    def __init__(
        self,
        directory: str,
        schema: Schema,
        layout: GitStorageLayout | str = GitStorageLayout.SINGLE_FILE,
        record_format: GitRecordFormat | str = GitRecordFormat.BINARY,
    ):
        self.schema = schema
        self.layout = (
            GitStorageLayout(layout) if isinstance(layout, str) else layout
        )
        self.record_format = (
            GitRecordFormat(record_format)
            if isinstance(record_format, str)
            else record_format
        )
        self.repo = GitLikeRepo(directory)
        self._codec = RecordCodec(schema)
        #: Working copies: branch -> {primary key -> record}.
        self._working: dict[str, dict[int, Record]] = {}
        self._commits_per_branch: dict[str, list[str]] = {}

    # -- record serialization -------------------------------------------------------

    def _encode_record(self, record: Record) -> bytes:
        if self.record_format is GitRecordFormat.BINARY:
            return self._codec.encode(record)
        return (",".join(str(value) for value in record.values) + "\n").encode("utf-8")

    def _decode_record(self, data: bytes) -> Record:
        if self.record_format is GitRecordFormat.BINARY:
            return self._codec.decode(data)
        parts = data.decode("utf-8").strip().split(",")
        values = []
        for column, raw in zip(self.schema.columns, parts):
            if column.type is ColumnType.STRING:
                values.append(raw)
            else:
                values.append(int(raw))
        return Record(tuple(values))

    def _encode_tree(self, records: dict[int, Record]) -> dict[str, bytes]:
        suffix = "csv" if self.record_format is GitRecordFormat.CSV else "bin"
        if self.layout is GitStorageLayout.FILE_PER_TUPLE:
            return {
                f"{key}.{suffix}": self._encode_record(record)
                for key, record in records.items()
            }
        payload = b"".join(
            self._encode_record(records[key]) for key in sorted(records)
        )
        return {f"data.{suffix}": payload}

    def _decode_tree(self, files: dict[str, bytes]) -> dict[int, Record]:
        records: dict[int, Record] = {}
        pk_position = self.schema.primary_key_index
        if self.layout is GitStorageLayout.FILE_PER_TUPLE:
            for content in files.values():
                record = self._decode_record(content)
                records[record.values[pk_position]] = record
            return records
        for content in files.values():
            if self.record_format is GitRecordFormat.BINARY:
                for record in self._codec.decode_many(content):
                    records[record.values[pk_position]] = record
            else:
                for line in content.decode("utf-8").splitlines():
                    if line.strip():
                        record = self._decode_record(line.encode("utf-8") + b"\n")
                        records[record.values[pk_position]] = record
        return records

    # -- versioning API -------------------------------------------------------------------

    def init(self, records=(), message: str = "init") -> str:
        """Create the master branch with the given initial records."""
        if "master" in self._working:
            raise VersionError("store is already initialized")
        working: dict[int, Record] = {}
        pk_position = self.schema.primary_key_index
        for record in records:
            working[record.values[pk_position]] = record
        self._working["master"] = working
        commit_id = self.repo.commit("master", self._encode_tree(working), message)
        self._commits_per_branch["master"] = [commit_id]
        return commit_id

    def create_branch(self, name: str, from_branch: str = "master") -> None:
        """Branch the working copy (and the ref) off ``from_branch``."""
        if name in self._working:
            raise VersionError(f"branch {name!r} already exists")
        self.repo.create_branch(name, from_branch)
        self._working[name] = dict(self._working[from_branch])
        self._commits_per_branch[name] = []

    def insert(self, branch: str, record: Record) -> None:
        """Insert a record into the branch's working copy."""
        self._working[branch][record.key(self.schema)] = record

    def update(self, branch: str, record: Record) -> None:
        """Update the record with the same key in the branch's working copy."""
        self._working[branch][record.key(self.schema)] = record

    def delete(self, branch: str, key: int) -> None:
        """Delete a record from the branch's working copy."""
        if key not in self._working[branch]:
            raise StorageError(f"key {key} is not live in branch {branch!r}")
        del self._working[branch][key]

    def commit(self, branch: str, message: str = "") -> str:
        """Hash the whole working tree of ``branch`` and commit it."""
        files = self._encode_tree(self._working[branch])
        commit_id = self.repo.commit(branch, files, message)
        self._commits_per_branch.setdefault(branch, []).append(commit_id)
        return commit_id

    def checkout(self, commit_id: str) -> list[Record]:
        """Restore every record of a commit."""
        files = self.repo.checkout(commit_id)
        return list(self._decode_tree(files).values())

    def scan_branch(self, branch: str) -> list[Record]:
        """The live records of a branch's working copy."""
        return list(self._working[branch].values())

    def branch_contains_key(self, branch: str, key: int) -> bool:
        """True if the key is live in the branch's working copy."""
        return key in self._working[branch]

    def commits(self, branch: str) -> list[str]:
        """Commits made through this adapter on ``branch``."""
        return list(self._commits_per_branch.get(branch, []))

    # -- maintenance and sizes ------------------------------------------------------------------

    def repack(self, window: int = 10) -> RepackReport:
        """Run the repository's delta-compression pass."""
        return self.repo.repack(window=window)

    def repo_size_bytes(self) -> int:
        """Size of the backing repository (loose objects plus packs)."""
        return self.repo.repo_size_bytes()

    def data_size_bytes(self) -> int:
        """Logical size of the live data across all branch working copies."""
        return sum(
            len(self._encode_record(record))
            for working in self._working.values()
            for record in working.values()
        )
