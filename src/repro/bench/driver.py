"""The benchmark driver: loads a versioned dataset and measures queries.

The driver replays a strategy's operation plan against a storage engine,
generating records through the data generator, committing every
``commit_interval`` operations per branch (the paper commits every 10,000
insert/update operations per branch), and recording the total build time --
the quantity reported in the paper's Table 5.  The random number generator is
seeded so every engine performs exactly the same operations in the same
order.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field

from repro.bench.datagen import DataGenerator, GeneratorConfig
from repro.bench.strategies import (
    BranchingStrategy,
    Operation,
    OperationKind,
    StrategyConfig,
    make_strategy,
)
from repro.core.record import Record
from repro.errors import BenchmarkError
from repro.storage import create_engine
from repro.storage.base import StorageEngineKind, VersionedStorageEngine


@dataclass
class BenchmarkConfig:
    """Everything needed to build one benchmark dataset."""

    strategy: str = "deep"
    engine: str = "hybrid"
    num_branches: int = 10
    total_operations: int = 5_000
    update_fraction: float = 0.2
    commit_interval: int = 500
    num_columns: int = 10
    column_width_bytes: int = 8
    #: The paper uses 4 MB pages against multi-gigabyte branches; the scaled
    #: benchmark keeps the branch-much-larger-than-page relation by pairing
    #: its small branches with small pages.
    page_size: int = 4096
    seed: int = 42
    three_way_merges: bool = True

    def generator_config(self) -> GeneratorConfig:
        """The data-generator configuration implied by this benchmark config."""
        return GeneratorConfig(
            num_columns=self.num_columns,
            column_width_bytes=self.column_width_bytes,
            seed=self.seed,
        )

    def strategy_config(self) -> StrategyConfig:
        """The strategy configuration implied by this benchmark config."""
        return StrategyConfig(
            num_branches=self.num_branches,
            total_operations=self.total_operations,
            update_fraction=self.update_fraction,
            seed=self.seed,
        )


@dataclass
class MergeTiming:
    """Wall time and diff volume of one merge performed during the load."""

    target: str
    source: str
    seconds: float
    diff_bytes: int
    conflicts: int


@dataclass
class LoadResult:
    """Outcome of loading one dataset into one engine."""

    engine: VersionedStorageEngine
    strategy: BranchingStrategy
    generator: DataGenerator
    config: BenchmarkConfig
    load_seconds: float = 0.0
    operations_applied: int = 0
    inserts: int = 0
    updates: int = 0
    merges: int = 0
    commit_ids: list[str] = field(default_factory=list)
    commit_seconds: list[float] = field(default_factory=list)
    merge_timings: list[MergeTiming] = field(default_factory=list)
    live_keys: dict[str, list[int]] = field(default_factory=dict)

    @property
    def data_size_bytes(self) -> int:
        """On-disk size of the loaded record data."""
        return self.engine.data_size_bytes()

    @property
    def data_size_mb(self) -> float:
        """On-disk size of the loaded record data, in megabytes."""
        return self.data_size_bytes / (1024 * 1024)

    def cold(self) -> VersionedStorageEngine:
        """Drop caches and return the engine (cold-cache measurement helper)."""
        self.engine.drop_caches()
        return self.engine


def cluster_plan(plan: list[Operation]) -> list[Operation]:
    """Reorder a plan for clustered loading (paper Section 4.2).

    In clustered mode, inserts into a particular branch are batched together
    before being flushed to disk.  Structural operations (branch creation,
    merges, retirements) keep their positions; the data operations between two
    structural operations are stably grouped by branch.
    """
    clustered: list[Operation] = []
    window: list[Operation] = []

    def flush_window() -> None:
        window.sort(key=lambda op: op.branch)  # stable: preserves per-branch order
        clustered.extend(window)
        window.clear()

    for operation in plan:
        if operation.kind in (OperationKind.INSERT, OperationKind.UPDATE):
            window.append(operation)
        else:
            flush_window()
            clustered.append(operation)
    flush_window()
    return clustered


def load_dataset(
    config: BenchmarkConfig,
    directory: str,
    engine: VersionedStorageEngine | None = None,
    strategy: BranchingStrategy | None = None,
    clustered: bool = False,
) -> LoadResult:
    """Build a versioned dataset under ``directory`` according to ``config``.

    An already-constructed engine or strategy may be supplied (used by the
    ablation benchmarks); otherwise they are created from the config.  With
    ``clustered=True`` the plan is reordered so each branch's modifications
    are batched (the paper's clustered loading mode); the default interleaved
    mode reflects concurrent modification of different branches.
    """
    generator = DataGenerator(config.generator_config())
    if strategy is None:
        strategy = make_strategy(config.strategy, config.strategy_config())
    if engine is None:
        kind = StorageEngineKind(config.engine)
        engine = create_engine(
            kind,
            os.path.join(directory, f"{config.strategy}_{kind.value}"),
            generator.schema,
            page_size=config.page_size,
        )
    plan = strategy.plan()
    if clustered:
        plan = cluster_plan(plan)
    result = LoadResult(
        engine=engine, strategy=strategy, generator=generator, config=config
    )
    rng = random.Random(config.seed + 1)
    live_keys: dict[str, list[int]] = {"master": []}
    ops_since_commit: dict[str, int] = {"master": 0}
    start = time.perf_counter()
    initial_commit = engine.init([], message="benchmark init")
    result.commit_ids.append(initial_commit)
    for operation in plan:
        _apply_operation(
            engine, operation, generator, rng, live_keys, ops_since_commit, result, config
        )
    # Final commit on every branch with uncommitted work, so that the head of
    # every branch is a committed version.
    for branch, pending in sorted(ops_since_commit.items()):
        if pending:
            commit_start = time.perf_counter()
            result.commit_ids.append(engine.commit(branch, message="final"))
            result.commit_seconds.append(time.perf_counter() - commit_start)
            ops_since_commit[branch] = 0
    engine.flush()
    result.load_seconds = time.perf_counter() - start
    result.live_keys = live_keys
    return result


def _apply_operation(
    engine: VersionedStorageEngine,
    operation: Operation,
    generator: DataGenerator,
    rng: random.Random,
    live_keys: dict[str, list[int]],
    ops_since_commit: dict[str, int],
    result: LoadResult,
    config: BenchmarkConfig,
) -> None:
    kind = operation.kind
    if kind is OperationKind.CREATE_BRANCH:
        engine.create_branch(operation.branch, from_branch=operation.parent)
        live_keys[operation.branch] = list(live_keys.get(operation.parent, []))
        ops_since_commit[operation.branch] = 0
        return
    if kind is OperationKind.RETIRE:
        engine.graph.retire_branch(operation.branch)
        return
    if kind is OperationKind.MERGE:
        started = time.perf_counter()
        merge = engine.merge(
            operation.target,
            operation.source,
            three_way=config.three_way_merges,
            message=f"merge {operation.source} into {operation.target}",
        )
        elapsed = time.perf_counter() - started
        result.merge_timings.append(
            MergeTiming(
                target=operation.target,
                source=operation.source,
                seconds=elapsed,
                diff_bytes=merge.diff_bytes,
                conflicts=merge.num_conflicts,
            )
        )
        result.commit_ids.append(merge.commit_id)
        result.merges += 1
        # The merged-in records are now live in the target branch.
        target_keys = set(live_keys.get(operation.target, []))
        target_keys.update(live_keys.get(operation.source, []))
        live_keys[operation.target] = list(target_keys)
        ops_since_commit[operation.target] = 0
        return
    branch = operation.branch
    keys = live_keys.setdefault(branch, [])
    if kind is OperationKind.UPDATE and keys:
        key = keys[rng.randrange(len(keys))]
        engine.update(branch, generator.updated_record(key))
        result.updates += 1
    else:
        record = generator.new_record()
        engine.insert(branch, record)
        keys.append(record.key(generator.schema))
        result.inserts += 1
    result.operations_applied += 1
    ops_since_commit[branch] = ops_since_commit.get(branch, 0) + 1
    if ops_since_commit[branch] >= config.commit_interval:
        commit_start = time.perf_counter()
        result.commit_ids.append(engine.commit(branch, message="interval"))
        result.commit_seconds.append(time.perf_counter() - commit_start)
        ops_since_commit[branch] = 0


def apply_tablewise_update(
    result: LoadResult, branch: str, column: str = "c1", delta: int = 1
) -> int:
    """Update every live record of ``branch`` (paper Section 5.5).

    Each record is rewritten with ``column`` incremented by ``delta``; the
    branch is committed afterwards.  Returns the number of records updated.
    """
    engine = result.engine
    schema = engine.schema
    if column not in schema.column_names:
        raise BenchmarkError(f"unknown column {column!r} for table-wise update")
    records = [
        record
        for batch in engine.scan_branch_batched(branch)
        for record in batch
    ]
    for record in records:
        updated = record.replace(schema, **{column: record.value(schema, column) + delta})
        engine.update(branch, updated)
    result.commit_ids.append(engine.commit(branch, message="table-wise update"))
    return len(records)
