"""Snapshot-isolated read views over a dataset's branch heads.

The serving layer must let many readers run against a consistent state of
the data while writers keep committing.  The engines already contain the
mechanism: every commit records an immutable branch bitmap (or segment
offsets) addressable by commit id, and heap pages are append-only, so *the
head commit of a branch is a free point-in-time view*.  A
:class:`SnapshotManager` pins, per relation, every branch's head commit at
acquisition time (under each engine's commit gate, so a half-finished
commit is never observed) and hands back a :class:`Snapshot` whose
``database`` attribute quacks like a :class:`~repro.db.database.Decibel`
for the query pipeline -- but routes every branch read to the pinned
commit's recorded bitmap instead of the live head.

Readers therefore never block writers and never see a writer's in-flight
state: a query sees either entirely pre-commit or entirely post-commit
data, no matter how the threads interleave (the snapshot-isolation
guarantee the concurrency suite asserts).  Writers pay nothing: pinning is
bookkeeping only -- bitmaps and heap ordinals referenced by a commit are
immutable, so there is nothing to copy and nothing to garbage-collect
beyond dropping the pin counts on release.
"""

from __future__ import annotations

import threading
from collections import Counter
from typing import TYPE_CHECKING, Iterator

from repro.core.columns import ColumnBatch
from repro.core.predicates import Predicate
from repro.core.record import Record
from repro.errors import BranchNotFoundError
from repro.versioning.diff import DiffResult

#: Mirrors ``repro.storage.base.DEFAULT_SCAN_BATCH_SIZE`` (not imported to
#: keep ``versioning`` free of a runtime dependency on ``storage``).
DEFAULT_SCAN_BATCH_SIZE = 1024

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.db.database import Decibel
    from repro.storage.base import VersionedStorageEngine


class SnapshotEngineView:
    """A read-only engine facade that scans pinned commits, not live heads.

    Exposes exactly the surface the query pipeline uses (``schema``,
    ``graph``, the branch/commit/head scan families, ``diff``), mapping
    every ``scan_branch*`` call for a pinned branch onto the engine's
    ``scan_commit*`` path for that branch's pinned commit.  Plans built
    against the view keep their ``kind == "branch"`` scans, so the
    vectorized and columnar execution paths are preserved unchanged.
    """

    def __init__(self, engine: "VersionedStorageEngine", pins: dict[str, str]):
        self._engine = engine
        #: branch name -> head commit id at snapshot time.
        self.pins = dict(pins)
        self.schema = engine.schema
        self.graph = engine.graph
        self.stats = engine.stats
        self.kind = engine.kind

    def _pin(self, branch: str) -> str:
        commit_id = self.pins.get(branch)
        if commit_id is None:
            raise BranchNotFoundError(
                f"branch {branch!r} is not part of this snapshot "
                f"(created after it was taken?)"
            )
        return commit_id

    # -- branch reads, rerouted to pinned commits ------------------------------

    def scan_branch(
        self, branch: str, predicate: Predicate | None = None
    ) -> Iterator[Record]:
        return self._engine.scan_commit(self._pin(branch), predicate)

    def scan_branch_batched(
        self,
        branch: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[Record]]:
        return self._engine.scan_commit_batched(
            self._pin(branch), predicate, batch_size
        )

    def scan_branch_columns(
        self,
        branch: str,
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
        columns: tuple[str, ...] | None = None,
    ) -> Iterator[ColumnBatch]:
        batches = self._engine.scan_commit_columns(
            self._pin(branch), predicate, batch_size
        )
        if columns is None:
            return batches
        # Commit-addressed decodes have no pruned page path; project the
        # full batches at the view boundary instead.
        positions = [self.schema.index_of(name) for name in columns]
        out_schema = self.schema.project(list(columns))
        return (
            batch.select_columns(positions, out_schema) for batch in batches
        )

    def count_branch(self, branch: str, predicate: Predicate | None = None) -> int:
        return self._engine.count_commit(self._pin(branch), predicate)

    # -- commit reads pass straight through (history is immutable) -------------

    def scan_commit(
        self, commit_id: str, predicate: Predicate | None = None
    ) -> Iterator[Record]:
        return self._engine.scan_commit(commit_id, predicate)

    # -- multi-branch reads over the pinned branch set -------------------------

    def scan_branches(
        self, branches: list[str], predicate: Predicate | None = None
    ) -> Iterator[tuple[Record, frozenset[str]]]:
        """``(record, containing branches)`` over pinned branch states.

        Records are deduplicated by content across branches (a record whose
        values appear in several pinned branch states is emitted once, with
        every containing branch in its annotation), matching the engines'
        shared-tuple head-scan semantics.
        """
        order: list[Record] = []
        containing: dict[tuple, set[str]] = {}
        for branch in branches:
            for record in self.scan_branch(branch, predicate):
                key = tuple(record.values)
                holders = containing.get(key)
                if holders is None:
                    order.append(record)
                    containing[key] = {branch}
                else:
                    holders.add(branch)
        for record in order:
            yield record, frozenset(containing[tuple(record.values)])

    def scan_branches_batched(
        self,
        branches: list[str],
        predicate: Predicate | None = None,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[tuple[Record, frozenset[str]]]]:
        batch: list[tuple[Record, frozenset[str]]] = []
        for item in self.scan_branches(branches, predicate):
            batch.append(item)
            if len(batch) >= batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def scan_heads(
        self, predicate: Predicate | None = None, active_only: bool = False
    ) -> Iterator[tuple[Record, frozenset[str]]]:
        return self.scan_branches(sorted(self.pins), predicate)

    def scan_heads_batched(
        self,
        predicate: Predicate | None = None,
        active_only: bool = False,
        batch_size: int = DEFAULT_SCAN_BATCH_SIZE,
    ) -> Iterator[list[tuple[Record, frozenset[str]]]]:
        return self.scan_branches_batched(sorted(self.pins), predicate, batch_size)

    # -- diff over pinned states ------------------------------------------------

    def diff(self, branch_a: str, branch_b: str) -> DiffResult:
        """Key+content diff between the two branches' pinned states."""
        pk_index = self.schema.primary_key_index
        records_a = {
            record.values[pk_index]: record for record in self.scan_branch(branch_a)
        }
        records_b = {
            record.values[pk_index]: record for record in self.scan_branch(branch_b)
        }
        return DiffResult.from_record_maps(branch_a, branch_b, records_a, records_b)


class SnapshotRelationView:
    """Relation facade over a :class:`SnapshotEngineView` (read paths only)."""

    def __init__(self, name: str, engine_view: SnapshotEngineView):
        self.name = name
        self.engine = engine_view

    @property
    def schema(self):
        return self.engine.schema

    @property
    def graph(self):
        return self.engine.graph

    def scan(
        self, branch: str = "master", predicate: Predicate | None = None
    ) -> Iterator[Record]:
        return self.engine.scan_branch(branch, predicate)


class SnapshotDatabaseView:
    """Database facade over one snapshot; quacks like Decibel for queries."""

    def __init__(self, db: "Decibel", relation_views: dict[str, SnapshotRelationView]):
        self._db = db
        self._relation_views = relation_views

    def relation(self, name: str) -> SnapshotRelationView:
        view = self._relation_views.get(name)
        if view is None:
            # The relation was not pinned (created after the snapshot, or a
            # partial pin).  Fall back to pinning nothing: queries against it
            # fail with the usual unknown-relation error from the catalog.
            self._db.catalog.relation(name)
            raise BranchNotFoundError(
                f"relation {name!r} is not part of this snapshot"
            )
        return view

    def relations(self) -> list[str]:
        return sorted(self._relation_views)

    def query(self, sql: str):
        """Execute a query against the snapshot (never the live heads)."""
        from repro.query.executor import execute_query

        return execute_query(self, sql)


class Snapshot:
    """A pinned, immutable view of every relation's branch heads.

    Context-manager style::

        with db.snapshot() as snap:
            result = snap.database.query("SELECT ...")

    ``pins`` maps ``relation -> {branch -> commit id}``.  The snapshot holds
    no locks -- it is pure bookkeeping -- so it can live as long as a session
    needs it; ``release()`` (or the context exit) drops the pin counts.
    """

    def __init__(self, manager: "SnapshotManager", pins: dict[str, dict[str, str]]):
        self._manager = manager
        self.pins = pins
        self._released = False
        views = {
            name: SnapshotRelationView(
                name,
                SnapshotEngineView(
                    manager.db.relation(name).engine, branch_pins
                ),
            )
            for name, branch_pins in pins.items()
        }
        self.database = SnapshotDatabaseView(manager.db, views)

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._manager._release(self)

    def __enter__(self) -> "Snapshot":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.release()


class SnapshotManager:
    """Creates and tracks snapshots over a :class:`Decibel` database.

    Pin counts are kept per ``(relation, commit)`` so operational tooling
    (and tests) can see which commits are held by live readers; they are
    advisory today -- nothing is deleted either way -- but they are the
    contract a future history-compaction pass must respect.
    """

    def __init__(self, db: "Decibel"):
        self.db = db
        self._pin_counts: Counter[tuple[str, str]] = Counter()
        self._lock = threading.Lock()
        self.acquired = 0
        self.released = 0

    def acquire(self, relations: list[str] | None = None) -> Snapshot:
        """Pin the current head commit of every branch of every relation.

        Each relation's heads are read under its engine's commit gate, so a
        concurrently running commit is observed either fully (head moved and
        snapshot recorded) or not at all.
        """
        names = sorted(relations) if relations is not None else sorted(
            self.db.relations()
        )
        pins: dict[str, dict[str, str]] = {}
        for name in names:
            engine = self.db.relation(name).engine
            with engine.commit_gate:
                if not engine.graph.initialized:
                    pins[name] = {}
                    continue
                pins[name] = {
                    branch: engine.graph.head(branch)
                    for branch in engine.graph.branch_names()
                }
        with self._lock:
            self.acquired += 1
            for name, branch_pins in pins.items():
                for commit_id in branch_pins.values():
                    self._pin_counts[(name, commit_id)] += 1
        return Snapshot(self, pins)

    def _release(self, snapshot: Snapshot) -> None:
        with self._lock:
            self.released += 1
            for name, branch_pins in snapshot.pins.items():
                for commit_id in branch_pins.values():
                    key = (name, commit_id)
                    self._pin_counts[key] -= 1
                    if self._pin_counts[key] <= 0:
                        del self._pin_counts[key]

    def pinned_commits(self) -> dict[tuple[str, str], int]:
        """Live pin counts: ``(relation, commit id) -> reader count``."""
        with self._lock:
            return dict(self._pin_counts)

    @property
    def active(self) -> int:
        """Number of snapshots currently held."""
        return self.acquired - self.released
