"""Records and their fixed-width binary encoding.

A :class:`Record` is an immutable tuple of values conforming to a
:class:`~repro.core.schema.Schema`.  Records are identified across versions by
their primary key (paper Section 2.2.1): updating a record produces a new
physical copy with the same key, and deleting one leaves a tombstone in
layouts that need it.

The :class:`RecordCodec` packs records into the fixed-width byte layout used
by pages, heap files and segment files.  A one-byte header precedes the
payload; bit 0 marks tombstones (used by the version-first layout for
deletes).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.core.schema import ColumnType, Schema
from repro.errors import RecordError

_HEADER_TOMBSTONE = 0x01


@dataclass(frozen=True)
class Record:
    """A single relational record.

    Parameters
    ----------
    values:
        Tuple of column values in schema order.
    tombstone:
        True if this record marks the deletion of its primary key (only the
        key column is meaningful for tombstones).
    """

    values: tuple
    tombstone: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))

    def key(self, schema: Schema) -> int:
        """The primary key value of this record under ``schema``."""
        return self.values[schema.primary_key_index]

    def value(self, schema: Schema, column: str):
        """The value of ``column`` under ``schema``."""
        return self.values[schema.index_of(column)]

    def replace(self, schema: Schema, **updates) -> "Record":
        """A copy of this record with the named columns replaced."""
        values = list(self.values)
        for name, new_value in updates.items():
            values[schema.index_of(name)] = new_value
        return Record(tuple(values), tombstone=self.tombstone)

    def as_dict(self, schema: Schema) -> dict:
        """The record as a ``{column name: value}`` mapping."""
        return dict(zip(schema.column_names, self.values))

    @classmethod
    def deleted(cls, schema: Schema, key: int) -> "Record":
        """A tombstone record for ``key``: payload columns are zeroed."""
        values = []
        for i, column in enumerate(schema.columns):
            if i == schema.primary_key_index:
                values.append(key)
            elif column.type is ColumnType.STRING:
                values.append("")
            else:
                values.append(0)
        return cls(tuple(values), tombstone=True)


class RecordCodec:
    """Fixed-width binary encoder/decoder for records of one schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        fmt = ["<B"]  # header byte
        for column in schema.columns:
            if column.type is ColumnType.INT:
                fmt.append("q")
            elif column.type is ColumnType.INT32:
                fmt.append("i")
            else:
                fmt.append(f"{column.width}s")
        self._struct = struct.Struct("".join(fmt))

    @property
    def record_size(self) -> int:
        """Encoded size in bytes of one record, including the header byte."""
        return self._struct.size

    def encode(self, record: Record) -> bytes:
        """Encode ``record`` to its fixed-width byte representation."""
        self.schema.validate_values(record.values)
        header = _HEADER_TOMBSTONE if record.tombstone else 0
        packed_values = []
        for column, value in zip(self.schema.columns, record.values):
            if column.type is ColumnType.STRING:
                packed_values.append(value.encode("utf-8"))
            else:
                packed_values.append(value)
        try:
            return self._struct.pack(header, *packed_values)
        except struct.error as exc:  # pragma: no cover - guarded by validate
            raise RecordError(f"cannot encode record {record!r}: {exc}") from exc

    def decode(self, data: bytes, offset: int = 0) -> Record:
        """Decode one record from ``data`` starting at ``offset``."""
        try:
            unpacked = self._struct.unpack_from(data, offset)
        except struct.error as exc:
            raise RecordError(
                f"cannot decode record at offset {offset}: {exc}"
            ) from exc
        header, raw_values = unpacked[0], unpacked[1:]
        values = []
        for column, raw in zip(self.schema.columns, raw_values):
            if column.type is ColumnType.STRING:
                values.append(raw.rstrip(b"\x00").decode("utf-8"))
            else:
                values.append(raw)
        return Record(tuple(values), tombstone=bool(header & _HEADER_TOMBSTONE))

    def decode_many(self, data: bytes) -> list[Record]:
        """Decode a buffer that is an exact concatenation of records."""
        size = self.record_size
        if len(data) % size != 0:
            raise RecordError(
                f"buffer length {len(data)} is not a multiple of record size {size}"
            )
        return [self.decode(data, offset) for offset in range(0, len(data), size)]
