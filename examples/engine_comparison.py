#!/usr/bin/env python3
"""Compare the three storage layouts (and the git baseline) on one workload.

Loads the same scaled-down "curation" benchmark dataset into the
version-first, tuple-first and hybrid engines, runs the four benchmark
queries against each, and then contrasts commit/checkout latency with the
git-like baseline of the paper's Section 5.7.

Run with::

    python examples/engine_comparison.py
"""

from __future__ import annotations

import random
import statistics
import tempfile
import time

from repro.bench.datagen import DataGenerator, GeneratorConfig
from repro.bench.driver import BenchmarkConfig, load_dataset
from repro.bench.queries import (
    query1_single_scan,
    query2_positive_diff,
    query3_join,
    query4_head_scan,
)
from repro.bench.report import ResultTable
from repro.gitlike.engine import GitVersionedStore


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="decibel-comparison-")
    table = ResultTable(
        "Benchmark queries by storage engine (curation strategy, scaled down)",
        ["engine", "load (s)", "Q1 (ms)", "Q2 (ms)", "Q3 (ms)", "Q4 (ms)", "data MB"],
    )
    for engine_kind in ("version-first", "tuple-first", "hybrid"):
        config = BenchmarkConfig(
            strategy="curation",
            engine=engine_kind,
            num_branches=8,
            total_operations=3000,
            commit_interval=300,
        )
        result = load_dataset(config, workdir)
        target = result.strategy.single_scan_branch(random.Random(0))
        pair = result.strategy.multi_scan_pair(random.Random(1))
        q1 = query1_single_scan(result.engine, target)
        q2 = query2_positive_diff(result.engine, *pair)
        q3 = query3_join(result.engine, *pair)
        q4 = query4_head_scan(result.engine)
        table.add_row(
            engine_kind,
            result.load_seconds,
            q1.seconds * 1000,
            q2.seconds * 1000,
            q3.seconds * 1000,
            q4.seconds * 1000,
            result.data_size_mb,
        )
    table.print()

    # Commit/checkout latency versus a git-like store (paper Table 6 flavour).
    generator = DataGenerator(GeneratorConfig(num_columns=10, seed=1))
    git_store = GitVersionedStore(
        workdir + "/git", generator.schema, layout="single-file", record_format="binary"
    )
    git_store.init(generator.records(500))
    git_commit_times = []
    git_commits = []
    for _ in range(10):
        for record in generator.records(100):
            git_store.insert("master", record)
        started = time.perf_counter()
        git_commits.append(git_store.commit("master"))
        git_commit_times.append(1000 * (time.perf_counter() - started))
    git_checkout_times = []
    for commit_id in git_commits:
        started = time.perf_counter()
        git_store.checkout(commit_id)
        git_checkout_times.append(1000 * (time.perf_counter() - started))

    hybrid_config = BenchmarkConfig(
        strategy="deep", engine="hybrid", num_branches=2,
        total_operations=1500, commit_interval=100,
    )
    hybrid = load_dataset(hybrid_config, workdir + "/hybrid_vs_git")
    hybrid_commit_ms = [1000 * s for s in hybrid.commit_seconds]

    versus = ResultTable(
        "Commit / checkout latency: git-like baseline vs Decibel (hybrid)",
        ["system", "commit mean (ms)", "checkout mean (ms)"],
    )
    versus.add_row(
        "git-like (1 file, binary)",
        statistics.mean(git_commit_times),
        statistics.mean(git_checkout_times),
    )
    checkout_ms = []
    for commit_id in hybrid.commit_ids[-10:]:
        started = time.perf_counter()
        hybrid.engine.checkout_commit_bitmaps(commit_id)
        checkout_ms.append(1000 * (time.perf_counter() - started))
    versus.add_row(
        "Decibel (hybrid)",
        statistics.mean(hybrid_commit_ms),
        statistics.mean(checkout_ms),
    )
    versus.print()


if __name__ == "__main__":
    main()
