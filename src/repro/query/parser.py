"""Recursive-descent parser for the versioned SQL dialect.

The grammar covers the query shapes of the paper's Table 1 plus the usual
result-shaping clauses::

    query      := SELECT [DISTINCT] select_list FROM table_ref ("," table_ref)*
                  [WHERE condition] [GROUP BY column ("," column)*]
                  [ORDER BY order_key ("," order_key)*] [LIMIT number]
    select_list:= "*" | select_item ("," select_item)*
    select_item:= aggregate | column
    aggregate  := identifier "(" ("*" | column) ")"
    order_key  := column [ASC | DESC]
    table_ref  := identifier [AS identifier | identifier]
    condition  := term (AND term)*
    term       := version_eq | head_eq | not_in | join_eq | column_cmp
    version_eq := [alias "."] "Version" "=" string
    head_eq    := HEAD "(" [alias "."] "Version" ")" "=" (TRUE|FALSE)
    not_in     := [alias "."] column NOT IN "(" query ")"
    join_eq    := alias "." column "=" alias "." column
    column_cmp := [alias "."] column op literal

Only conjunctions (AND) are supported, which is all the benchmark queries
need; OR raises a clear error.  The parser only builds the AST; name and
version resolution happen in :mod:`repro.query.logical`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NoReturn

from repro.errors import QueryError
from repro.query.tokenizer import Token, TokenType, tokenize

#: The pseudo-column used to bind a table reference to a version.
VERSION_COLUMN = "version"


@dataclass(frozen=True)
class TableRef:
    """A relation reference with its alias (alias defaults to the name)."""

    relation: str
    alias: str


@dataclass(frozen=True)
class VersionCondition:
    """``alias.Version = 'v01'`` -- binds a table ref to a branch or commit."""

    alias: str | None
    version: str


@dataclass(frozen=True)
class HeadCondition:
    """``HEAD(alias.Version) = true`` -- scan all branch heads."""

    alias: str | None
    value: bool


@dataclass(frozen=True)
class ColumnComparison:
    """``alias.column op literal``."""

    alias: str | None
    column: str
    op: str
    value: object


@dataclass(frozen=True)
class JoinCondition:
    """``a.column = b.column`` between two different table refs."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str


@dataclass(frozen=True)
class NotInSubquery:
    """``alias.column NOT IN (SELECT ...)`` -- the positive-diff shape."""

    alias: str | None
    column: str
    subquery: "SelectQuery"


@dataclass(frozen=True)
class SelectItem:
    """One entry of the select list: a plain column or an aggregate call.

    Exactly one of ``column`` (plain column reference) or
    ``function``/``argument`` (aggregate call; argument may be ``"*"``) is
    populated.
    """

    column: str | None = None
    function: str | None = None
    argument: str | None = None

    @property
    def is_aggregate(self) -> bool:
        """True for items like ``count(id)`` or ``count(*)``."""
        return self.function is not None

    @property
    def display_name(self) -> str:
        """The output column name shown to users."""
        if self.is_aggregate:
            return f"{self.function}({self.argument})"
        return self.column or ""


@dataclass(frozen=True)
class OrderKey:
    """One ``ORDER BY`` key; ``item`` may be a column or an aggregate."""

    item: SelectItem
    descending: bool = False


@dataclass
class SelectQuery:
    """A parsed SELECT statement."""

    columns: list[str]
    tables: list[TableRef]
    version_conditions: list[VersionCondition] = field(default_factory=list)
    head_conditions: list[HeadCondition] = field(default_factory=list)
    column_comparisons: list[ColumnComparison] = field(default_factory=list)
    join_conditions: list[JoinCondition] = field(default_factory=list)
    not_in_subqueries: list[NotInSubquery] = field(default_factory=list)
    select_items: list[SelectItem] = field(default_factory=list)
    distinct: bool = False
    group_by: list[str] = field(default_factory=list)
    order_by: list[OrderKey] = field(default_factory=list)
    limit: int | None = None

    @property
    def is_star(self) -> bool:
        """True for ``SELECT *``."""
        return self.columns == ["*"]

    @property
    def aggregates(self) -> list[SelectItem]:
        """The aggregate entries of the select list, in order."""
        return [item for item in self.select_items if item.is_aggregate]

    def version_for(self, alias: str) -> str | None:
        """The version bound to ``alias``, if any."""
        for condition in self.version_conditions:
            if condition.alias in (alias, None):
                return condition.version
        return None


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._position + offset, len(self._tokens) - 1)]

    def _advance(self) -> Token:
        token = self._peek()
        self._position += 1
        return token

    def _error(self, message: str, position: int) -> NoReturn:
        """Raise a :class:`QueryError` carrying the character ``position``."""
        error = QueryError(f"{message} (position {position})")
        error.position = position
        raise error

    def _expect(self, token_type: TokenType, value: str | None = None) -> Token:
        token = self._peek()
        if not token.matches(token_type, value):
            wanted = value or token_type.value
            self._error(
                f"expected {wanted!r}, got {token.value!r}", token.position
            )
        return self._advance()

    def _accept(self, token_type: TokenType, value: str | None = None) -> Token | None:
        if self._peek().matches(token_type, value):
            return self._advance()
        return None

    # -- grammar ------------------------------------------------------------------

    def parse(self) -> SelectQuery:
        query = self._select()
        self._expect(TokenType.END)
        return query

    def _select(self) -> SelectQuery:
        self._expect(TokenType.KEYWORD, "select")
        distinct = self._accept(TokenType.KEYWORD, "distinct") is not None
        items = self._select_list()
        self._expect(TokenType.KEYWORD, "from")
        tables = [self._table_ref()]
        while self._accept(TokenType.SYMBOL, ","):
            tables.append(self._table_ref())
        if items is None:
            columns = ["*"]
            select_items: list[SelectItem] = []
        else:
            columns = [item.column for item in items if not item.is_aggregate]
            select_items = items
        query = SelectQuery(
            columns=columns,
            tables=tables,
            select_items=select_items,
            distinct=distinct,
        )
        if self._accept(TokenType.KEYWORD, "where"):
            self._conditions(query)
        if self._accept(TokenType.KEYWORD, "group"):
            self._expect(TokenType.KEYWORD, "by")
            query.group_by.append(self._column_name())
            while self._accept(TokenType.SYMBOL, ","):
                query.group_by.append(self._column_name())
        if self._accept(TokenType.KEYWORD, "order"):
            self._expect(TokenType.KEYWORD, "by")
            query.order_by.append(self._order_key())
            while self._accept(TokenType.SYMBOL, ","):
                query.order_by.append(self._order_key())
        if self._accept(TokenType.KEYWORD, "limit"):
            token = self._expect(TokenType.NUMBER)
            limit = int(token.value)
            if limit < 0:
                self._error("LIMIT must be non-negative", token.position)
            query.limit = limit
        return query

    def _select_list(self) -> list[SelectItem] | None:
        """The select list; ``None`` means ``SELECT *``."""
        if self._accept(TokenType.SYMBOL, "*"):
            return None
        items = [self._select_item()]
        while self._accept(TokenType.SYMBOL, ","):
            if self._peek().matches(TokenType.SYMBOL, "*"):
                self._error(
                    "'*' cannot be mixed with other select items",
                    self._peek().position,
                )
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._accept(TokenType.SYMBOL, "("):
            if self._accept(TokenType.SYMBOL, "*"):
                argument = "*"
            else:
                argument = self._column_name()
            self._expect(TokenType.SYMBOL, ")")
            return SelectItem(function=first.lower(), argument=argument)
        if self._accept(TokenType.SYMBOL, "."):
            return SelectItem(column=self._expect(TokenType.IDENTIFIER).value)
        return SelectItem(column=first)

    def _order_key(self) -> OrderKey:
        item = self._select_item()
        if self._accept(TokenType.KEYWORD, "desc"):
            return OrderKey(item=item, descending=True)
        self._accept(TokenType.KEYWORD, "asc")
        return OrderKey(item=item)

    def _column_name(self) -> str:
        name = self._expect(TokenType.IDENTIFIER).value
        if self._accept(TokenType.SYMBOL, "."):
            name = self._expect(TokenType.IDENTIFIER).value
        return name

    def _table_ref(self) -> TableRef:
        relation = self._expect(TokenType.IDENTIFIER).value
        alias = relation
        if self._accept(TokenType.KEYWORD, "as"):
            alias = self._expect(TokenType.IDENTIFIER).value
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._advance().value
        return TableRef(relation=relation, alias=alias)

    def _conditions(self, query: SelectQuery) -> None:
        self._condition_term(query)
        while True:
            if self._accept(TokenType.KEYWORD, "and"):
                self._condition_term(query)
                continue
            if self._peek().matches(TokenType.KEYWORD, "or"):
                self._error(
                    "OR is not supported in this dialect",
                    self._peek().position,
                )
            return

    def _condition_term(self, query: SelectQuery) -> None:
        if self._peek().matches(TokenType.KEYWORD, "head"):
            query.head_conditions.append(self._head_condition())
            return
        alias, column = self._qualified_column()
        if self._peek().matches(TokenType.KEYWORD, "not"):
            self._advance()
            self._expect(TokenType.KEYWORD, "in")
            self._expect(TokenType.SYMBOL, "(")
            subquery = self._select()
            self._expect(TokenType.SYMBOL, ")")
            query.not_in_subqueries.append(
                NotInSubquery(alias=alias, column=column, subquery=subquery)
            )
            return
        op_token = self._expect(TokenType.SYMBOL)
        op = op_token.value
        if op not in ("=", "!=", "<>", "<", "<=", ">", ">="):
            self._error(
                f"unsupported operator {op!r} in WHERE clause",
                op_token.position,
            )
        if column.lower() == VERSION_COLUMN:
            version = self._expect(TokenType.STRING).value
            query.version_conditions.append(
                VersionCondition(alias=alias, version=version)
            )
            return
        next_token = self._peek()
        if next_token.type is TokenType.IDENTIFIER and self._peek(1).matches(
            TokenType.SYMBOL, "."
        ):
            right_alias, right_column = self._qualified_column()
            query.join_conditions.append(
                JoinCondition(
                    left_alias=alias or "",
                    left_column=column,
                    right_alias=right_alias or "",
                    right_column=right_column,
                )
            )
            return
        value = self._literal()
        query.column_comparisons.append(
            ColumnComparison(alias=alias, column=column, op=op, value=value)
        )

    def _head_condition(self) -> HeadCondition:
        self._expect(TokenType.KEYWORD, "head")
        self._expect(TokenType.SYMBOL, "(")
        column_token = self._peek()
        alias, column = self._qualified_column()
        if column.lower() != VERSION_COLUMN:
            self._error(
                "HEAD() applies to a Version column", column_token.position
            )
        self._expect(TokenType.SYMBOL, ")")
        self._expect(TokenType.SYMBOL, "=")
        if self._accept(TokenType.KEYWORD, "true"):
            value = True
        elif self._accept(TokenType.KEYWORD, "false"):
            value = False
        else:
            self._error(
                "HEAD() must be compared against TRUE or FALSE",
                self._peek().position,
            )
        return HeadCondition(alias=alias, value=value)

    def _qualified_column(self) -> tuple[str | None, str]:
        first = self._expect(TokenType.IDENTIFIER).value
        if self._accept(TokenType.SYMBOL, "."):
            column = self._expect(TokenType.IDENTIFIER).value
            return first, column
        return None, first

    def _literal(self):
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            return int(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        if token.matches(TokenType.KEYWORD, "true"):
            self._advance()
            return True
        if token.matches(TokenType.KEYWORD, "false"):
            self._advance()
            return False
        self._error(
            f"expected a literal, got {token.value!r}", token.position
        )


def parse_query(sql: str) -> SelectQuery:
    """Parse ``sql`` into a :class:`SelectQuery`."""
    return _Parser(tokenize(sql)).parse()
