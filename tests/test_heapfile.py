"""Tests for append-only heap files."""

import pytest

from repro.core.buffer_pool import BufferPool
from repro.core.heapfile import HeapFile, RecordId
from repro.core.record import Record
from repro.errors import StorageError

from tests.conftest import make_records


@pytest.fixture
def heap(schema, buffer_pool, tmp_path):
    return HeapFile(str(tmp_path / "data.heap"), schema, buffer_pool, page_size=512)


class TestHeapFile:
    def test_append_assigns_sequential_ids(self, heap):
        ids = heap.append_many(make_records(5))
        ordinals = [rid.ordinal(heap.records_per_page) for rid in ids]
        assert ordinals == [0, 1, 2, 3, 4]

    def test_num_records_counts_appends(self, heap):
        heap.append_many(make_records(7))
        assert heap.num_records == 7

    def test_record_at_roundtrip(self, heap):
        records = make_records(10)
        ids = heap.append_many(records)
        for rid, record in zip(ids, records):
            assert heap.record_at(rid) == record

    def test_record_by_ordinal(self, heap):
        records = make_records(30)
        heap.append_many(records)
        assert heap.record_by_ordinal(17) == records[17]

    def test_scan_preserves_order(self, heap):
        records = make_records(25)
        heap.append_many(records)
        assert list(heap.scan_records()) == records

    def test_spans_multiple_pages(self, heap):
        count = heap.records_per_page * 3 + 2
        heap.append_many(make_records(count))
        assert heap.num_pages == 4
        assert heap.num_records == count

    def test_persistence_across_reopen(self, schema, buffer_pool, tmp_path):
        path = str(tmp_path / "data.heap")
        heap = HeapFile(path, schema, buffer_pool, page_size=512)
        records = make_records(heap.records_per_page * 2 + 3)
        heap.append_many(records)
        heap.flush()
        reopened = HeapFile(path, schema, BufferPool(), page_size=512)
        assert list(reopened.scan_records()) == records
        assert reopened.num_records == len(records)

    def test_append_after_reopen(self, schema, tmp_path):
        path = str(tmp_path / "data.heap")
        heap = HeapFile(path, schema, BufferPool(), page_size=512)
        heap.append_many(make_records(5))
        heap.flush()
        reopened = HeapFile(path, schema, BufferPool(), page_size=512)
        reopened.append(Record((100, 0, 0, 0)))
        assert reopened.num_records == 6
        assert reopened.record_by_ordinal(5).values[0] == 100

    def test_size_bytes_after_flush(self, heap):
        heap.append_many(make_records(3))
        heap.flush()
        assert heap.size_bytes() == 512

    def test_empty_file_size(self, heap):
        assert heap.size_bytes() == 0
        assert list(heap.scan()) == []

    def test_out_of_range_page_rejected(self, heap):
        heap.append_many(make_records(2))
        with pytest.raises(StorageError):
            heap.record_at(RecordId(5, 0))

    def test_close_flushes(self, schema, tmp_path):
        path = str(tmp_path / "data.heap")
        heap = HeapFile(path, schema, BufferPool(), page_size=512)
        heap.append_many(make_records(3))
        heap.close()
        reopened = HeapFile(path, schema, BufferPool(), page_size=512)
        assert reopened.num_records == 3

    def test_corrupt_size_detected(self, schema, tmp_path):
        path = str(tmp_path / "data.heap")
        with open(path, "wb") as handle:
            handle.write(b"\x00" * 100)  # not a multiple of the page size
        with pytest.raises(StorageError):
            HeapFile(path, schema, BufferPool(), page_size=512)


class TestRecordId:
    def test_ordering(self):
        assert RecordId(0, 5) < RecordId(1, 0)
        assert RecordId(1, 0) < RecordId(1, 3)

    def test_ordinal(self):
        assert RecordId(2, 3).ordinal(10) == 23
