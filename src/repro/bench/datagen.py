"""Synthetic data generation for the versioning benchmark.

The paper's datasets consist of "a configurable number of randomly generated
integer columns, with a single integer primary key" (Section 4.2).  The
generator here produces exactly that: records over the benchmark schema with
deterministic pseudo-random payloads (seeded, so every engine sees the same
byte stream, as the paper's loader does by seeding its random number
generator), plus fresh-key allocation for inserts and payload regeneration for
updates.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.record import Record
from repro.core.schema import Schema
from repro.errors import BenchmarkError


@dataclass(frozen=True)
class GeneratorConfig:
    """Shape of the generated records.

    The paper uses 250 columns of 4 bytes for ~1 KB records; the defaults
    here are smaller so scaled-down runs stay fast, and both knobs are
    exposed for experiments that want the paper's geometry.
    """

    num_columns: int = 10
    column_width_bytes: int = 8
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_columns < 2:
            raise BenchmarkError("need at least a key column and one payload column")
        if self.column_width_bytes not in (4, 8):
            raise BenchmarkError("column_width_bytes must be 4 or 8")


class DataGenerator:
    """Produces benchmark records and tracks allocated primary keys."""

    def __init__(self, config: GeneratorConfig | None = None):
        self.config = config if config is not None else GeneratorConfig()
        self.schema: Schema = Schema.of_ints(
            self.config.num_columns, width_bytes=self.config.column_width_bytes
        )
        self._rng = random.Random(self.config.seed)
        self._next_key = 0
        bits = 8 * self.config.column_width_bytes
        self._value_range = (1, (1 << (bits - 2)) - 1)

    # -- record production ------------------------------------------------------

    @property
    def record_size_bytes(self) -> int:
        """Encoded record width (payload plus header byte)."""
        return self.schema.record_width + 1

    def allocate_key(self) -> int:
        """Allocate a fresh, never-before-used primary key."""
        key = self._next_key
        self._next_key += 1
        return key

    def payload(self) -> tuple[int, ...]:
        """A fresh random payload tuple (all columns except the key)."""
        low, high = self._value_range
        return tuple(
            self._rng.randint(low, high)
            for _ in range(self.config.num_columns - 1)
        )

    def new_record(self) -> Record:
        """A record with a fresh key and random payload (an insert)."""
        return Record((self.allocate_key(),) + self.payload())

    def updated_record(self, key: int) -> Record:
        """A record reusing ``key`` with a new random payload (an update)."""
        return Record((key,) + self.payload())

    def records(self, count: int) -> list[Record]:
        """A batch of ``count`` fresh records."""
        return [self.new_record() for _ in range(count)]

    # -- reproducibility helpers ---------------------------------------------------

    def fork(self, salt: int) -> "DataGenerator":
        """An independent generator with a derived seed (same schema).

        Useful when an experiment needs several streams (e.g. one per engine)
        that must not consume each other's randomness but should still be
        deterministic overall.
        """
        clone = DataGenerator(
            GeneratorConfig(
                num_columns=self.config.num_columns,
                column_width_bytes=self.config.column_width_bytes,
                seed=self.config.seed + salt,
            )
        )
        return clone
