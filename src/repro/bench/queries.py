"""The four benchmark queries (paper Section 4.3), with latency measurement.

Each query function runs against a loaded engine and returns a
:class:`QueryMeasurement` holding the wall-clock latency, the number of rows
produced, and an estimate of the bytes of record data those rows represent
(used to report scan throughput the way the paper discusses it).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.predicates import Predicate, non_selective_predicate
from repro.storage.base import VersionedStorageEngine


@dataclass
class QueryMeasurement:
    """Latency and output volume of one benchmark query execution."""

    query: str
    seconds: float
    rows: int
    bytes_touched: int = 0

    @property
    def throughput_mb_per_s(self) -> float:
        """Record bytes produced per second of query time, in MB/s."""
        if self.seconds <= 0:
            return 0.0
        return (self.bytes_touched / (1024 * 1024)) / self.seconds


def _record_bytes(engine: VersionedStorageEngine, rows: int) -> int:
    return rows * (engine.schema.record_width + 1)


def query1_single_scan(
    engine: VersionedStorageEngine,
    branch: str,
    predicate: Predicate | None = None,
    cold: bool = True,
) -> QueryMeasurement:
    """Query 1: scan and emit the active records in a single branch."""
    if cold:
        engine.drop_caches()
    start = time.perf_counter()
    rows = sum(1 for _ in engine.scan_branch(branch, predicate))
    elapsed = time.perf_counter() - start
    return QueryMeasurement(
        query="Q1", seconds=elapsed, rows=rows, bytes_touched=_record_bytes(engine, rows)
    )


def query2_positive_diff(
    engine: VersionedStorageEngine,
    branch_a: str,
    branch_b: str,
    cold: bool = True,
) -> QueryMeasurement:
    """Query 2: emit the records in ``branch_a`` that do not appear in ``branch_b``."""
    if cold:
        engine.drop_caches()
    start = time.perf_counter()
    diff = engine.diff(branch_a, branch_b)
    rows = len(diff.positive)
    elapsed = time.perf_counter() - start
    return QueryMeasurement(
        query="Q2",
        seconds=elapsed,
        rows=rows,
        bytes_touched=_record_bytes(engine, diff.total_records),
    )


def query3_join(
    engine: VersionedStorageEngine,
    branch_a: str,
    branch_b: str,
    predicate: Predicate | None = None,
    cold: bool = True,
) -> QueryMeasurement:
    """Query 3: primary-key join of two branches under a predicate.

    Implemented as a hash join: the predicate-filtered scan of ``branch_a``
    builds the hash table, the scan of ``branch_b`` probes it.  Both sides go
    through the engine's single-branch scan path, so the engines' relative
    costs follow their scan behaviour, as in the paper's discussion.
    """
    if cold:
        engine.drop_caches()
    if predicate is None:
        predicate = non_selective_predicate("c1", modulus=4)
    schema = engine.schema
    pk_position = schema.primary_key_index
    start = time.perf_counter()
    build = {
        record.values[pk_position]: record
        for record in engine.scan_branch(branch_a, predicate)
    }
    rows = 0
    scanned = len(build)
    for record in engine.scan_branch(branch_b):
        scanned += 1
        if record.values[pk_position] in build:
            rows += 1
    elapsed = time.perf_counter() - start
    return QueryMeasurement(
        query="Q3",
        seconds=elapsed,
        rows=rows,
        bytes_touched=_record_bytes(engine, scanned),
    )


def query4_head_scan(
    engine: VersionedStorageEngine,
    predicate: Predicate | None = None,
    cold: bool = True,
) -> QueryMeasurement:
    """Query 4: scan all branch heads, emitting records with their branches.

    Uses a very non-selective predicate by default, as in the paper, so the
    work is dominated by the scan rather than by predicate evaluation.
    """
    if cold:
        engine.drop_caches()
    if predicate is None:
        predicate = non_selective_predicate("c1", modulus=10)
    start = time.perf_counter()
    rows = sum(1 for _ in engine.scan_heads(predicate))
    elapsed = time.perf_counter() - start
    return QueryMeasurement(
        query="Q4", seconds=elapsed, rows=rows, bytes_touched=_record_bytes(engine, rows)
    )
